//! Checkpoint/restart of the pre-blocked SUMMA loop.
//!
//! The paper's production run processed 405M sequences in batches precisely
//! so that a preempted or crashed job loses one batch, not the run. This
//! module gives the reproduction the same property at block granularity:
//! after every completed output block, each rank serializes its *block
//! cursor* (how many scheduled blocks are done) plus its partial state —
//! edges in insertion order, counters, component times, per-block series —
//! to a versioned checkpoint file. A resumed run replays from the last
//! block every rank completed and provably produces the bit-identical final
//! graph (edges are stored pre-`normalize`, and the final normalize sorts
//! them canonically, so the split point cannot influence the output).
//!
//! # Format (schema version 1)
//!
//! A checkpoint is a plain text file (the vendored `serde` is a no-op stub,
//! so serialization is hand-rolled and auditable). All floats are written
//! as `to_bits()` hex so round-trips are bit-exact. Layout:
//!
//! ```text
//! PASTIS-CKPT 1
//! fingerprint <hex64>            # run identity: params + input digest
//! rank <r> <nranks>
//! nverts <n>
//! blocks_done <k>
//! stat <candidates> <aligned> <cells> <similar> <products>
//! statf <total_bits> <kernel_bits> <cpu_bits>
//! time <component-label> <bits>  # one line per Component::ALL entry
//! block <r> <c> <sparse_bits> <align_bits> <candidates> <aligned>  # ×k
//! edge <i> <j> <score> <ani_bits> <cov_bits> <common>              # ×edges
//! end <crc32-hex>                # CRC over every preceding byte
//! ```
//!
//! Files are written atomically (`.tmp` + rename) into
//! `<dir>/rank<r>/block<k>.ckpt`; recovery scans for the newest file that
//! parses, CRC-checks, and matches the run fingerprint, so a torn write
//! from a killed process simply falls back to the previous block.

use std::fs;
use std::path::{Path, PathBuf};

use pastis_comm::fault::crc32;
use pastis_comm::{Component, TimeBreakdown};
use pastis_seqio::SeqStore;

use crate::params::SearchParams;
use crate::pipeline::BlockTiming;
use crate::simgraph::{SimilarityEdge, SimilarityGraph};
use crate::stats::SearchStats;

/// Version stamp of the on-disk checkpoint format.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Mix one 64-bit value into a running digest (splitmix64 finalizer).
/// Building block of [`run_fingerprint`]; exported so other layers (the
/// baseline searches) can fingerprint their own runs the same way.
pub fn digest_u64(h: u64, v: u64) -> u64 {
    mix(h, v)
}

/// Mix a byte string (length included) into a running digest.
pub fn digest_bytes(h: u64, bytes: &[u8]) -> u64 {
    mix_bytes(h, bytes)
}

fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(buf));
    }
    mix(h, bytes.len() as u64)
}

/// Digest of everything that determines the search *output*: the
/// output-relevant parameters and the input sequences. Two runs with equal
/// fingerprints produce the same similarity graph, so a checkpoint is only
/// ever resumed into the run that wrote it.
///
/// Deliberately excluded: `align_threads`, the `simd` backend policy, the
/// `spgemm_threads` / `spgemm` kernel knobs, and any
/// fault/checkpoint/timeout knobs — they change wall time, never the
/// output (the vector kernel is bit-identical to scalar, and the SpGEMM
/// kernels share one combine-order contract), and a chaos run must be
/// resumable into a fault-free run (and vice versa).
pub fn run_fingerprint(params: &SearchParams, store: &SeqStore) -> u64 {
    let mut h = 0x5054_4953_2d52_5321u64; // "PTIS-RS!"
    h = mix(h, params.k as u64);
    h = mix_bytes(h, format!("{:?}", params.alphabet).as_bytes());
    h = mix(h, params.substitute_kmers as u64);
    h = mix(h, params.common_kmer_threshold as u64);
    h = mix(h, params.ani_threshold.to_bits());
    h = mix(h, params.coverage_threshold.to_bits());
    h = mix(h, params.gaps.open as u64);
    h = mix(h, params.gaps.extend as u64);
    h = mix_bytes(h, format!("{:?}", params.align_kind).as_bytes());
    h = mix(h, params.block_rows as u64);
    h = mix(h, params.block_cols as u64);
    h = mix_bytes(h, format!("{:?}", params.load_balance).as_bytes());
    h = mix(h, params.pre_blocking as u64);
    h = mix(h, store.len() as u64);
    for i in 0..store.len() {
        h = mix_bytes(h, store.seq(i));
    }
    h
}

/// One rank's saved state after `blocks_done` completed blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Run identity ([`run_fingerprint`]).
    pub fingerprint: u64,
    /// Writing rank.
    pub rank: usize,
    /// World size the run used (resume requires the same).
    pub nranks: usize,
    /// Vertex count of the partial graph.
    pub n_vertices: usize,
    /// Completed scheduled blocks (the block cursor).
    pub blocks_done: usize,
    /// Counters accumulated so far.
    pub stats: SearchStats,
    /// Component times accumulated so far.
    pub times: TimeBreakdown,
    /// Per-block series so far (`len == blocks_done`).
    pub per_block: Vec<BlockTiming>,
    /// Edges in insertion order, pre-`normalize`.
    pub edges: Vec<SimilarityEdge>,
}

impl Checkpoint {
    /// Serialize to the schema-v1 text format (CRC trailer included).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + self.edges.len() * 48);
        let _ = writeln!(s, "PASTIS-CKPT {CHECKPOINT_SCHEMA_VERSION}");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(s, "rank {} {}", self.rank, self.nranks);
        let _ = writeln!(s, "nverts {}", self.n_vertices);
        let _ = writeln!(s, "blocks_done {}", self.blocks_done);
        let st = &self.stats;
        let _ = writeln!(
            s,
            "stat {} {} {} {} {}",
            st.candidates, st.aligned_pairs, st.cells, st.similar_pairs, st.spgemm_products
        );
        let _ = writeln!(
            s,
            "statf {:016x} {:016x} {:016x}",
            st.total_seconds.to_bits(),
            st.align_kernel_seconds.to_bits(),
            st.align_cpu_seconds.to_bits()
        );
        for c in Component::ALL {
            let _ = writeln!(s, "time {} {:016x}", c.label(), self.times.get(c).to_bits());
        }
        for b in &self.per_block {
            let _ = writeln!(
                s,
                "block {} {} {:016x} {:016x} {} {}",
                b.r,
                b.c,
                b.sparse_seconds.to_bits(),
                b.align_seconds.to_bits(),
                b.candidates,
                b.aligned_pairs
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                s,
                "edge {} {} {} {:08x} {:08x} {}",
                e.i,
                e.j,
                e.score,
                e.ani.to_bits(),
                e.coverage.to_bits(),
                e.common_kmers
            );
        }
        let crc = crc32(s.as_bytes());
        let _ = writeln!(s, "end {crc:08x}");
        s
    }

    /// Parse and CRC-check a schema-v1 checkpoint.
    ///
    /// # Errors
    ///
    /// Any structural problem — bad magic, wrong schema version, CRC
    /// mismatch (torn write), malformed line — is an `Err` with a
    /// description; the caller treats it as "this file does not exist".
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let body_end = text
            .rfind("end ")
            .ok_or_else(|| "checkpoint missing end trailer".to_string())?;
        let trailer = text[body_end..].strip_prefix("end ").unwrap().trim();
        let want_crc = u32::from_str_radix(trailer, 16)
            .map_err(|_| format!("bad checkpoint crc trailer: {trailer:?}"))?;
        let body = &text[..body_end];
        let got_crc = crc32(body.as_bytes());
        if got_crc != want_crc {
            return Err(format!(
                "checkpoint crc mismatch: file says {want_crc:08x}, content is {got_crc:08x}"
            ));
        }

        let mut lines = body.lines();
        let magic = lines.next().unwrap_or_default();
        let version: u32 = magic
            .strip_prefix("PASTIS-CKPT ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad checkpoint magic: {magic:?}"))?;
        if version != CHECKPOINT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported checkpoint schema version {version} (this build reads {CHECKPOINT_SCHEMA_VERSION})"
            ));
        }

        fn field<'a>(
            line: Option<&'a str>,
            key: &str,
        ) -> Result<std::str::SplitWhitespace<'a>, String> {
            let line = line.ok_or_else(|| format!("checkpoint truncated before {key:?}"))?;
            let rest = line
                .strip_prefix(key)
                .ok_or_else(|| format!("expected {key:?} line, got {line:?}"))?;
            Ok(rest.split_whitespace())
        }
        fn next_num<T: std::str::FromStr>(
            it: &mut std::str::SplitWhitespace<'_>,
            what: &str,
        ) -> Result<T, String> {
            it.next()
                .ok_or_else(|| format!("checkpoint line missing {what}"))?
                .parse()
                .map_err(|_| format!("bad {what} in checkpoint"))
        }
        fn next_bits64(it: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<f64, String> {
            let tok = it
                .next()
                .ok_or_else(|| format!("checkpoint line missing {what}"))?;
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("bad {what} bits in checkpoint"))
        }

        let mut it = field(lines.next(), "fingerprint ")?;
        let fingerprint =
            u64::from_str_radix(it.next().ok_or("checkpoint line missing fingerprint")?, 16)
                .map_err(|_| "bad fingerprint in checkpoint".to_string())?;

        let mut it = field(lines.next(), "rank ")?;
        let rank: usize = next_num(&mut it, "rank")?;
        let nranks: usize = next_num(&mut it, "nranks")?;

        let mut it = field(lines.next(), "nverts ")?;
        let n_vertices: usize = next_num(&mut it, "nverts")?;

        let mut it = field(lines.next(), "blocks_done ")?;
        let blocks_done: usize = next_num(&mut it, "blocks_done")?;

        let mut it = field(lines.next(), "stat ")?;
        let mut stats = SearchStats {
            candidates: next_num(&mut it, "candidates")?,
            aligned_pairs: next_num(&mut it, "aligned_pairs")?,
            cells: next_num(&mut it, "cells")?,
            similar_pairs: next_num(&mut it, "similar_pairs")?,
            spgemm_products: next_num(&mut it, "spgemm_products")?,
            ..SearchStats::default()
        };
        let mut it = field(lines.next(), "statf ")?;
        stats.total_seconds = next_bits64(&mut it, "total_seconds")?;
        stats.align_kernel_seconds = next_bits64(&mut it, "align_kernel_seconds")?;
        stats.align_cpu_seconds = next_bits64(&mut it, "align_cpu_seconds")?;

        let mut times = TimeBreakdown::new();
        for c in Component::ALL {
            let mut it = field(lines.next(), "time ")?;
            let label = it.next().ok_or("checkpoint time line missing label")?;
            if label != c.label() {
                return Err(format!(
                    "checkpoint time lines out of order: expected {:?}, got {label:?}",
                    c.label()
                ));
            }
            times.record(c, next_bits64(&mut it, "component seconds")?);
        }

        let mut per_block = Vec::with_capacity(blocks_done);
        let mut edges = Vec::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("block ") {
                let mut it = rest.split_whitespace();
                per_block.push(BlockTiming {
                    r: next_num(&mut it, "block row")?,
                    c: next_num(&mut it, "block col")?,
                    sparse_seconds: next_bits64(&mut it, "sparse_seconds")?,
                    align_seconds: next_bits64(&mut it, "align_seconds")?,
                    candidates: next_num(&mut it, "block candidates")?,
                    aligned_pairs: next_num(&mut it, "block aligned_pairs")?,
                });
            } else if let Some(rest) = line.strip_prefix("edge ") {
                let mut it = rest.split_whitespace();
                let i: u32 = next_num(&mut it, "edge i")?;
                let j: u32 = next_num(&mut it, "edge j")?;
                let score: i32 = next_num(&mut it, "edge score")?;
                let ani_tok = it.next().ok_or("edge line missing ani")?;
                let cov_tok = it.next().ok_or("edge line missing coverage")?;
                let ani = u32::from_str_radix(ani_tok, 16)
                    .map(f32::from_bits)
                    .map_err(|_| "bad ani bits in checkpoint".to_string())?;
                let coverage = u32::from_str_radix(cov_tok, 16)
                    .map(f32::from_bits)
                    .map_err(|_| "bad coverage bits in checkpoint".to_string())?;
                let common_kmers: u32 = next_num(&mut it, "edge common_kmers")?;
                edges.push(SimilarityEdge {
                    i,
                    j,
                    score,
                    ani,
                    coverage,
                    common_kmers,
                });
            } else {
                return Err(format!("unexpected checkpoint line: {line:?}"));
            }
        }
        if per_block.len() != blocks_done {
            return Err(format!(
                "checkpoint inconsistent: {blocks_done} blocks_done but {} block lines",
                per_block.len()
            ));
        }
        Ok(Checkpoint {
            fingerprint,
            rank,
            nranks,
            n_vertices,
            blocks_done,
            stats,
            times,
            per_block,
            edges,
        })
    }

    /// Reconstruct the partial (pre-`normalize`) graph.
    pub fn graph(&self) -> SimilarityGraph {
        let mut g = SimilarityGraph::new(self.n_vertices);
        for e in &self.edges {
            g.add(*e);
        }
        g
    }
}

/// The file a rank's checkpoint for `blocks_done` lives in.
pub fn checkpoint_path(dir: &Path, rank: usize, blocks_done: usize) -> PathBuf {
    dir.join(format!("rank{rank}"))
        .join(format!("block{blocks_done:06}.ckpt"))
}

/// Write `content` to `path` atomically: write a sibling `.tmp`, then
/// rename over the target. A killed process leaves either the old file or
/// a stray `.tmp`, never a torn target.
///
/// # Errors
///
/// I/O failures, with the path in the message.
pub fn write_atomic(path: &Path, content: &str) -> Result<(), String> {
    let parent = path
        .parent()
        .ok_or_else(|| format!("checkpoint path has no parent: {}", path.display()))?;
    fs::create_dir_all(parent).map_err(|e| format!("creating {}: {e}", parent.display()))?;
    let tmp = path.with_extension("ckpt.tmp");
    fs::write(&tmp, content).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path)
        .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), path.display()))
}

/// Atomically persist `ck` under `dir`, returning the file written.
///
/// # Errors
///
/// I/O failures.
pub fn save(dir: &Path, ck: &Checkpoint) -> Result<PathBuf, String> {
    let path = checkpoint_path(dir, ck.rank, ck.blocks_done);
    write_atomic(&path, &ck.to_text())?;
    Ok(path)
}

/// The newest valid checkpoint for `rank` under `dir` that matches
/// `fingerprint` and `nranks`: highest block count whose file parses,
/// CRC-checks, and belongs to this run. Corrupt, foreign, or torn files
/// are skipped (that is the recovery path, not an error).
pub fn latest_valid(
    dir: &Path,
    rank: usize,
    nranks: usize,
    fingerprint: u64,
) -> Option<Checkpoint> {
    let rank_dir = dir.join(format!("rank{rank}"));
    let mut counts: Vec<usize> = fs::read_dir(&rank_dir)
        .ok()?
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_prefix("block")?
                .strip_suffix(".ckpt")?
                .parse()
                .ok()
        })
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    for count in counts {
        let path = checkpoint_path(dir, rank, count);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        match Checkpoint::parse(&text) {
            Ok(ck)
                if ck.fingerprint == fingerprint
                    && ck.nranks == nranks
                    && ck.rank == rank
                    && ck.blocks_done == count =>
            {
                return Some(ck);
            }
            _ => continue,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Spill shards (memory-budgeted execution)
// ---------------------------------------------------------------------------

/// Version stamp of the on-disk spill-shard format.
pub const SPILL_SCHEMA_VERSION: u32 = 1;

/// One completed output block's edges, evicted to disk under memory
/// pressure. The format is the checkpoint family's little sibling — same
/// hand-rolled text serialization, same bit-exact `edge` lines, same CRC
/// trailer — but holds exactly one block so eviction and readback stay
/// proportional to the block, not the run:
///
/// ```text
/// PASTIS-SPILL 1
/// fingerprint <hex64>
/// rank <r>
/// block <k>                      # scheduled block index
/// edge <i> <j> <score> <ani_bits> <cov_bits> <common>   # ×edges
/// end <crc32-hex>
/// ```
///
/// A shard that fails its CRC on readback is not an error: the block is
/// simply recomputed, and the final `normalize` makes the result
/// bit-identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillShard {
    /// Run identity ([`run_fingerprint`]).
    pub fingerprint: u64,
    /// Writing rank.
    pub rank: usize,
    /// Scheduled block index this shard holds the edges of.
    pub block: usize,
    /// The block's edges in insertion order, pre-`normalize`.
    pub edges: Vec<SimilarityEdge>,
}

impl SpillShard {
    /// Serialize to the schema-v1 text format (CRC trailer included).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + self.edges.len() * 48);
        let _ = writeln!(s, "PASTIS-SPILL {SPILL_SCHEMA_VERSION}");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(s, "rank {}", self.rank);
        let _ = writeln!(s, "block {}", self.block);
        for e in &self.edges {
            let _ = writeln!(
                s,
                "edge {} {} {} {:08x} {:08x} {}",
                e.i,
                e.j,
                e.score,
                e.ani.to_bits(),
                e.coverage.to_bits(),
                e.common_kmers
            );
        }
        let crc = crc32(s.as_bytes());
        let _ = writeln!(s, "end {crc:08x}");
        s
    }

    /// Parse and CRC-check a schema-v1 spill shard.
    ///
    /// # Errors
    ///
    /// Any structural problem — bad magic, wrong schema version, CRC
    /// mismatch (torn/corrupted write), malformed line — is an `Err`; the
    /// caller recomputes the block instead.
    pub fn parse(text: &str) -> Result<SpillShard, String> {
        let body_end = text
            .rfind("end ")
            .ok_or_else(|| "spill shard missing end trailer".to_string())?;
        let trailer = text[body_end..].strip_prefix("end ").unwrap().trim();
        let want_crc = u32::from_str_radix(trailer, 16)
            .map_err(|_| format!("bad spill shard crc trailer: {trailer:?}"))?;
        let body = &text[..body_end];
        let got_crc = crc32(body.as_bytes());
        if got_crc != want_crc {
            return Err(format!(
                "spill shard crc mismatch: file says {want_crc:08x}, content is {got_crc:08x}"
            ));
        }

        let mut lines = body.lines();
        let magic = lines.next().unwrap_or_default();
        let version: u32 = magic
            .strip_prefix("PASTIS-SPILL ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad spill shard magic: {magic:?}"))?;
        if version != SPILL_SCHEMA_VERSION {
            return Err(format!(
                "unsupported spill shard schema version {version} (this build reads {SPILL_SCHEMA_VERSION})"
            ));
        }

        fn keyed<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
            let line = line.ok_or_else(|| format!("spill shard truncated before {key:?}"))?;
            line.strip_prefix(key)
                .map(str::trim)
                .ok_or_else(|| format!("expected {key:?} line, got {line:?}"))
        }

        let fingerprint = u64::from_str_radix(keyed(lines.next(), "fingerprint ")?, 16)
            .map_err(|_| "bad fingerprint in spill shard".to_string())?;
        let rank: usize = keyed(lines.next(), "rank ")?
            .parse()
            .map_err(|_| "bad rank in spill shard".to_string())?;
        let block: usize = keyed(lines.next(), "block ")?
            .parse()
            .map_err(|_| "bad block in spill shard".to_string())?;

        let mut edges = Vec::new();
        for line in lines {
            let rest = line
                .strip_prefix("edge ")
                .ok_or_else(|| format!("unexpected spill shard line: {line:?}"))?;
            let mut it = rest.split_whitespace();
            let mut num = |what: &str| -> Result<&str, String> {
                it.next()
                    .ok_or_else(|| format!("spill edge line missing {what}"))
            };
            let i: u32 = num("i")?
                .parse()
                .map_err(|_| "bad edge i in spill shard".to_string())?;
            let j: u32 = num("j")?
                .parse()
                .map_err(|_| "bad edge j in spill shard".to_string())?;
            let score: i32 = num("score")?
                .parse()
                .map_err(|_| "bad edge score in spill shard".to_string())?;
            let ani = u32::from_str_radix(num("ani")?, 16)
                .map(f32::from_bits)
                .map_err(|_| "bad ani bits in spill shard".to_string())?;
            let coverage = u32::from_str_radix(num("coverage")?, 16)
                .map(f32::from_bits)
                .map_err(|_| "bad coverage bits in spill shard".to_string())?;
            let common_kmers: u32 = num("common_kmers")?
                .parse()
                .map_err(|_| "bad edge common_kmers in spill shard".to_string())?;
            edges.push(SimilarityEdge {
                i,
                j,
                score,
                ani,
                coverage,
                common_kmers,
            });
        }
        Ok(SpillShard {
            fingerprint,
            rank,
            block,
            edges,
        })
    }
}

/// The file a rank's spilled edges for scheduled block `block` live in.
pub fn spill_path(dir: &Path, rank: usize, block: usize) -> PathBuf {
    dir.join(format!("rank{rank}"))
        .join(format!("block{block:06}.spill"))
}

/// One rank's local CSR block of an inactive k-mer index stripe, evicted
/// to disk under memory pressure. Same CRC-framed text family as
/// [`Checkpoint`] / [`SpillShard`]; the CSR arrays are stored verbatim so
/// restore is bit-exact:
///
/// ```text
/// PASTIS-IDX 1
/// fingerprint <hex64>
/// rank <r>
/// stripe <a|b> <idx>
/// dims <nrows> <ncols> <nnz>
/// rowptr <v0> <v1> ... <v_nrows>
/// cols <c0> ... <c_{nnz-1}>
/// vals <v0> ... <v_{nnz-1}>
/// end <crc32-hex>
/// ```
///
/// Unlike output-block shards, a stripe shard that fails its CRC is
/// unrecoverable in place (the stripe's triples are gone) — so the
/// pipeline only drops a stripe from memory *after* a verified read-back
/// of what it wrote, falling back to keeping the stripe resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexShard {
    /// Run identity ([`run_fingerprint`]).
    pub fingerprint: u64,
    /// Writing rank.
    pub rank: usize,
    /// `true` for an A (row) stripe, `false` for a B (column) stripe.
    pub is_a: bool,
    /// Stripe index within its blocking dimension.
    pub stripe: usize,
    /// Local row count.
    pub nrows: usize,
    /// Local column count.
    pub ncols: usize,
    /// CSR row pointers (`nrows + 1` entries).
    pub rowptr: Vec<usize>,
    /// CSR column indices.
    pub cols: Vec<u32>,
    /// Stored values (the pipeline's index stripes carry `u32` seed
    /// positions).
    pub vals: Vec<u32>,
}

impl IndexShard {
    /// Serialize to the schema-v1 text format (CRC trailer included).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96 + self.cols.len() * 16 + self.rowptr.len() * 8);
        let _ = writeln!(s, "PASTIS-IDX {SPILL_SCHEMA_VERSION}");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(s, "rank {}", self.rank);
        let _ = writeln!(
            s,
            "stripe {} {}",
            if self.is_a { "a" } else { "b" },
            self.stripe
        );
        let _ = writeln!(s, "dims {} {} {}", self.nrows, self.ncols, self.cols.len());
        s.push_str("rowptr");
        for v in &self.rowptr {
            let _ = write!(s, " {v}");
        }
        s.push('\n');
        s.push_str("cols");
        for v in &self.cols {
            let _ = write!(s, " {v}");
        }
        s.push('\n');
        s.push_str("vals");
        for v in &self.vals {
            let _ = write!(s, " {v}");
        }
        s.push('\n');
        let crc = crc32(s.as_bytes());
        let _ = writeln!(s, "end {crc:08x}");
        s
    }

    /// Parse, CRC-check, and structurally validate a schema-v1 index shard.
    /// The CSR invariants (monotone row pointers ending at `nnz`, sorted
    /// unique in-bounds columns) are re-checked so even a CRC-colliding
    /// forgery yields `Err`, never a panic downstream.
    ///
    /// # Errors
    ///
    /// Any structural problem is an `Err`; the caller keeps (or rebuilds)
    /// the in-memory stripe instead.
    pub fn parse(text: &str) -> Result<IndexShard, String> {
        let body_end = text
            .rfind("end ")
            .ok_or_else(|| "index shard missing end trailer".to_string())?;
        let trailer = text[body_end..].strip_prefix("end ").unwrap().trim();
        let want_crc = u32::from_str_radix(trailer, 16)
            .map_err(|_| format!("bad index shard crc trailer: {trailer:?}"))?;
        let body = &text[..body_end];
        let got_crc = crc32(body.as_bytes());
        if got_crc != want_crc {
            return Err(format!(
                "index shard crc mismatch: file says {want_crc:08x}, content is {got_crc:08x}"
            ));
        }

        let mut lines = body.lines();
        let magic = lines.next().unwrap_or_default();
        let version: u32 = magic
            .strip_prefix("PASTIS-IDX ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad index shard magic: {magic:?}"))?;
        if version != SPILL_SCHEMA_VERSION {
            return Err(format!(
                "unsupported index shard schema version {version} (this build reads {SPILL_SCHEMA_VERSION})"
            ));
        }

        fn keyed<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
            let line = line.ok_or_else(|| format!("index shard truncated before {key:?}"))?;
            line.strip_prefix(key)
                .ok_or_else(|| format!("expected {key:?} line, got {line:?}"))
        }
        fn vec_of<T: std::str::FromStr>(rest: &str, what: &str) -> Result<Vec<T>, String> {
            rest.split_whitespace()
                .map(|t| {
                    t.parse()
                        .map_err(|_| format!("bad {what} entry in index shard: {t:?}"))
                })
                .collect()
        }

        let fingerprint = u64::from_str_radix(keyed(lines.next(), "fingerprint ")?.trim(), 16)
            .map_err(|_| "bad fingerprint in index shard".to_string())?;
        let rank: usize = keyed(lines.next(), "rank ")?
            .trim()
            .parse()
            .map_err(|_| "bad rank in index shard".to_string())?;
        let mut it = keyed(lines.next(), "stripe ")?.split_whitespace();
        let is_a = match it.next() {
            Some("a") => true,
            Some("b") => false,
            other => return Err(format!("bad stripe side in index shard: {other:?}")),
        };
        let stripe: usize = it
            .next()
            .ok_or("index shard stripe line missing index")?
            .parse()
            .map_err(|_| "bad stripe index in index shard".to_string())?;
        let mut it = keyed(lines.next(), "dims ")?.split_whitespace();
        let mut dim = |what: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("index shard dims line missing {what}"))?
                .parse()
                .map_err(|_| format!("bad {what} in index shard"))
        };
        let nrows = dim("nrows")?;
        let ncols = dim("ncols")?;
        let nnz = dim("nnz")?;

        let rowptr: Vec<usize> = vec_of(keyed(lines.next(), "rowptr")?, "rowptr")?;
        let cols: Vec<u32> = vec_of(keyed(lines.next(), "cols")?, "cols")?;
        let vals: Vec<u32> = vec_of(keyed(lines.next(), "vals")?, "vals")?;
        if lines.next().is_some() {
            return Err("trailing lines in index shard".to_string());
        }

        // CSR invariants, checked here so downstream from_parts can't panic.
        if rowptr.len() != nrows + 1 {
            return Err(format!(
                "index shard rowptr has {} entries for {nrows} rows",
                rowptr.len()
            ));
        }
        if cols.len() != nnz || vals.len() != nnz {
            return Err(format!(
                "index shard nnz mismatch: dims say {nnz}, got {} cols / {} vals",
                cols.len(),
                vals.len()
            ));
        }
        if rowptr.first() != Some(&0) || rowptr.last() != Some(&nnz) {
            return Err("index shard rowptr does not span [0, nnz]".to_string());
        }
        if rowptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("index shard rowptr not monotone".to_string());
        }
        for i in 0..nrows {
            let r = &cols[rowptr[i]..rowptr[i + 1]];
            if r.windows(2).any(|w| w[0] >= w[1]) || r.iter().any(|&c| (c as usize) >= ncols) {
                return Err(format!("index shard row {i} columns not sorted/in-bounds"));
            }
        }
        Ok(IndexShard {
            fingerprint,
            rank,
            is_a,
            stripe,
            nrows,
            ncols,
            rowptr,
            cols,
            vals,
        })
    }
}

/// The file a rank's evicted index stripe lives in.
pub fn index_spill_path(dir: &Path, rank: usize, is_a: bool, stripe: usize) -> PathBuf {
    dir.join(format!("rank{rank}")).join(format!(
        "idx_{}{stripe:04}.spill",
        if is_a { "a" } else { "b" }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::encode;

    fn sample_checkpoint() -> Checkpoint {
        let mut times = TimeBreakdown::new();
        times.record(Component::Align, 1.25);
        times.record(Component::SpGemm, 0.125);
        times.record(Component::CommWait, 3.0e-7);
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            rank: 1,
            nranks: 4,
            n_vertices: 10,
            blocks_done: 2,
            stats: SearchStats {
                candidates: 100,
                aligned_pairs: 42,
                cells: 9000,
                similar_pairs: 7,
                spgemm_products: 555,
                total_seconds: 1.5,
                align_kernel_seconds: 0.7,
                align_cpu_seconds: 1.4,
            },
            times,
            per_block: vec![
                BlockTiming {
                    r: 0,
                    c: 0,
                    sparse_seconds: 0.1,
                    align_seconds: 0.2,
                    candidates: 60,
                    aligned_pairs: 30,
                },
                BlockTiming {
                    r: 0,
                    c: 1,
                    sparse_seconds: 0.3,
                    align_seconds: 0.4,
                    candidates: 40,
                    aligned_pairs: 12,
                },
            ],
            edges: vec![
                SimilarityEdge {
                    i: 2,
                    j: 5,
                    score: 37,
                    ani: 0.875,
                    coverage: 0.5,
                    common_kmers: 3,
                },
                SimilarityEdge {
                    i: 0,
                    j: 9,
                    score: 11,
                    ani: 0.333_333_34,
                    coverage: 0.999_999_9,
                    common_kmers: 1,
                },
            ],
        }
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let ck = sample_checkpoint();
        let parsed = Checkpoint::parse(&ck.to_text()).unwrap();
        assert_eq!(parsed, ck);
        // Bit-exactness beyond PartialEq: re-serialization is identical.
        assert_eq!(parsed.to_text(), ck.to_text());
    }

    #[test]
    fn crc_catches_torn_or_flipped_content() {
        let ck = sample_checkpoint();
        let text = ck.to_text();
        // Flip a digit inside the body.
        let corrupted = text.replacen("blocks_done 2", "blocks_done 3", 1);
        assert!(Checkpoint::parse(&corrupted).unwrap_err().contains("crc"));
        // Truncate mid-file (torn write): the trailer disappears or the crc
        // no longer covers the body.
        let torn = &text[..text.len() / 2];
        assert!(Checkpoint::parse(torn).is_err());
    }

    #[test]
    fn schema_version_is_enforced() {
        let text = sample_checkpoint()
            .to_text()
            .replacen("PASTIS-CKPT 1", "PASTIS-CKPT 2", 1);
        // CRC fails first (content changed) — rebuild a consistent v2 file.
        let body_end = text.rfind("end ").unwrap();
        let body = &text[..body_end];
        let fixed = format!("{body}end {:08x}\n", crc32(body.as_bytes()));
        let err = Checkpoint::parse(&fixed).unwrap_err();
        assert!(err.contains("schema version 2"), "{err}");
    }

    #[test]
    fn save_and_latest_valid_pick_newest_matching() {
        let dir = std::env::temp_dir().join(format!("pastis-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut ck = sample_checkpoint();
        save(&dir, &ck).unwrap();
        ck.blocks_done = 3;
        ck.per_block.push(BlockTiming {
            r: 1,
            c: 1,
            sparse_seconds: 0.5,
            align_seconds: 0.6,
            candidates: 1,
            aligned_pairs: 1,
        });
        save(&dir, &ck).unwrap();
        // A corrupt newer file must be skipped, not trusted.
        let bad = checkpoint_path(&dir, ck.rank, 4);
        fs::create_dir_all(bad.parent().unwrap()).unwrap();
        fs::write(&bad, "PASTIS-CKPT 1\ngarbage\n").unwrap();

        let got = latest_valid(&dir, ck.rank, ck.nranks, ck.fingerprint).unwrap();
        assert_eq!(got.blocks_done, 3);
        assert_eq!(got, ck);
        // Wrong fingerprint or world size: nothing valid.
        assert!(latest_valid(&dir, ck.rank, ck.nranks, 1).is_none());
        assert!(latest_valid(&dir, ck.rank, 8, ck.fingerprint).is_none());
        // Other ranks have no files.
        assert!(latest_valid(&dir, 0, ck.nranks, ck.fingerprint).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_output_relevant_params_only() {
        let mut store = SeqStore::new();
        store.push("a".into(), encode("MKVLAWYHEE").unwrap());
        store.push("b".into(), encode("GGSTPNQRCD").unwrap());
        let base = SearchParams::test_defaults();
        let fp = run_fingerprint(&base, &store);
        assert_eq!(fp, run_fingerprint(&base.clone(), &store), "deterministic");
        // Threads never change the output → same fingerprint.
        assert_eq!(
            fp,
            run_fingerprint(&base.clone().with_align_threads(8), &store)
        );
        // Neither does a memory budget: a budgeted run spills and streams
        // back bit-exact shards, so its checkpoints stay interchangeable
        // with an unbudgeted run's.
        assert_eq!(
            fp,
            run_fingerprint(
                &base
                    .clone()
                    .with_mem_budget(1 << 20)
                    .with_spill_dir("/tmp/spill"),
                &store
            )
        );
        // Neither do the local SpGEMM kernel knobs (bit-identical kernels).
        assert_eq!(
            fp,
            run_fingerprint(
                &base
                    .clone()
                    .with_spgemm_threads(8)
                    .with_spgemm(pastis_sparse::SpGemmKind::Heap),
                &store
            )
        );
        // Output-relevant knobs change it.
        assert_ne!(
            fp,
            run_fingerprint(&base.clone().with_blocking(2, 2), &store)
        );
        assert_ne!(
            fp,
            run_fingerprint(
                &SearchParams {
                    ani_threshold: 0.5,
                    ..base.clone()
                },
                &store
            )
        );
        // So does the input.
        let mut store2 = SeqStore::new();
        store2.push("a".into(), encode("MKVLAWYHEE").unwrap());
        store2.push("b".into(), encode("GGSTPNQRCE").unwrap());
        assert_ne!(fp, run_fingerprint(&base, &store2));
    }

    #[test]
    fn spill_shard_round_trip_is_bit_exact() {
        let shard = SpillShard {
            fingerprint: 0xFEED_F00D_1234_5678,
            rank: 3,
            block: 41,
            edges: sample_checkpoint().edges,
        };
        let parsed = SpillShard::parse(&shard.to_text()).unwrap();
        assert_eq!(parsed, shard);
        assert_eq!(parsed.to_text(), shard.to_text());
        // Empty shards (a block with no surviving edges) round-trip too.
        let empty = SpillShard {
            edges: Vec::new(),
            ..shard
        };
        assert_eq!(SpillShard::parse(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn spill_shard_crc_catches_flips_and_truncation() {
        let shard = SpillShard {
            fingerprint: 1,
            rank: 0,
            block: 7,
            edges: sample_checkpoint().edges,
        };
        let text = shard.to_text();
        // Flip one byte anywhere in the body.
        let mut bytes = text.clone().into_bytes();
        bytes[text.len() / 3] ^= 0x01;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(SpillShard::parse(&flipped).is_err());
        // Torn write.
        assert!(SpillShard::parse(&text[..text.len() / 2]).is_err());
        // Wrong schema version with a self-consistent CRC.
        let v2 = text.replacen("PASTIS-SPILL 1", "PASTIS-SPILL 2", 1);
        let body_end = v2.rfind("end ").unwrap();
        let body = &v2[..body_end];
        let fixed = format!("{body}end {:08x}\n", crc32(body.as_bytes()));
        assert!(SpillShard::parse(&fixed)
            .unwrap_err()
            .contains("schema version 2"));
    }

    #[test]
    fn spill_paths_are_per_rank_per_block() {
        let dir = Path::new("/tmp/spill");
        assert_eq!(
            spill_path(dir, 2, 41),
            Path::new("/tmp/spill/rank2/block000041.spill")
        );
        assert_ne!(spill_path(dir, 2, 41), spill_path(dir, 1, 41));
        assert_ne!(spill_path(dir, 2, 41), spill_path(dir, 2, 40));
    }

    fn sample_index_shard() -> IndexShard {
        // 3x5 CSR: row0 = {1:7, 4:9}, row1 = {}, row2 = {0:1, 2:2, 3:3}
        IndexShard {
            fingerprint: 0xABCD_EF01_2345_6789,
            rank: 2,
            is_a: true,
            stripe: 5,
            nrows: 3,
            ncols: 5,
            rowptr: vec![0, 2, 2, 5],
            cols: vec![1, 4, 0, 2, 3],
            vals: vec![7, 9, 1, 2, 3],
        }
    }

    #[test]
    fn index_shard_round_trip_is_bit_exact() {
        let shard = sample_index_shard();
        let parsed = IndexShard::parse(&shard.to_text()).unwrap();
        assert_eq!(parsed, shard);
        assert_eq!(parsed.to_text(), shard.to_text());
        // An empty stripe (all rows empty) round-trips too.
        let empty = IndexShard {
            is_a: false,
            nrows: 2,
            rowptr: vec![0, 0, 0],
            cols: Vec::new(),
            vals: Vec::new(),
            ..shard
        };
        assert_eq!(IndexShard::parse(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn index_shard_rejects_corruption_and_forged_structure() {
        let shard = sample_index_shard();
        let text = shard.to_text();
        // Bit flip anywhere in the body.
        let mut bytes = text.clone().into_bytes();
        bytes[text.len() / 2] ^= 0x01;
        assert!(IndexShard::parse(&String::from_utf8(bytes).unwrap()).is_err());
        // Torn write.
        assert!(IndexShard::parse(&text[..text.len() / 2]).is_err());
        // A shard whose CRC is valid but whose CSR invariants are broken
        // (out-of-bounds column) must parse to Err, not panic downstream.
        let forged_body = text[..text.rfind("end ").unwrap()].replacen("cols 1 4", "cols 1 9", 1);
        let forged = format!("{forged_body}end {:08x}\n", crc32(forged_body.as_bytes()));
        assert!(IndexShard::parse(&forged)
            .unwrap_err()
            .contains("not sorted/in-bounds"));
        // Non-monotone rowptr, again with a self-consistent CRC.
        let forged_body =
            text[..text.rfind("end ").unwrap()].replacen("rowptr 0 2 2 5", "rowptr 0 3 2 5", 1);
        let forged = format!("{forged_body}end {:08x}\n", crc32(forged_body.as_bytes()));
        assert!(IndexShard::parse(&forged).is_err());
    }

    #[test]
    fn index_spill_paths_separate_sides_and_stripes() {
        let dir = Path::new("/tmp/spill");
        assert_eq!(
            index_spill_path(dir, 1, true, 3),
            Path::new("/tmp/spill/rank1/idx_a0003.spill")
        );
        assert_ne!(
            index_spill_path(dir, 1, true, 3),
            index_spill_path(dir, 1, false, 3)
        );
        assert_ne!(
            index_spill_path(dir, 1, true, 3),
            index_spill_path(dir, 1, true, 4)
        );
    }

    #[test]
    fn graph_reconstruction_preserves_insertion_order() {
        let ck = sample_checkpoint();
        let g = ck.graph();
        // add() canonicalizes endpoints but keeps insertion order.
        let keys: Vec<(u32, u32)> = g.edges().iter().map(|e| e.key()).collect();
        assert_eq!(keys, vec![(2, 5), (0, 9)]);
    }
}
