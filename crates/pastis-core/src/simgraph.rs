//! The similarity graph — the search's output.
//!
//! PASTIS's output is "the similarity graph in triplets whose entries
//! indicate two sequences and the similarity between them". Each rank
//! accumulates the edges it aligned; the graph stays distributed and is
//! written with partitioned parallel I/O, but can be gathered for analysis
//! (the clustering use case the paper's introduction motivates — here via
//! connected components).

use std::fmt::Write as _;

/// One similarity edge (one output triplet plus the alignment metrics the
/// filter was applied to).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityEdge {
    /// First sequence (global id; always < `j`).
    pub i: u32,
    /// Second sequence.
    pub j: u32,
    /// Smith–Waterman score.
    pub score: i32,
    /// Identity over the alignment (the "ANI" the threshold applies to).
    pub ani: f32,
    /// Coverage of the shorter sequence.
    pub coverage: f32,
    /// Number of shared k-mers that discovered the pair.
    pub common_kmers: u32,
}

impl SimilarityEdge {
    /// Canonical ordering key (by endpoints).
    pub fn key(&self) -> (u32, u32) {
        (self.i, self.j)
    }

    /// The output-file triplet line: `i<TAB>j<TAB>ani` plus metrics.
    pub fn to_tsv(&self) -> String {
        let mut s = String::with_capacity(48);
        let _ = write!(
            s,
            "{}\t{}\t{:.4}\t{:.4}\t{}\t{}",
            self.i, self.j, self.ani, self.coverage, self.score, self.common_kmers
        );
        s
    }
}

/// A (possibly partial) similarity graph: a bag of edges over `n`
/// sequences.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimilarityGraph {
    n: usize,
    edges: Vec<SimilarityEdge>,
}

impl SimilarityGraph {
    /// An empty graph over `n` sequences.
    pub fn new(n: usize) -> SimilarityGraph {
        SimilarityGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of sequences (vertices).
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[SimilarityEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an edge; endpoints are canonicalized to `i < j`.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or out-of-range vertex.
    pub fn add(&mut self, mut e: SimilarityEdge) {
        assert!(e.i != e.j, "self-loop in similarity graph");
        assert!(
            (e.i as usize) < self.n && (e.j as usize) < self.n,
            "edge endpoint out of range"
        );
        if e.i > e.j {
            std::mem::swap(&mut e.i, &mut e.j);
        }
        self.edges.push(e);
    }

    /// Merge another partial graph (e.g. another rank's edges).
    pub fn merge(&mut self, other: SimilarityGraph) {
        assert_eq!(self.n, other.n, "merging graphs over different vertex sets");
        self.edges.extend(other.edges);
    }

    /// Sort edges canonically and drop exact duplicate endpoints (keeping
    /// the first) — after this, two graphs over the same search compare
    /// equal iff they found the same pairs with the same metrics.
    pub fn normalize(&mut self) {
        self.edges.sort_by_key(SimilarityEdge::key);
        self.edges.dedup_by_key(|e| e.key());
    }

    /// Render all edges as TSV lines (one per edge, canonical order).
    pub fn to_tsv_lines(&self) -> Vec<String> {
        let mut sorted: Vec<&SimilarityEdge> = self.edges.iter().collect();
        sorted.sort_by_key(|e| e.key());
        sorted.iter().map(|e| e.to_tsv()).collect()
    }

    /// Vertex degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for e in &self.edges {
            d[e.i as usize] += 1;
            d[e.j as usize] += 1;
        }
        d
    }

    /// Connected components by union–find: returns a component label per
    /// vertex (labels are the smallest vertex id in the component). This
    /// is the "clustering of sequences" the similarity search feeds
    /// (Section III).
    pub fn connected_components(&self) -> Vec<u32> {
        let mut parent: Vec<u32> = (0..self.n as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for e in &self.edges {
            let (a, b) = (find(&mut parent, e.i), find(&mut parent, e.j));
            if a != b {
                // Union by smaller label so labels are canonical minima.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
        (0..self.n as u32).map(|v| find(&mut parent, v)).collect()
    }

    /// Sizes of non-singleton clusters, descending.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let labels = self.connected_components();
        let mut counts = std::collections::HashMap::new();
        for &l in &labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<usize> = counts.into_values().filter(|&s| s > 1).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(i: u32, j: u32) -> SimilarityEdge {
        SimilarityEdge {
            i,
            j,
            score: 50,
            ani: 0.8,
            coverage: 0.9,
            common_kmers: 3,
        }
    }

    #[test]
    fn add_canonicalizes_endpoints() {
        let mut g = SimilarityGraph::new(5);
        g.add(edge(3, 1));
        assert_eq!(g.edges()[0].key(), (1, 3));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        SimilarityGraph::new(5).add(edge(2, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        SimilarityGraph::new(3).add(edge(1, 7));
    }

    #[test]
    fn merge_and_normalize_deduplicate() {
        let mut a = SimilarityGraph::new(6);
        a.add(edge(0, 1));
        a.add(edge(2, 3));
        let mut b = SimilarityGraph::new(6);
        b.add(edge(1, 0)); // duplicate of (0,1)
        b.add(edge(4, 5));
        a.merge(b);
        assert_eq!(a.n_edges(), 4);
        a.normalize();
        assert_eq!(a.n_edges(), 3);
        let keys: Vec<_> = a.edges().iter().map(|e| e.key()).collect();
        assert_eq!(keys, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn tsv_lines_are_sorted_and_parseable() {
        let mut g = SimilarityGraph::new(4);
        g.add(edge(2, 3));
        g.add(edge(0, 1));
        let lines = g.to_tsv_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("0\t1\t"));
        let fields: Vec<&str> = lines[0].split('\t').collect();
        assert_eq!(fields.len(), 6);
        assert_eq!(fields[4], "50");
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let mut g = SimilarityGraph::new(4);
        g.add(edge(0, 1));
        g.add(edge(0, 2));
        assert_eq!(g.degrees(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn connected_components_cluster_transitively() {
        let mut g = SimilarityGraph::new(7);
        g.add(edge(0, 1));
        g.add(edge(1, 2)); // {0,1,2}
        g.add(edge(4, 5)); // {4,5}
        let labels = g.connected_components();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[3], 3); // singleton keeps own label
        assert_eq!(labels[6], 6);
        assert_eq!(g.cluster_sizes(), vec![3, 2]);
    }

    #[test]
    fn components_label_is_minimum_of_component() {
        let mut g = SimilarityGraph::new(5);
        g.add(edge(3, 4));
        g.add(edge(2, 3));
        let labels = g.connected_components();
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 2);
        assert_eq!(labels[4], 2);
    }

    #[test]
    fn empty_graph() {
        let g = SimilarityGraph::new(3);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.cluster_sizes(), Vec::<usize>::new());
        assert_eq!(g.connected_components(), vec![0, 1, 2]);
    }
}
