//! The query-serving loop behind `pastis serve` (ROADMAP #1): answer
//! streams of queries against a [`PersistedIndex`] instead of re-running
//! the all-vs-all batch job.
//!
//! Three pieces sit in front of the compute:
//!
//! * [`AdmissionBatcher`] — groups incoming queries into SIMD-lane-aligned
//!   batches (full batches are a multiple of the vector kernel's lane
//!   count, sized from the cost model via
//!   [`crate::perfmodel::recommended_serve_batch`]) with a max-latency
//!   flush deadline so a trickling stream still gets answers.
//! * [`ResultCache`] — a bounded LRU keyed by query *content* (the full
//!   sequence bytes, not a hash, so collisions are impossible), with
//!   hit/miss/eviction counters. A query's cached value is its complete
//!   hit vector against the reference set — content-determined, so
//!   serving with the cache on is bit-identical to serving with it off.
//! * The batch engine — forms `A_query` exactly as the batch pipeline
//!   forms its SUMMA operand (same k-mer triples, first-position keep-min
//!   combine, remap through the index's compacted column space), runs one
//!   striped SpGEMM against the loaded shards
//!   ([`SpGemmPool::multiply_striped`]), and aligns candidates through
//!   the same [`AlignPool`] kernels and edge construction as
//!   [`crate::pipeline`].
//!
//! **Conformance contract** (pinned by `tests/serve_e2e.rs` and the unit
//! tests below): serving the reference set back as queries against its own
//! index emits a TSV byte-identical to the batch `pastis search` run —
//! for any admission batch split, thread count, SIMD backend, SpGEMM
//! kernel, and cache setting. The argument: per-entry overlap values
//! combine in ascending-k-mer order in both paths (single-stage Gustavson
//! here, pinned rank-invariant in batch), alignment results are per-pair
//! and batching-independent, and edge construction is shared code.
//!
//! Telemetry: one `serve.request` span per query (admission → result,
//! the latency series behind the serve p50/p95/p99 report), one
//! `serve.batch` span per executed batch, one `index.load` span per
//! stripe load, plus cache hit/miss counters — all registered in
//! [`pastis_trace::names`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use pastis_align::batch::AlignTask;
use pastis_align::matrices::Blosum62;
use pastis_align::parallel::AlignPool;
use pastis_comm::MachineModel;
use pastis_pool::{Engine as PoolEngine, WorkPool};
use pastis_seqio::SeqStore;
use pastis_sparse::{CsrMatrix, SpGemmPool, Triples};
use pastis_trace::{names, span, Component, Recorder, SpanGuard};

use crate::autotune::{self, TunePolicy};
use crate::filter::{candidate_passes, EdgeFilter};
use crate::index::{store_digest, PersistedIndex};
use crate::kmer::kmer_matrix_triples;
use crate::overlap::OverlapSemiring;
use crate::params::{AlignKind, SearchParams};
use crate::pipeline::{banded_edge, PairTask};
use crate::simgraph::{SimilarityEdge, SimilarityGraph};
use crate::subkmers::kmer_matrix_triples_with_substitutes;

/// Admission batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// SIMD lane count of the alignment kernel; full batches are a
    /// multiple of it (clamped to ≥ 1).
    pub lanes: usize,
    /// Hard batch-size cap; no emitted batch ever exceeds it.
    pub max_batch: usize,
    /// Flush deadline: once the oldest queued query has waited this many
    /// microseconds, [`AdmissionBatcher::poll`] drains even a partial
    /// (non-lane-aligned) batch — latency beats alignment.
    pub max_wait_us: u64,
}

/// FIFO admission queue emitting lane-aligned batches with a max-latency
/// flush deadline. Purely deterministic: batch boundaries depend only on
/// the push/poll sequence and the clock values the caller passes in, and
/// results never depend on batch boundaries at all (see module docs).
#[derive(Debug)]
pub struct AdmissionBatcher {
    cfg: BatcherConfig,
    queue: std::collections::VecDeque<(u32, u64)>,
}

impl AdmissionBatcher {
    /// A new empty batcher (`lanes` and `max_batch` are clamped to ≥ 1).
    pub fn new(mut cfg: BatcherConfig) -> AdmissionBatcher {
        cfg.lanes = cfg.lanes.max(1);
        cfg.max_batch = cfg.max_batch.max(1);
        AdmissionBatcher {
            cfg,
            queue: std::collections::VecDeque::new(),
        }
    }

    /// The full-batch size: the largest lane multiple not exceeding
    /// `max_batch` (or `max_batch` itself when it is below one lane).
    pub fn full_batch(&self) -> usize {
        let aligned = self.cfg.max_batch - self.cfg.max_batch % self.cfg.lanes;
        if aligned == 0 {
            self.cfg.max_batch
        } else {
            aligned
        }
    }

    /// Queued queries not yet emitted.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn drain(&mut self, n: usize) -> Vec<u32> {
        self.queue.drain(..n).map(|(q, _)| q).collect()
    }

    /// Admit a query at `now_us`; returns a full lane-aligned batch when
    /// the queue reaches the full-batch size.
    pub fn push(&mut self, query: u32, now_us: u64) -> Option<Vec<u32>> {
        self.queue.push_back((query, now_us));
        (self.queue.len() >= self.full_batch()).then(|| {
            let n = self.full_batch();
            self.drain(n)
        })
    }

    /// Deadline check: when the oldest queued query has waited past
    /// `max_wait_us`, drain up to one full batch (possibly partial — the
    /// deadline always wins over lane alignment).
    pub fn poll(&mut self, now_us: u64) -> Option<Vec<u32>> {
        let (_, admitted) = *self.queue.front()?;
        (now_us.saturating_sub(admitted) >= self.cfg.max_wait_us).then(|| {
            let n = self.queue.len().min(self.full_batch());
            self.drain(n)
        })
    }

    /// The current batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.cfg.max_batch
    }

    /// The configured lane count.
    pub fn lanes(&self) -> usize {
        self.cfg.lanes
    }

    /// Re-size the batch cap between batches (clamped to ≥ 1) — the
    /// autotuner's serve-side knob. Batch boundaries never affect
    /// results (see module docs), so this is always output-safe; queued
    /// queries are unaffected until the next emission check.
    pub fn set_max_batch(&mut self, max_batch: usize) {
        self.cfg.max_batch = max_batch.max(1);
    }

    /// End-of-stream drain: emit the next batch regardless of deadlines;
    /// `None` once empty. Calling until `None` always empties the queue.
    pub fn flush(&mut self) -> Option<Vec<u32>> {
        if self.queue.is_empty() {
            return None;
        }
        let n = self.queue.len().min(self.full_batch());
        Some(self.drain(n))
    }
}

/// A bounded LRU cache keyed by full query content. Values are shared
/// (`Arc`) so a hit costs no copy. Eviction is strict LRU over a
/// monotone access stamp — deterministic for a deterministic access
/// sequence.
#[derive(Debug)]
pub struct ResultCache<V> {
    cap: usize,
    tick: u64,
    map: HashMap<Vec<u8>, (u64, Arc<V>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> ResultCache<V> {
    /// A cache holding at most `cap` entries (clamped to ≥ 1).
    pub fn new(cap: usize) -> ResultCache<V> {
        ResultCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up by content; a hit refreshes recency.
    pub fn get(&mut self, key: &[u8]) -> Option<Arc<V>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((stamp, v)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least-recently-used
    /// entries until the bound holds.
    pub fn insert(&mut self, key: Vec<u8>, value: Arc<V>) {
        self.tick += 1;
        self.map.insert(key, (self.tick, value));
        while self.map.len() > self.cap {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("cache over bound is non-empty");
            self.map.remove(&lru);
            self.evictions += 1;
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to respect the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// One query's hit against one reference: everything needed to emit the
/// result row, minus the query's identity — the cached value is purely
/// content-determined, so a duplicate query with a different id reuses it
/// verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeHit {
    /// Reference sequence id (global column of the index).
    pub j: u32,
    /// Alignment score.
    pub score: i32,
    /// Identity (or normalized score for banded/score-only kernels).
    pub ani: f32,
    /// Coverage (ditto).
    pub coverage: f32,
    /// Shared k-mer count from the overlap matrix.
    pub common_kmers: u32,
}

/// Serving knobs on top of the shared [`SearchParams`] (whose k-mer,
/// threshold, alignment, SIMD, kernel, and thread knobs all apply).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The search parameters; `k`/`alphabet`/`substitute_kmers` must
    /// match the index (enforced by [`PersistedIndex::check_params`]).
    pub params: SearchParams,
    /// Admission batch cap; 0 picks a cost-model-derived lane-aligned
    /// size ([`crate::perfmodel::recommended_serve_batch`]).
    pub max_batch: usize,
    /// Admission flush deadline in microseconds.
    pub max_wait_us: u64,
    /// Result-cache entries (0 disables the cache).
    pub cache_entries: usize,
}

impl ServeConfig {
    /// Serving defaults around the given search parameters: auto batch
    /// size, 10 ms flush deadline, 1024-entry cache.
    pub fn from_params(params: SearchParams) -> ServeConfig {
        ServeConfig {
            params,
            max_batch: 0,
            max_wait_us: 10_000,
            cache_entries: 1024,
        }
    }
}

/// Serving-run counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Queries admitted.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Queries computed fresh (cache enabled but missed).
    pub cache_misses: u64,
    /// Overlap-matrix nonzeros inspected.
    pub candidates: u64,
    /// Pairs aligned.
    pub aligned_pairs: u64,
    /// DP cells computed.
    pub cells: u64,
    /// Result rows emitted.
    pub emitted: u64,
    /// Index stripes loaded from disk.
    pub stripes_loaded: u64,
    /// Whether the query stream was recognized as the reference set
    /// itself (digest match) and served in batch-conformant self mode.
    pub self_mode: bool,
}

/// A finished serving run: the output rows (TSV, in final order) plus
/// counters.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// TSV rows. In self mode these are byte-identical to the batch
    /// search's `to_tsv_lines()`; otherwise one row per (query, hit) in
    /// query order, references ascending.
    pub lines: Vec<String>,
    /// Run counters.
    pub stats: ServeStats,
}

/// The per-batch compute engine: loaded stripes + pools.
struct BatchEngine<'a> {
    index: &'a PersistedIndex,
    queries: &'a SeqStore,
    params: &'a SearchParams,
    filter: EdgeFilter,
    spgemm: SpGemmPool,
    align: AlignPool,
    recorder: &'a Recorder,
    stripes: Vec<Option<CsrMatrix<u32>>>,
    stripes_loaded: u64,
}

impl BatchEngine<'_> {
    /// Load every not-yet-resident stripe (on demand, first batch pays).
    fn ensure_stripes(&mut self) -> Result<(), String> {
        for s in 0..self.stripes.len() {
            if self.stripes[s].is_some() {
                continue;
            }
            let _load = span!(self.recorder, Component::Io, names::SPAN_INDEX_LOAD, {
                stripe: s as u64,
            });
            self.stripes[s] = Some(self.index.load_stripe(s)?);
            self.stripes_loaded += 1;
            self.recorder
                .add_counter(names::CTR_INDEX_STRIPES_LOADED, 1.0);
        }
        Ok(())
    }

    /// Answer one admission batch: the full hit vector of every query in
    /// it, in batch order, references ascending.
    fn run_batch(
        &mut self,
        qids: &[u32],
        stats: &mut ServeStats,
    ) -> Result<Vec<Vec<ServeHit>>, String> {
        let mut bspan = span!(self.recorder, Component::SparseOther, names::SPAN_SERVE_BATCH, {
            size: qids.len() as u64,
        });
        self.ensure_stripes()?;
        let bn = qids.len();
        let p = self.params;
        let manifest = &self.index.manifest;

        // A_query: the batch pipeline's operand recipe on the batch's own
        // little store — triples of first k-mer positions, remapped into
        // the index's compacted column space (ids the references never
        // produce cannot match and are dropped), first-position keep-min.
        let mut bstore = SeqStore::new();
        for &q in qids {
            bstore.push(String::new(), self.queries.seq(q as usize).to_vec());
        }
        let t: Triples<u32> = if p.substitute_kmers > 0 {
            kmer_matrix_triples_with_substitutes(
                &bstore,
                0,
                bn,
                p.k,
                p.alphabet,
                p.substitute_kmers,
            )
        } else {
            kmer_matrix_triples(&bstore, 0, bn, p.k, p.alphabet)
        };
        let mut compact = Triples::new(bn, manifest.inner_dim());
        for e in &t.entries {
            if let Ok(c) = manifest.col_map.binary_search(&e.col) {
                compact.push(e.row, c as u32, e.val);
            }
        }
        let keep_min = |acc: &mut u32, inc: u32| {
            if inc < *acc {
                *acc = inc;
            }
        };
        let a_qb = CsrMatrix::from_triples_combining(compact, keep_min);

        // One striped SpGEMM over the overlap semiring: per-entry combine
        // order is ascending k-mer id, exactly the batch SUMMA's order.
        let sr = OverlapSemiring;
        let (c, gemm_stats) = self.spgemm.multiply_striped(
            &sr,
            &a_qb,
            self.stripes.iter().map(|s| s.as_ref().expect("loaded")),
        );
        bspan.push_arg("products", gemm_stats.products);

        // Candidate selection + seed extraction, shared predicates.
        let mut tasks: Vec<AlignTask> = Vec::new();
        let mut owners: Vec<(usize, u32, u32)> = Vec::new();
        for li in 0..bn {
            let (cols, vals) = c.row(li);
            stats.candidates += cols.len() as u64;
            for (lj, ck) in cols.iter().zip(vals) {
                if !candidate_passes(ck, p.common_kmer_threshold) {
                    continue;
                }
                let (sq, srr) = ck.first_seed().unwrap_or((0, 0));
                tasks.push(AlignTask {
                    query: li as u32,
                    reference: bn as u32 + lj,
                    seed_q: sq,
                    seed_r: srr,
                });
                owners.push((li, *lj, ck.count));
            }
        }
        stats.aligned_pairs += tasks.len() as u64;
        bspan.push_arg("pairs", tasks.len() as u64);

        // Batch alignment through the shared pool kernels; per-pair
        // results are independent of batch composition, and the edge
        // expressions are the pipeline's own.
        let refs = &self.index.refs;
        let lookup = |id: u32| -> &[u8] {
            let id = id as usize;
            if id < bn {
                bstore.seq(id)
            } else {
                refs.seq(id - bn)
            }
        };
        let mut hits: Vec<Vec<ServeHit>> = (0..bn).map(|_| Vec::new()).collect();
        match p.align_kind {
            AlignKind::FullSw => {
                let (results, bstats) = self.align.run_traceback(&tasks, lookup, &Blosum62, p.gaps);
                stats.cells += bstats.cells;
                for (&(li, j, count), res) in owners.iter().zip(&results) {
                    let (qlen, rlen) = (bstore.seq(li).len(), refs.seq(j as usize).len());
                    if self.filter.passes(res, qlen, rlen) {
                        hits[li].push(ServeHit {
                            j,
                            score: res.score,
                            ani: res.identity() as f32,
                            coverage: res.coverage_min(qlen, rlen) as f32,
                            common_kmers: count,
                        });
                    }
                }
            }
            AlignKind::Banded(w) => {
                let (results, bstats) = self.align.run_banded(&tasks, lookup, &Blosum62, p.gaps, w);
                stats.cells += bstats.cells;
                for (&(li, j, count), res) in owners.iter().zip(&results) {
                    let pt = PairTask {
                        i: 0,
                        j,
                        seed_q: 0,
                        seed_r: 0,
                        count,
                    };
                    let (q, r) = (bstore.seq(li), refs.seq(j as usize));
                    if let Some(e) = banded_edge(&pt, res.score, q, r, &self.filter) {
                        hits[li].push(ServeHit {
                            j,
                            score: e.score,
                            ani: e.ani,
                            coverage: e.coverage,
                            common_kmers: e.common_kmers,
                        });
                    }
                }
            }
            AlignKind::ScoreOnly => {
                let (results, bstats) =
                    self.align.run_score_only(&tasks, lookup, &Blosum62, p.gaps);
                stats.cells += bstats.cells;
                bspan.push_arg("simd", bstats.simd.id());
                for (&(li, j, count), res) in owners.iter().zip(&results) {
                    let pt = PairTask {
                        i: 0,
                        j,
                        seed_q: 0,
                        seed_r: 0,
                        count,
                    };
                    let (q, r) = (bstore.seq(li), refs.seq(j as usize));
                    if let Some(e) = banded_edge(&pt, res.score, q, r, &self.filter) {
                        hits[li].push(ServeHit {
                            j,
                            score: e.score,
                            ani: e.ani,
                            coverage: e.coverage,
                            common_kmers: e.common_kmers,
                        });
                    }
                }
            }
        }
        Ok(hits)
    }
}

/// [`serve_queries_traced`] without telemetry.
///
/// # Errors
///
/// See [`serve_queries_traced`].
pub fn serve_queries(
    index: &PersistedIndex,
    queries: &SeqStore,
    cfg: &ServeConfig,
) -> Result<ServeOutcome, String> {
    serve_queries_traced(index, queries, cfg, &Recorder::disabled())
}

/// Serve a query store against a persisted index.
///
/// When the query stream *is* the reference set (content digest match),
/// the run is in **self mode**: output is the strict-upper-triangle
/// similarity graph, byte-identical to the batch all-vs-all TSV.
/// Otherwise every (query, reference) hit is emitted in query order.
///
/// # Errors
///
/// Invalid parameters, a stale or corrupt index, and I/O failures are
/// typed errors.
pub fn serve_queries_traced(
    index: &PersistedIndex,
    queries: &SeqStore,
    cfg: &ServeConfig,
    recorder: &Recorder,
) -> Result<ServeOutcome, String> {
    let params = &cfg.params;
    params.validate()?;
    index.check_params(params.k, params.alphabet, params.substitute_kmers)?;

    let simd_backend = params
        .simd
        .resolve()
        .expect("validate() checked the SIMD policy");
    let lanes = simd_backend.lanes();
    // Batch-size precedence: a hand-tuned `fixed:batch=` spec, then an
    // explicit `--batch`, then the cost model's recommendation. All are
    // output-safe — results never depend on batch boundaries.
    let fixed_batch = match &params.tune {
        TunePolicy::Fixed(spec) => spec.batch,
        _ => None,
    };
    let max_batch = match (fixed_batch, cfg.max_batch) {
        (Some(b), _) => b,
        (None, b) if b > 0 => b,
        _ => crate::perfmodel::recommended_serve_batch(
            &MachineModel::commodity(),
            lanes,
            queries.mean_len(),
            256,
        ),
    };
    let mut batcher = AdmissionBatcher::new(BatcherConfig {
        lanes,
        max_batch,
        max_wait_us: cfg.max_wait_us,
    });
    // `--tune auto`: adapt the admission batch between batches from each
    // batch's observed wall time (see [`crate::autotune::adapt_serve_batch`]).
    // The serve conformance tests prove output is identical for every
    // batch size, so adaptation can never change an answer.
    let serve_tune = params.tune.is_auto().then(|| {
        recorder.add_counter(names::CTR_TUNE_SERVE_BATCH, max_batch as f64);
        (
            autotune::serve_batch_target_us(&MachineModel::commodity()),
            4096usize,
        )
    });

    // The same unified/per-engine worker-pool setup as the batch pipeline.
    let unified = params.threads.map(|t| {
        let wp = WorkPool::sized(t);
        wp.set_cap(PoolEngine::Align, params.align_cap);
        wp.set_cap(PoolEngine::Sparse, params.spgemm_cap);
        wp
    });
    let mut spgemm = SpGemmPool::new(params.spgemm_threads)
        .with_kind(params.spgemm)
        .with_recorder(recorder.clone());
    if let Some(wp) = &unified {
        spgemm = spgemm.with_workers(wp.clone());
    }
    let mut align = AlignPool::new(params.align_threads)
        .with_recorder(recorder.clone())
        .with_simd(simd_backend);
    if let Some(wp) = &unified {
        align = align.with_workers(wp.clone());
    }
    let mut engine = BatchEngine {
        index,
        queries,
        params,
        filter: EdgeFilter::from_params(params),
        spgemm,
        align,
        recorder,
        stripes: (0..index.manifest.n_stripes).map(|_| None).collect(),
        stripes_loaded: 0,
    };

    let nq = queries.len();
    let self_mode = store_digest(queries) == index.manifest.refs_digest;
    let mut stats = ServeStats {
        self_mode,
        ..ServeStats::default()
    };
    let mut cache: Option<ResultCache<Vec<ServeHit>>> =
        (cfg.cache_entries > 0).then(|| ResultCache::new(cfg.cache_entries));
    let mut results: Vec<Option<Arc<Vec<ServeHit>>>> = (0..nq).map(|_| None).collect();
    let mut open: Vec<Option<SpanGuard>> = (0..nq).map(|_| None).collect();
    // Request coalescing (cache-enabled runs only): a duplicate of a query
    // already queued or computing shares that in-flight result instead of
    // recomputing — content → follower query ids, drained as each batch
    // completes. Hits are content-determined, so coalescing can't change
    // output; it's what makes a duplicated stream hit even when the
    // duplicates land inside one batch window.
    let mut inflight: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    let epoch = Instant::now();

    // Finish one emitted batch: compute, fill results (representatives and
    // their coalesced followers), close request spans. Under `--tune auto`
    // (`tune` is `Some((target_us, cap))`) the observed batch wall time
    // steers the *next* batch's admission size.
    #[allow(clippy::too_many_arguments)]
    fn complete(
        engine: &mut BatchEngine<'_>,
        qids: &[u32],
        results: &mut [Option<Arc<Vec<ServeHit>>>],
        open: &mut [Option<SpanGuard>],
        cache: &mut Option<ResultCache<Vec<ServeHit>>>,
        inflight: &mut HashMap<Vec<u8>, Vec<usize>>,
        stats: &mut ServeStats,
        batcher: &mut AdmissionBatcher,
        tune: Option<(u64, usize)>,
    ) -> Result<(), String> {
        stats.batches += 1;
        engine.recorder.add_counter(names::CTR_SERVE_BATCHES, 1.0);
        let batch_start = Instant::now();
        let hits = engine.run_batch(qids, stats)?;
        if let Some((target_us, cap)) = tune {
            let wall_us = batch_start.elapsed().as_micros() as u64;
            let cur = batcher.max_batch();
            let next = autotune::adapt_serve_batch(
                cur,
                batcher.lanes(),
                cap,
                qids.len(),
                wall_us,
                target_us,
            );
            if next != cur {
                batcher.set_max_batch(next);
                engine
                    .recorder
                    .add_counter(names::CTR_TUNE_SERVE_BATCH, next as f64);
            }
        }
        for (&q, h) in qids.iter().zip(hits) {
            let h = Arc::new(h);
            let seq = engine.queries.seq(q as usize);
            if let Some(c) = cache.as_mut() {
                c.insert(seq.to_vec(), h.clone());
            }
            for f in inflight.remove(seq).into_iter().flatten() {
                results[f] = Some(h.clone());
                open[f].take();
            }
            results[q as usize] = Some(h);
            open[q as usize].take(); // drop → closes the serve.request span
        }
        Ok(())
    }

    for q in 0..nq {
        stats.requests += 1;
        recorder.add_counter(names::CTR_SERVE_REQUESTS, 1.0);
        let mut g = span!(recorder, Component::SparseOther, names::SPAN_SERVE_REQUEST, {
            query: q as u64,
        });
        if let Some(c) = cache.as_mut() {
            if let Some(h) = c.get(queries.seq(q)) {
                recorder.add_counter(names::CTR_SERVE_CACHE_HIT, 1.0);
                stats.cache_hits += 1;
                g.push_arg("cache_hit", 1);
                results[q] = Some(h);
                continue; // span guard drops here: request done
            }
            if let Some(followers) = inflight.get_mut(queries.seq(q)) {
                // An identical query is already in flight: ride its batch.
                // Answered without compute, so it counts as a cache hit.
                recorder.add_counter(names::CTR_SERVE_CACHE_HIT, 1.0);
                stats.cache_hits += 1;
                g.push_arg("cache_hit", 1);
                followers.push(q);
                open[q] = Some(g); // closes when the shared batch lands
                continue;
            }
            recorder.add_counter(names::CTR_SERVE_CACHE_MISS, 1.0);
            stats.cache_misses += 1;
            inflight.insert(queries.seq(q).to_vec(), Vec::new());
        }
        open[q] = Some(g);
        if let Some(batch) = batcher.push(q as u32, epoch.elapsed().as_micros() as u64) {
            #[rustfmt::skip]
            complete(&mut engine, &batch, &mut results, &mut open, &mut cache, &mut inflight, &mut stats, &mut batcher, serve_tune)?;
        }
        while let Some(batch) = batcher.poll(epoch.elapsed().as_micros() as u64) {
            #[rustfmt::skip]
            complete(&mut engine, &batch, &mut results, &mut open, &mut cache, &mut inflight, &mut stats, &mut batcher, serve_tune)?;
        }
    }
    while let Some(batch) = batcher.flush() {
        #[rustfmt::skip]
        complete(&mut engine, &batch, &mut results, &mut open, &mut cache, &mut inflight, &mut stats, &mut batcher, serve_tune)?;
    }
    debug_assert!(inflight.is_empty(), "all coalesced requests drained");
    if let Some(c) = &cache {
        recorder.add_counter(names::CTR_SERVE_CACHE_EVICTIONS, c.evictions() as f64);
    }
    stats.stripes_loaded = engine.stripes_loaded;

    // Emission. Self mode rebuilds the batch pipeline's exact output: the
    // strict upper triangle (each unordered pair once, from its
    // smaller-id side) through the same graph normalize/render path.
    let lines = if self_mode {
        let mut graph = SimilarityGraph::new(index.manifest.n_refs);
        for (q, r) in results.iter().enumerate() {
            let hits = r.as_ref().expect("every query answered");
            for h in hits.iter() {
                if (h.j as usize) > q {
                    graph.add(SimilarityEdge {
                        i: q as u32,
                        j: h.j,
                        score: h.score,
                        ani: h.ani,
                        coverage: h.coverage,
                        common_kmers: h.common_kmers,
                    });
                }
            }
        }
        graph.normalize();
        graph.to_tsv_lines()
    } else {
        let mut lines = Vec::new();
        for (q, r) in results.iter().enumerate() {
            let hits = r.as_ref().expect("every query answered");
            for h in hits.iter() {
                lines.push(
                    SimilarityEdge {
                        i: q as u32,
                        j: h.j,
                        score: h.score,
                        ani: h.ani,
                        coverage: h.coverage,
                        common_kmers: h.common_kmers,
                    }
                    .to_tsv(),
                );
            }
        }
        lines
    };
    stats.emitted = lines.len() as u64;
    recorder.add_counter(names::CTR_SIMILAR_PAIRS, stats.emitted as f64);
    Ok(ServeOutcome { lines, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{build_index, IndexBuildConfig};
    use crate::pipeline::run_search_serial;
    use pastis_align::matrices::encode;
    use proptest::prelude::*;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    fn tiny_store() -> SeqStore {
        let mut s = SeqStore::new();
        for (i, q) in [
            "MKVLAWYHEEMKVLAWYHEE",
            "MKVLAWYHEEMKVLAWYHEA",
            "GGSTPNQRCDGGSTPNQRCD",
            "GGSTPNQRCDGGSTPNQRCE",
            "WPWPWPWPWPWPWPWPWPWP",
        ]
        .iter()
        .enumerate()
        {
            s.push(format!("s{i}"), encode(q).unwrap());
        }
        s
    }

    /// One shared index over `tiny_store`, built once per process.
    fn shared_index_dir() -> &'static PathBuf {
        static DIR: OnceLock<PathBuf> = OnceLock::new();
        DIR.get_or_init(|| {
            let dir =
                std::env::temp_dir().join(format!("pastis-serve-shared-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let cfg = IndexBuildConfig {
                stripe_cols: 2,
                ..IndexBuildConfig::default()
            };
            build_index(&tiny_store(), &cfg, &dir, &Recorder::disabled()).unwrap();
            dir
        })
    }

    #[test]
    fn self_serve_matches_batch_search_byte_for_byte() {
        let store = tiny_store();
        let params = SearchParams::test_defaults();
        let batch = run_search_serial(&store, &params).unwrap();
        let want = batch.graph.to_tsv_lines();
        assert!(!want.is_empty(), "tiny store must produce edges");

        let idx = PersistedIndex::open(shared_index_dir()).unwrap();
        for max_batch in [1usize, 2, 64] {
            for cache_entries in [0usize, 8] {
                let cfg = ServeConfig {
                    params: params.clone(),
                    max_batch,
                    max_wait_us: 1_000_000,
                    cache_entries,
                };
                let out = serve_queries(&idx, &store, &cfg).unwrap();
                assert!(out.stats.self_mode);
                assert_eq!(
                    out.lines, want,
                    "max_batch={max_batch} cache={cache_entries}"
                );
            }
        }
    }

    #[test]
    fn duplicate_queries_hit_the_cache_with_identical_output() {
        let store = tiny_store();
        let idx = PersistedIndex::open(shared_index_dir()).unwrap();
        // A duplicated stream (not the reference set → general mode).
        let mut queries = SeqStore::new();
        for pick in [0usize, 1, 0, 0, 3, 1] {
            queries.push(format!("q{pick}"), store.seq(pick).to_vec());
        }
        let params = SearchParams::test_defaults();
        let mk = |cache_entries| ServeConfig {
            params: params.clone(),
            max_batch: 2,
            max_wait_us: 1_000_000,
            cache_entries,
        };
        let cold = serve_queries(&idx, &queries, &mk(0)).unwrap();
        let warm = serve_queries(&idx, &queries, &mk(16)).unwrap();
        assert_eq!(cold.lines, warm.lines);
        assert!(!cold.stats.self_mode);
        assert_eq!(cold.stats.cache_hits, 0);
        assert!(warm.stats.cache_hits >= 3, "{:?}", warm.stats);
        // General mode answers every duplicate identically.
        assert!(!warm.lines.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Cache on ≡ cache off for arbitrary query streams with
        /// duplicates, across batch splits.
        #[test]
        fn cache_on_equals_cache_off(
            picks in proptest::collection::vec(0usize..5, 0..10),
            max_batch in 1usize..6,
            cache_entries in 1usize..4,
        ) {
            let store = tiny_store();
            let idx = PersistedIndex::open(shared_index_dir()).unwrap();
            let mut queries = SeqStore::new();
            for (n, &p) in picks.iter().enumerate() {
                queries.push(format!("q{n}"), store.seq(p).to_vec());
            }
            let params = SearchParams::test_defaults();
            let mk = |cache: usize| ServeConfig {
                params: params.clone(),
                max_batch,
                max_wait_us: 1_000_000,
                cache_entries: cache,
            };
            let off = serve_queries(&idx, &queries, &mk(0)).unwrap();
            let on = serve_queries(&idx, &queries, &mk(cache_entries)).unwrap();
            prop_assert_eq!(off.lines, on.lines);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The batcher never exceeds its caps, keeps full batches
        /// lane-aligned, emits in FIFO order, and always drains.
        #[test]
        fn batcher_respects_caps_and_drains(
            lanes in 1usize..9,
            max_batch in 1usize..40,
            max_wait_us in 0u64..50,
            gaps in proptest::collection::vec(0u64..30, 0..120),
        ) {
            let mut b = AdmissionBatcher::new(BatcherConfig { lanes, max_batch, max_wait_us });
            let full = b.full_batch();
            prop_assert!(full <= max_batch && full >= 1);
            prop_assert!(full % lanes == 0 || max_batch < lanes);
            let mut emitted: Vec<u32> = Vec::new();
            let mut now = 0u64;
            for (i, dt) in gaps.iter().enumerate() {
                now += dt;
                if let Some(batch) = b.push(i as u32, now) {
                    prop_assert_eq!(batch.len(), full);
                    emitted.extend(batch);
                }
                while let Some(batch) = b.poll(now) {
                    prop_assert!(!batch.is_empty() && batch.len() <= full);
                    emitted.extend(batch);
                }
            }
            while let Some(batch) = b.flush() {
                prop_assert!(!batch.is_empty() && batch.len() <= full);
                emitted.extend(batch);
            }
            prop_assert!(b.is_empty());
            let want: Vec<u32> = (0..gaps.len() as u32).collect();
            prop_assert_eq!(emitted, want);
        }

        /// The deadline drains even sub-lane remainders.
        #[test]
        fn deadline_always_drains(
            lanes in 2usize..9,
            queued in 1usize..5,
            max_wait_us in 1u64..100,
        ) {
            let mut b = AdmissionBatcher::new(BatcherConfig { lanes, max_batch: 64, max_wait_us });
            for i in 0..queued.min(lanes - 1) {
                prop_assert!(b.push(i as u32, 0).is_none());
            }
            prop_assert!(b.poll(max_wait_us - 1).is_none());
            let drained = b.poll(max_wait_us).expect("deadline must drain");
            prop_assert_eq!(drained.len(), queued.min(lanes - 1));
            prop_assert!(b.is_empty());
        }

        /// LRU eviction respects the bound; counters add up; the
        /// least-recently-used entry is the one evicted.
        #[test]
        fn cache_respects_bound_and_counts(
            cap in 1usize..6,
            keys in proptest::collection::vec(0u8..8, 0..80),
        ) {
            let mut c: ResultCache<u32> = ResultCache::new(cap);
            let mut ops = 0u64;
            for k in &keys {
                ops += 1;
                let key = vec![*k];
                match c.get(&key) {
                    Some(v) => prop_assert_eq!(*v, u32::from(*k)),
                    None => c.insert(key, Arc::new(u32::from(*k))),
                }
                prop_assert!(c.len() <= cap);
            }
            prop_assert_eq!(c.hits() + c.misses(), ops);
            prop_assert_eq!(c.evictions(), c.misses() - c.len() as u64);
        }
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut c: ResultCache<u32> = ResultCache::new(2);
        c.insert(vec![1], Arc::new(1));
        c.insert(vec![2], Arc::new(2));
        assert!(c.get(&[1]).is_some()); // refresh 1 → 2 is now LRU
        c.insert(vec![3], Arc::new(3));
        assert!(c.get(&[2]).is_none(), "LRU entry must be evicted");
        assert!(c.get(&[1]).is_some());
        assert!(c.get(&[3]).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn stale_params_refuse_to_serve() {
        let idx = PersistedIndex::open(shared_index_dir()).unwrap();
        let mut params = SearchParams::test_defaults();
        params.k = 5;
        let cfg = ServeConfig::from_params(params);
        let err = serve_queries(&idx, &tiny_store(), &cfg).unwrap_err();
        assert!(err.contains("stale index"), "{err}");
    }
}
