//! Straggler detection over per-block timings — graceful degradation.
//!
//! At Summit scale, one slow node (thermal throttling, a failing NIC, a
//! noisy neighbor) silently stretches every bulk-synchronous phase: the
//! paper's Figure 7 imbalance analysis assumes work imbalance, but an
//! *environmental* straggler looks identical in wall time while the work
//! counters stay balanced. This module flags such ranks explicitly: after
//! the block loop, each rank's total block seconds (sparse + align) are
//! all-gathered and ranks slower than `factor × median` are reported via
//! telemetry counters instead of silently skewing the run.
//!
//! The median (not the mean) is the baseline so that one extreme straggler
//! cannot mask itself by dragging the average up.
//!
//! The per-rank statistics themselves come from the shared analytics
//! layer ([`pastis_trace::aggregate::PhaseStat`]) — the same
//! median/outlier machinery `pastis analyze` applies to every phase —
//! so the in-run detector and the offline aggregator can never drift
//! apart on what "straggler" means.

use pastis_trace::aggregate::PhaseStat;

/// Report of the end-of-run straggler scan.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerReport {
    /// The `factor` threshold the scan used.
    pub factor: f64,
    /// Every rank's block seconds (sparse + align phases summed).
    pub per_rank_seconds: Vec<f64>,
    /// Median of `per_rank_seconds`.
    pub median_seconds: f64,
    /// Flagging threshold: `factor × median`.
    pub threshold_seconds: f64,
    /// Ranks flagged as stragglers (empty on a healthy run).
    pub flagged: Vec<usize>,
    /// Cross-rank `max/avg` imbalance factor of the block seconds (1.0
    /// means perfectly balanced; exported so the offline aggregator can
    /// cross-check its own phase statistics against the in-run scan).
    pub imbalance_factor: f64,
}

impl StragglerReport {
    /// `true` when no rank was flagged.
    pub fn is_healthy(&self) -> bool {
        self.flagged.is_empty()
    }
}

/// Runs so short that timing noise dominates are never flagged: below this
/// absolute threshold a "3× the median" rank is microseconds slow, not a
/// straggler.
const MIN_FLAG_SECONDS: f64 = 1e-3;

/// Scan per-rank block seconds and flag ranks slower than
/// `factor × median` (with a small absolute floor so trivial runs never
/// false-positive).
///
/// # Panics
///
/// Panics if `per_rank_seconds` is empty or `factor <= 1.0` (a threshold
/// at or below the median would flag half the healthy world).
pub fn detect_stragglers(per_rank_seconds: &[f64], factor: f64) -> StragglerReport {
    assert!(
        !per_rank_seconds.is_empty(),
        "straggler scan needs at least one rank"
    );
    assert!(factor > 1.0, "straggler factor must exceed 1.0");
    let stat = PhaseStat::from_values("blocks", per_rank_seconds);
    let median_seconds = stat.median();
    StragglerReport {
        factor,
        per_rank_seconds: per_rank_seconds.to_vec(),
        median_seconds,
        threshold_seconds: (factor * median_seconds).max(MIN_FLAG_SECONDS),
        flagged: stat.outliers(factor, MIN_FLAG_SECONDS),
        imbalance_factor: stat.imbalance_factor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_world_flags_nothing() {
        let r = detect_stragglers(&[1.0, 1.1, 0.9, 1.05], 3.0);
        assert!(r.is_healthy());
        assert!((r.median_seconds - 1.025).abs() < 1e-12);
        assert!((r.threshold_seconds - 3.075).abs() < 1e-12);
    }

    #[test]
    fn single_slow_rank_is_flagged() {
        let r = detect_stragglers(&[1.0, 1.0, 9.0, 1.0], 3.0);
        assert_eq!(r.flagged, vec![2]);
        // Median resists the outlier: it stays 1.0, not (12/4).
        assert_eq!(r.median_seconds, 1.0);
    }

    #[test]
    fn mean_would_mask_what_median_catches() {
        // With a mean baseline, 3×mean = 3×3.25 = 9.75 > 9.0: missed.
        let r = detect_stragglers(&[1.0, 1.0, 1.0, 10.0], 3.0);
        assert_eq!(r.flagged, vec![3]);
    }

    #[test]
    fn even_world_uses_middle_average() {
        let r = detect_stragglers(&[1.0, 3.0], 2.5);
        assert_eq!(r.median_seconds, 2.0);
        assert!(r.is_healthy());
    }

    #[test]
    fn trivial_runs_never_false_positive() {
        // Microsecond-scale timings: 3× the median is noise, not a fault.
        let r = detect_stragglers(&[1e-7, 1e-7, 9e-7, 1e-7], 3.0);
        assert!(r.is_healthy(), "flagged noise: {:?}", r.flagged);
    }

    #[test]
    fn single_rank_world_is_healthy() {
        let r = detect_stragglers(&[5.0], 3.0);
        assert!(r.is_healthy());
        assert_eq!(r.median_seconds, 5.0);
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1.0")]
    fn factor_at_or_below_one_rejected() {
        detect_stragglers(&[1.0, 2.0], 1.0);
    }

    #[test]
    fn zero_and_nan_medians_yield_defined_factors() {
        // All-zero block seconds (degenerate fixture, every block pruned):
        // no div-by-zero, factor pinned at the balanced identity, nothing
        // flagged.
        let z = detect_stragglers(&[0.0, 0.0, 0.0, 0.0], 3.0);
        assert!(z.is_healthy());
        assert_eq!(z.median_seconds, 0.0);
        assert_eq!(z.imbalance_factor, 1.0);
        assert!(z.imbalance_factor.is_finite());
        // One rank at zero, the rest trivially small: the near-zero median
        // stays under the absolute floor and the factor stays finite.
        let near = detect_stragglers(&[0.0, f64::MIN_POSITIVE, 1e-9, 4e-9], 3.0);
        assert!(near.is_healthy());
        assert!(near.imbalance_factor.is_finite());
        // A rank reporting NaN seconds must not panic the scan, and the
        // exported factor must stay defined.
        let nan = detect_stragglers(&[1.0, f64::NAN, 1.0], 3.0);
        assert!(nan.imbalance_factor.is_finite());
        assert_eq!(nan.imbalance_factor, 1.0);
    }

    #[test]
    fn imbalance_factor_matches_max_over_avg() {
        let r = detect_stragglers(&[1.0, 1.0, 1.0, 9.0], 3.0);
        // avg = 3.0, max = 9.0.
        assert!((r.imbalance_factor - 3.0).abs() < 1e-12);
        // A balanced world sits at 1.0.
        let b = detect_stragglers(&[2.0, 2.0], 3.0);
        assert!((b.imbalance_factor - 1.0).abs() < 1e-12);
    }
}
