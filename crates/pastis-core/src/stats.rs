//! Run statistics and reporting (Section VII of the paper).
//!
//! Three reporting mechanisms: component timers ([`pastis_comm::TimeBreakdown`]),
//! alignments per second (aligned pairs over whole-run time), and cell
//! updates per second (DP cells over alignment-kernel time). Per-rank
//! metrics condense to min/avg/max ([`pastis_comm::ImbalanceStats`]).

use pastis_comm::{Communicator, ImbalanceStats, ReduceOp, TimeBreakdown};
use serde::{Deserialize, Serialize};

/// Counters of one search (per rank, or aggregated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Candidate pairs discovered by the SpGEMM (overlap nonzeros before
    /// any pruning — the paper's "discovered candidates").
    pub candidates: u64,
    /// Pairs surviving symmetry pruning + common-k-mer threshold, i.e.
    /// actually aligned ("performed alignments").
    pub aligned_pairs: u64,
    /// DP cells updated by the aligner.
    pub cells: u64,
    /// Pairs passing ANI + coverage into the similarity graph ("similar
    /// pairs").
    pub similar_pairs: u64,
    /// Semiring products executed by SpGEMM (flops).
    pub spgemm_products: u64,
    /// Wall seconds of the whole search (max across ranks when
    /// aggregated).
    pub total_seconds: f64,
    /// Wall seconds in the alignment kernel (for CUPs).
    pub align_kernel_seconds: f64,
    /// CPU seconds summed across alignment-pool workers (the busy-time
    /// side of `BatchStats`' wall-vs-CPU split; sums across ranks when
    /// aggregated). `align_cpu_seconds / align_kernel_seconds` is the
    /// pool's effective parallel speedup.
    pub align_cpu_seconds: f64,
}

impl SearchStats {
    /// Alignments per second over the whole run (the paper's headline
    /// rate; 690.6 M/s in the production run).
    pub fn alignments_per_sec(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.aligned_pairs as f64 / self.total_seconds
        } else {
            0.0
        }
    }

    /// Cell updates per second over kernel time (peak-style CUPs).
    pub fn cups(&self) -> f64 {
        if self.align_kernel_seconds > 0.0 {
            self.cells as f64 / self.align_kernel_seconds
        } else {
            0.0
        }
    }

    /// Fraction of discovered candidates that were aligned (8.9% in
    /// Table IV).
    pub fn aligned_fraction(&self) -> f64 {
        if self.candidates > 0 {
            self.aligned_pairs as f64 / self.candidates as f64
        } else {
            0.0
        }
    }

    /// Fraction of aligned pairs that entered the graph (12.3% in
    /// Table IV).
    pub fn similar_fraction(&self) -> f64 {
        if self.aligned_pairs > 0 {
            self.similar_pairs as f64 / self.aligned_pairs as f64
        } else {
            0.0
        }
    }

    /// Effective alignment-pool speedup: worker CPU seconds over kernel
    /// wall seconds (≈ thread count at full occupancy, 1.0 serial; 0 when
    /// no kernel time was recorded).
    pub fn pool_speedup(&self) -> f64 {
        if self.align_kernel_seconds > 0.0 {
            self.align_cpu_seconds / self.align_kernel_seconds
        } else {
            0.0
        }
    }

    /// Sum counters; wall time takes the max (the slowest rank defines
    /// the run), CPU time sums (it is a resource total).
    pub fn merge(&mut self, other: &SearchStats) {
        self.candidates += other.candidates;
        self.aligned_pairs += other.aligned_pairs;
        self.cells += other.cells;
        self.similar_pairs += other.similar_pairs;
        self.spgemm_products += other.spgemm_products;
        self.total_seconds = self.total_seconds.max(other.total_seconds);
        self.align_kernel_seconds = self.align_kernel_seconds.max(other.align_kernel_seconds);
        self.align_cpu_seconds += other.align_cpu_seconds;
    }

    /// Aggregate this rank's stats across a communicator: counter and
    /// CPU-time sums, wall-time maxima. Every rank receives the global
    /// stats.
    pub fn all_reduce<C: Communicator>(&self, comm: &C) -> SearchStats {
        let sums = comm.all_reduce(
            &[
                self.candidates,
                self.aligned_pairs,
                self.cells,
                self.similar_pairs,
                self.spgemm_products,
            ],
            ReduceOp::Sum,
        );
        let maxs = comm.all_reduce_f64(
            &[self.total_seconds, self.align_kernel_seconds],
            ReduceOp::Max,
        );
        let cpu = comm.all_reduce_f64(&[self.align_cpu_seconds], ReduceOp::Sum);
        SearchStats {
            candidates: sums[0],
            aligned_pairs: sums[1],
            cells: sums[2],
            similar_pairs: sums[3],
            spgemm_products: sums[4],
            total_seconds: maxs[0],
            align_kernel_seconds: maxs[1],
            align_cpu_seconds: cpu[0],
        }
    }
}

/// Per-rank observations condensed into the Figure-7-style triples.
#[derive(Debug, Clone, PartialEq)]
pub struct RankMetrics {
    /// Aligned pairs per rank.
    pub aligned_pairs: ImbalanceStats,
    /// DP cells per rank (the Figure 7b metric).
    pub cells: ImbalanceStats,
    /// Alignment seconds per rank.
    pub align_seconds: ImbalanceStats,
    /// Sparse seconds per rank.
    pub sparse_seconds: ImbalanceStats,
}

impl RankMetrics {
    /// Build from per-rank stats and time breakdowns.
    pub fn from_ranks(stats: &[SearchStats], times: &[TimeBreakdown]) -> RankMetrics {
        assert_eq!(stats.len(), times.len());
        assert!(!stats.is_empty());
        let vals = |f: &dyn Fn(&SearchStats) -> f64| -> Vec<f64> { stats.iter().map(f).collect() };
        RankMetrics {
            aligned_pairs: ImbalanceStats::from_values(&vals(&|s| s.aligned_pairs as f64)),
            cells: ImbalanceStats::from_values(&vals(&|s| s.cells as f64)),
            align_seconds: ImbalanceStats::from_values(
                &times
                    .iter()
                    .map(|t| t.get(pastis_comm::Component::Align))
                    .collect::<Vec<_>>(),
            ),
            sparse_seconds: ImbalanceStats::from_values(
                &times.iter().map(|t| t.sparse_all()).collect::<Vec<_>>(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_comm::{run_threaded, Component};

    #[test]
    fn rates_and_fractions() {
        let s = SearchStats {
            candidates: 1000,
            aligned_pairs: 89,
            cells: 89_000,
            similar_pairs: 11,
            spgemm_products: 5000,
            total_seconds: 2.0,
            align_kernel_seconds: 0.5,
            align_cpu_seconds: 1.5,
        };
        assert!((s.alignments_per_sec() - 44.5).abs() < 1e-9);
        assert!((s.cups() - 178_000.0).abs() < 1e-6);
        assert!((s.aligned_fraction() - 0.089).abs() < 1e-12);
        assert!((s.similar_fraction() - 11.0 / 89.0).abs() < 1e-12);
        assert!((s.pool_speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_guards() {
        let z = SearchStats::default();
        assert_eq!(z.alignments_per_sec(), 0.0);
        assert_eq!(z.cups(), 0.0);
        assert_eq!(z.aligned_fraction(), 0.0);
        assert_eq!(z.similar_fraction(), 0.0);
        assert_eq!(z.pool_speedup(), 0.0);
    }

    #[test]
    fn merge_sums_counters_maxes_times() {
        let mut a = SearchStats {
            candidates: 10,
            total_seconds: 3.0,
            ..Default::default()
        };
        let b = SearchStats {
            candidates: 5,
            total_seconds: 7.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.candidates, 15);
        assert_eq!(a.total_seconds, 7.0);
    }

    #[test]
    fn all_reduce_across_ranks() {
        let out = run_threaded(4, |c| {
            let local = SearchStats {
                candidates: (c.rank() + 1) as u64,
                aligned_pairs: 2,
                total_seconds: c.rank() as f64,
                align_kernel_seconds: 1.0,
                align_cpu_seconds: 2.0,
                ..Default::default()
            };
            local.all_reduce(c)
        });
        for g in out {
            assert_eq!(g.candidates, 10);
            assert_eq!(g.aligned_pairs, 8);
            assert_eq!(g.total_seconds, 3.0);
            // Wall kernel time maxes; worker CPU time sums across ranks.
            assert_eq!(g.align_kernel_seconds, 1.0);
            assert_eq!(g.align_cpu_seconds, 8.0);
        }
    }

    #[test]
    fn rank_metrics_from_ranks() {
        let stats = vec![
            SearchStats {
                aligned_pairs: 10,
                cells: 100,
                ..Default::default()
            },
            SearchStats {
                aligned_pairs: 30,
                cells: 300,
                ..Default::default()
            },
        ];
        let mut t0 = TimeBreakdown::new();
        t0.record(Component::Align, 1.0);
        t0.record(Component::SpGemm, 2.0);
        let mut t1 = TimeBreakdown::new();
        t1.record(Component::Align, 3.0);
        t1.record(Component::SparseOther, 4.0);
        let m = RankMetrics::from_ranks(&stats, &[t0, t1]);
        assert_eq!(m.aligned_pairs.max, 30.0);
        assert_eq!(m.aligned_pairs.avg, 20.0);
        assert_eq!(m.cells.min, 100.0);
        assert_eq!(m.align_seconds.max, 3.0);
        assert_eq!(m.sparse_seconds.min, 2.0);
        assert_eq!(m.sparse_seconds.max, 4.0);
    }
}
