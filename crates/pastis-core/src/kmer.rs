//! The sequences-by-k-mers matrix.
//!
//! Figure 1 of the paper: "k-mer information in sequences are captured in a
//! sparse matrix whose rows and columns respectively correspond to
//! sequences and k-mers and a nonzero element indicates the existence of a
//! specific k-mer in a specific sequence". Values carry the k-mer's first
//! position in the sequence, which the overlap semiring turns into seed
//! coordinates for the aligner.

use pastis_seqio::{ReducedAlphabet, SeqStore};
use pastis_sparse::{Index, Triples};

/// Pack the `k` reduced residue codes starting at `seq[pos]` into a base-Σ
/// k-mer id. Returns `None` if the window extends past the sequence end.
#[inline]
pub fn kmer_id(seq: &[u8], pos: usize, k: usize, alphabet: ReducedAlphabet) -> Option<u32> {
    if pos + k > seq.len() {
        return None;
    }
    let base = alphabet.size() as u64;
    let mut id = 0u64;
    for &code in &seq[pos..pos + k] {
        id = id * base + alphabet.reduce(code) as u64;
    }
    debug_assert!(id <= u32::MAX as u64, "k-mer id overflows u32");
    Some(id as u32)
}

/// Rolling base-Σ k-mer encoder: yields `(kmer_id, position)` for every
/// window of `seq` in O(1) amortized per window instead of [`kmer_id`]'s
/// O(k) — the outgoing high digit is dropped with one modulo and the
/// incoming residue appended: `id' = (id mod Σ^(k-1))·Σ + c_new`. Ids are
/// identical to the windowed [`kmer_id`], which stays as the reference
/// implementation (and the random-access path for stored positions).
pub struct RollingKmers<'a> {
    seq: &'a [u8],
    k: usize,
    base: u64,
    /// Place value of the leading digit, `Σ^(k-1)`.
    msd: u64,
    alphabet: ReducedAlphabet,
    id: u64,
    pos: usize,
    primed: bool,
}

/// Iterate `(kmer_id, position)` over every window of `seq` with the
/// rolling encoder. Empty if `k == 0` or the sequence is shorter than `k`.
pub fn rolling_kmers(seq: &[u8], k: usize, alphabet: ReducedAlphabet) -> RollingKmers<'_> {
    let base = alphabet.size() as u64;
    RollingKmers {
        seq,
        k,
        base,
        msd: base.pow(k.saturating_sub(1) as u32),
        alphabet,
        id: 0,
        pos: 0,
        primed: false,
    }
}

impl Iterator for RollingKmers<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.k == 0 || self.pos + self.k > self.seq.len() {
            return None;
        }
        if self.primed {
            let incoming = self.alphabet.reduce(self.seq[self.pos + self.k - 1]) as u64;
            self.id = (self.id % self.msd) * self.base + incoming;
        } else {
            self.id = self.seq[..self.k].iter().fold(0u64, |id, &c| {
                id * self.base + self.alphabet.reduce(c) as u64
            });
            self.primed = true;
        }
        debug_assert!(self.id <= u32::MAX as u64, "k-mer id overflows u32");
        let out = (self.id as u32, self.pos as u32);
        self.pos += 1;
        Some(out)
    }
}

/// Enumerate `(kmer_id, first_position)` for each **distinct** k-mer of a
/// sequence (first occurrence wins).
pub fn distinct_kmers(seq: &[u8], k: usize, alphabet: ReducedAlphabet) -> Vec<(u32, u32)> {
    if seq.len() < k || k == 0 {
        return Vec::new();
    }
    let mut pairs: Vec<(u32, u32)> = rolling_kmers(seq, k, alphabet).collect();
    // Keep the smallest position per k-mer id.
    pairs.sort_unstable();
    pairs.dedup_by_key(|p| p.0);
    pairs
}

/// Build the triples of the k-mer matrix `A` for the sequence rows
/// `[seq_begin, seq_end)` of `store` (global row ids). The matrix is
/// `store.len() × alphabet.kmer_space(k)`; values are the k-mer's first
/// position in the sequence.
///
/// In the SPMD pipeline each rank calls this for its contiguous slice of
/// sequences, so the union over ranks is the full matrix with no
/// duplicates.
pub fn kmer_matrix_triples(
    store: &SeqStore,
    seq_begin: usize,
    seq_end: usize,
    k: usize,
    alphabet: ReducedAlphabet,
) -> Triples<u32> {
    assert!(
        seq_begin <= seq_end && seq_end <= store.len(),
        "row range out of bounds"
    );
    let ncols = alphabet.kmer_space(k);
    let mut t = Triples::new(store.len(), ncols);
    for row in seq_begin..seq_end {
        for (id, pos) in distinct_kmers(store.seq(row), k, alphabet) {
            t.push(row as Index, id as Index, pos);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::encode;
    use pastis_seqio::fasta::SeqStore;

    fn store_of(seqs: &[&str]) -> SeqStore {
        let mut s = SeqStore::new();
        for (i, q) in seqs.iter().enumerate() {
            s.push(format!("s{i}"), encode(q).unwrap());
        }
        s
    }

    #[test]
    fn kmer_id_is_base_sigma_positional() {
        // "AR" under Full20: A=0, R=1 -> 0*20 + 1 = 1.
        let seq = encode("ARN").unwrap();
        assert_eq!(kmer_id(&seq, 0, 2, ReducedAlphabet::Full20), Some(1));
        // "RN": 1*20 + 2 = 22.
        assert_eq!(kmer_id(&seq, 1, 2, ReducedAlphabet::Full20), Some(22));
        assert_eq!(kmer_id(&seq, 2, 2, ReducedAlphabet::Full20), None);
    }

    #[test]
    fn kmer_id_respects_reduced_alphabet() {
        // L and V are the same Murphy-10 group: "LA" == "VA".
        let l = encode("LA").unwrap();
        let v = encode("VA").unwrap();
        let a = ReducedAlphabet::Murphy10;
        assert_eq!(kmer_id(&l, 0, 2, a), kmer_id(&v, 0, 2, a));
        assert_ne!(
            kmer_id(&l, 0, 2, ReducedAlphabet::Full20),
            kmer_id(&v, 0, 2, ReducedAlphabet::Full20)
        );
    }

    #[test]
    fn distinct_kmers_keep_first_position() {
        // "ARAR": AR at 0 and 2, RA at 1.
        let seq = encode("ARAR").unwrap();
        let got = distinct_kmers(&seq, 2, ReducedAlphabet::Full20);
        assert_eq!(got.len(), 2);
        // AR id = 1 at pos 0; RA id = 20 at pos 1.
        assert!(got.contains(&(1, 0)));
        assert!(got.contains(&(20, 1)));
    }

    #[test]
    fn short_sequences_yield_nothing() {
        let seq = encode("AR").unwrap();
        assert!(distinct_kmers(&seq, 3, ReducedAlphabet::Full20).is_empty());
        assert!(distinct_kmers(&[], 3, ReducedAlphabet::Full20).is_empty());
        assert_eq!(rolling_kmers(&seq, 3, ReducedAlphabet::Full20).count(), 0);
        assert_eq!(rolling_kmers(&seq, 0, ReducedAlphabet::Full20).count(), 0);
    }

    #[test]
    fn rolling_encoder_matches_windowed_reference() {
        // Every window of a residue-cycling sequence, under every alphabet
        // (the reduced ones exercise repeated digits in the rolling state).
        let seq: Vec<u8> = (0..60usize).map(|i| ((i * 7 + 3) % 20) as u8).collect();
        for alphabet in [
            ReducedAlphabet::Full20,
            ReducedAlphabet::Murphy10,
            ReducedAlphabet::Dayhoff6,
        ] {
            for k in [1usize, 2, 3, 6] {
                let rolled: Vec<(u32, u32)> = rolling_kmers(&seq, k, alphabet).collect();
                assert_eq!(rolled.len(), seq.len() - k + 1);
                for &(id, pos) in &rolled {
                    assert_eq!(
                        Some(id),
                        kmer_id(&seq, pos as usize, k, alphabet),
                        "alphabet {alphabet:?}, k={k}, pos={pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_triples_rows_and_sharing() {
        let store = store_of(&["MKVLAW", "KVLAWY", "PPPPPP"]);
        let t = kmer_matrix_triples(&store, 0, 3, 4, ReducedAlphabet::Full20);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 160_000);
        // Row 0 has 3 distinct 4-mers, row 1 has 3, row 2 has 1 (PPPP).
        let rows: Vec<usize> = (0..3)
            .map(|r| t.entries.iter().filter(|e| e.row == r).count())
            .collect();
        assert_eq!(rows, vec![3, 3, 1]);
        // KVLA and VLAW shared between rows 0 and 1 (as column collisions).
        use std::collections::HashMap;
        let mut by_col: HashMap<u32, Vec<u32>> = HashMap::new();
        for e in &t.entries {
            by_col.entry(e.col).or_default().push(e.row);
        }
        let shared = by_col.values().filter(|rows| rows.len() == 2).count();
        assert_eq!(shared, 2);
    }

    #[test]
    fn partitioned_construction_unions_to_full() {
        let store = store_of(&["MKVLAWYHE", "KVLAWYHEM", "AWYHEMKVL", "HEMKVLAWY"]);
        let full = kmer_matrix_triples(&store, 0, 4, 5, ReducedAlphabet::Full20);
        let mut merged = Triples::new(full.nrows(), full.ncols());
        for (b, e) in [(0, 2), (2, 3), (3, 4)] {
            let part = kmer_matrix_triples(&store, b, e, 5, ReducedAlphabet::Full20);
            for entry in part.entries {
                merged.push(entry.row, entry.col, entry.val);
            }
        }
        assert_eq!(full.to_sorted_tuples(), merged.to_sorted_tuples());
    }

    #[test]
    fn positions_point_at_kmer_occurrences() {
        let store = store_of(&["MKVLAWMKVL"]);
        let t = kmer_matrix_triples(&store, 0, 1, 4, ReducedAlphabet::Full20);
        let seq = store.seq(0);
        for e in &t.entries {
            let pos = e.val as usize;
            let id = kmer_id(seq, pos, 4, ReducedAlphabet::Full20).unwrap();
            assert_eq!(id, e.col, "stored position does not reproduce the k-mer");
        }
    }
}
