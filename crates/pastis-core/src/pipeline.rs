//! The end-to-end distributed similarity search (Figure 4 of the paper).
//!
//! SPMD over a [`ProcessGrid`]; every rank executes:
//!
//! 1. **Sequence exchange** — each rank owns a contiguous slice of the
//!    input; residues are sent to all ranks with non-blocking messages
//!    immediately, and received ("cwait", Table II) only when alignment
//!    needs them.
//! 2. **k-mer matrix** — each rank builds the rows of `A` for its slice
//!    (optionally with substitute k-mers); `Aᵀ` falls out by swapping
//!    coordinates. Both are distributed as stripes of the Blocked 2D
//!    Sparse SUMMA.
//! 3. **Incremental blocked search** — for every scheduled output block:
//!    a distributed SpGEMM over the overlap semiring discovers candidates;
//!    the load-balancing scheme prunes the symmetric redundancy; the
//!    common-k-mer threshold selects pairs; each rank batch-aligns the
//!    pairs it owns; ANI/coverage filtering appends edges to the local
//!    similarity graph. With **pre-blocking** the SpGEMM of block `i+1`
//!    runs on a concurrent thread while block `i` is aligned, hiding the
//!    sparse phase (Section VI-C).
//!
//! The output is identical for every process count, blocking factor, and
//! load-balancing scheme — the determinism property PASTIS holds over
//! DIAMOND/MMseqs2 (verified by `tests/determinism.rs`).

use std::path::Path;
use std::time::{Duration, Instant};

use pastis_align::batch::AlignTask;
use pastis_align::matrices::{Blosum62, Scoring};
use pastis_align::parallel::AlignPool;

use pastis_comm::grid::{BlockDist1D, ProcessGrid};
use pastis_comm::{Communicator, Component, FaultPlan, FaultyStore, ReduceOp, TimeBreakdown};
use pastis_pool::{Engine, WorkPool};
use pastis_seqio::SeqStore;
use pastis_sparse::{BlockedSumma, CsrMatrix, SpGemmPool, Triples};
use pastis_trace::{names, span, Recorder};

use crate::autotune::{self, TuneKnobs, TunePolicy, TuneSnapshot};
use crate::checkpoint::{self, Checkpoint, IndexShard, SpillShard};
use crate::filter::{candidate_passes, EdgeFilter};
use crate::kmer::kmer_matrix_triples;
use crate::loadbalance::{BlockPlan, BlockTask};
use crate::membudget::MemBudget;
use crate::overlap::OverlapSemiring;
use crate::params::{AlignKind, SearchParams};
use crate::simgraph::{SimilarityEdge, SimilarityGraph};
use crate::stats::SearchStats;
use crate::straggler::{detect_stragglers, StragglerReport};
use crate::subkmers::kmer_matrix_triples_with_substitutes;

/// Per-block timing and counters (this rank's share) — the raw series
/// behind Figure 5 and Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockTiming {
    /// Block row.
    pub r: usize,
    /// Block column.
    pub c: usize,
    /// Seconds in the block's sparse phase (SpGEMM + pruning/extraction).
    pub sparse_seconds: f64,
    /// Seconds aligning the block's pairs.
    pub align_seconds: f64,
    /// Candidates discovered in this rank's piece (pre-prune).
    pub candidates: u64,
    /// Pairs this rank aligned.
    pub aligned_pairs: u64,
}

/// The outcome of one rank's search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Edges this rank produced (canonicalized, normalized).
    pub graph: SimilarityGraph,
    /// This rank's counters.
    pub stats: SearchStats,
    /// This rank's component time sums. With pre-blocking, overlapped
    /// components both accrue, so `times.total() ≥ wall_seconds` — the
    /// "sum vs total" distinction of Table I.
    pub times: TimeBreakdown,
    /// Wall-clock seconds of the whole search on this rank.
    pub wall_seconds: f64,
    /// Per scheduled block: timings and counters.
    pub per_block: Vec<BlockTiming>,
    /// When the run resumed from a checkpoint: the block index it resumed
    /// at (blocks `0..k` were restored, not recomputed).
    pub resumed_from_block: Option<usize>,
    /// End-of-run straggler scan (`None` when disabled, halted early, or
    /// `p == 1`).
    pub stragglers: Option<StragglerReport>,
    /// Peak accounted live bytes on this rank (`Some` only on budgeted
    /// runs): sequences + index stripes + staged broadcast buffers +
    /// completed output blocks. A correct budgeted run keeps this at or
    /// under the budget.
    pub mem_high_water: Option<u64>,
}

impl SearchResult {
    /// Gather every rank's edges into one global graph (collective).
    pub fn gather_graph<C: Communicator>(&self, comm: &C) -> SimilarityGraph {
        let all = comm.all_gather(self.graph.edges().to_vec());
        let mut g = SimilarityGraph::new(self.graph.n_vertices());
        for part in all {
            for e in part {
                g.add(e);
            }
        }
        g.normalize();
        g
    }
}

/// Flattened sequence slice exchanged between ranks.
#[derive(Debug, Clone)]
struct SeqSlice {
    begin: usize,
    lens: Vec<u32>,
    residues: Vec<u8>,
}

impl SeqSlice {
    fn from_store(store: &SeqStore, begin: usize, end: usize) -> SeqSlice {
        let mut lens = Vec::with_capacity(end - begin);
        let mut residues = Vec::new();
        for i in begin..end {
            let s = store.seq(i);
            lens.push(s.len() as u32);
            residues.extend_from_slice(s);
        }
        SeqSlice {
            begin,
            lens,
            residues,
        }
    }

    fn bytes(&self) -> usize {
        self.residues.len() + self.lens.len() * 4 + 16
    }

    fn unpack_into(&self, seqs: &mut [Vec<u8>]) {
        let mut off = 0usize;
        for (idx, &len) in self.lens.iter().enumerate() {
            let len = len as usize;
            seqs[self.begin + idx] = self.residues[off..off + len].to_vec();
            off += len;
        }
    }
}

/// One candidate pair to align (global sequence ids). Shared with the
/// serving path ([`crate::serve`]), whose edge construction must be
/// expression-for-expression identical to the batch pipeline's.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairTask {
    pub(crate) i: u32,
    pub(crate) j: u32,
    pub(crate) seed_q: u32,
    pub(crate) seed_r: u32,
    pub(crate) count: u32,
}

/// The sparse phase's product for one block.
struct CandidateBatch {
    task: BlockTask,
    pairs: Vec<PairTask>,
    candidates: u64,
    products: u64,
    spgemm_seconds: f64,
    other_seconds: f64,
}

/// Accounting charge per completed-output edge (allocator overhead is
/// noise at spill granularity).
const EDGE_BYTES: u64 = std::mem::size_of::<SimilarityEdge>() as u64;

/// The blocked SUMMA of the pipeline: `A` and `Aᵀ` both carry `u32` seed
/// positions ([`OverlapSemiring`]).
type KmerSumma = BlockedSumma<u32, u32>;

/// Lifecycle of one scheduled block's locally-produced edges under a
/// memory budget.
enum BlockEdges {
    /// Edges resident in memory, charged to the accountant.
    Mem(Vec<SimilarityEdge>),
    /// Edges spilled to `spill_path(dir, rank, idx)`; charge released.
    Spilled,
    /// Edges merged into the similarity graph (the charge now rides the
    /// graph itself and is never released).
    Merged,
}

/// The spill/readback machinery of a budgeted run: the accountant, the
/// (fault-injectable) shard store, and the identity every shard is framed
/// with. Mutable state — the SUMMA stripes, the per-block outputs, the
/// eviction flags — is passed into each call so the borrow of `self`
/// stays shared.
struct SpillCtx<'a> {
    accountant: &'a MemBudget,
    io: &'a FaultyStore,
    dir: &'a Path,
    fingerprint: u64,
    rank: usize,
    recorder: &'a Recorder,
}

impl SpillCtx<'_> {
    /// Reserve `bytes` for `phase`, spilling under pressure: coldest
    /// (oldest) completed output blocks first, then inactive index
    /// stripes not named in `protect`. An `Err` is a genuine OOM — the
    /// budget cannot hold `bytes` even with everything evictable on disk.
    #[allow(clippy::too_many_arguments)]
    fn charge(
        &self,
        phase: &str,
        bytes: u64,
        bs: &mut KmerSumma,
        block_out: &mut [(usize, BlockEdges)],
        a_evicted: &mut [bool],
        b_evicted: &mut [bool],
        protect: &[BlockTask],
    ) -> Result<(), String> {
        if self.accountant.try_reserve(bytes) {
            return Ok(());
        }
        self.spill_outputs(block_out, bytes);
        self.evict_stripes(bs, a_evicted, b_evicted, protect, bytes);
        if self.accountant.try_reserve(bytes) {
            return Ok(());
        }
        Err(format!(
            "out of memory in phase \"{phase}\": need {bytes} B with {} B live \
             of {} B budget, and nothing left to spill",
            self.accountant.live(),
            self.accountant.budget().unwrap_or(0),
        ))
    }

    /// Spill completed in-memory output blocks, coldest first, until
    /// `need` bytes fit. A failed write (injected or real disk-full)
    /// keeps that block resident and moves on to the next candidate.
    fn spill_outputs(&self, block_out: &mut [(usize, BlockEdges)], need: u64) {
        for (idx, state) in block_out.iter_mut() {
            if self.accountant.would_fit(need) {
                return;
            }
            let BlockEdges::Mem(edges) = state else {
                continue;
            };
            if edges.is_empty() {
                continue;
            }
            let shard = SpillShard {
                fingerprint: self.fingerprint,
                rank: self.rank,
                block: *idx,
                edges: std::mem::take(edges),
            };
            let text = shard.to_text();
            let path = checkpoint::spill_path(self.dir, self.rank, *idx);
            let wrote = {
                let _sp = span!(self.recorder, Component::SparseOther, names::SPAN_SPILL_WRITE, {
                    block: *idx as u64,
                    bytes: text.len() as u64,
                });
                self.io.write_atomic(&path, &text)
            };
            match wrote {
                Ok(()) => {
                    self.accountant
                        .release(EDGE_BYTES * shard.edges.len() as u64);
                    self.recorder.add_counter(names::CTR_SPILL_BLOCKS_OUT, 1.0);
                    self.recorder
                        .add_counter(names::CTR_SPILL_BYTES_OUT, text.len() as f64);
                    *state = BlockEdges::Spilled;
                }
                // Nothing replaced the target file; keep the edges.
                Err(_) => *state = BlockEdges::Mem(shard.edges),
            }
        }
    }

    /// Evict inactive index stripes until `need` bytes fit. A stripe is
    /// unrecoverable once dropped (unlike output blocks there is nothing
    /// to recompute it from block-locally), so the eviction commits only
    /// after a verified readback of what actually landed on disk —
    /// injected corruption or short writes keep the stripe resident.
    fn evict_stripes(
        &self,
        bs: &mut KmerSumma,
        a_evicted: &mut [bool],
        b_evicted: &mut [bool],
        protect: &[BlockTask],
        need: u64,
    ) {
        for r in 0..bs.br() {
            if self.accountant.would_fit(need) {
                return;
            }
            if a_evicted[r] || protect.iter().any(|t| t.r == r) || bs.a_stripe_bytes(r) == 0 {
                continue;
            }
            self.try_evict_stripe(bs, true, r, a_evicted);
        }
        for c in 0..bs.bc() {
            if self.accountant.would_fit(need) {
                return;
            }
            if b_evicted[c] || protect.iter().any(|t| t.c == c) || bs.b_stripe_bytes(c) == 0 {
                continue;
            }
            self.try_evict_stripe(bs, false, c, b_evicted);
        }
    }

    fn try_evict_stripe(&self, bs: &mut KmerSumma, is_a: bool, i: usize, evicted: &mut [bool]) {
        let bytes = if is_a {
            bs.a_stripe_bytes(i)
        } else {
            bs.b_stripe_bytes(i)
        };
        let block = if is_a {
            bs.evict_a_stripe(i)
        } else {
            bs.evict_b_stripe(i)
        };
        let (nrows, ncols, rowptr, cols, vals) = block.into_parts();
        let shard = IndexShard {
            fingerprint: self.fingerprint,
            rank: self.rank,
            is_a,
            stripe: i,
            nrows,
            ncols,
            rowptr,
            cols,
            vals,
        };
        let text = shard.to_text();
        let path = checkpoint::index_spill_path(self.dir, self.rank, is_a, i);
        let committed = {
            let _sp = span!(self.recorder, Component::SparseOther, names::SPAN_SPILL_WRITE, {
                stripe: i as u64,
                bytes: text.len() as u64,
            });
            self.io.write_atomic(&path, &text).is_ok()
                && match self
                    .io
                    .read_to_string(&path)
                    .and_then(|t| IndexShard::parse(&t))
                {
                    Ok(back) => back == shard,
                    Err(_) => false,
                }
        };
        if committed {
            evicted[i] = true;
            self.accountant.release(bytes);
            self.recorder.add_counter(names::CTR_SPILL_BLOCKS_OUT, 1.0);
            self.recorder
                .add_counter(names::CTR_SPILL_BYTES_OUT, text.len() as f64);
        } else {
            // Damaged or unwritable on disk: the stripe stays resident.
            self.recorder.add_counter(names::CTR_SPILL_CRC_REJECTS, 1.0);
            let m = CsrMatrix::from_parts(
                shard.nrows,
                shard.ncols,
                shard.rowptr,
                shard.cols,
                shard.vals,
            );
            if is_a {
                bs.restore_a_stripe(i, m);
            } else {
                bs.restore_b_stripe(i, m);
            }
        }
    }

    /// Stream evicted stripes needed by `targets` back into memory,
    /// charging them to the accountant (which may in turn spill other
    /// state — `targets` themselves are protected from eviction).
    ///
    /// # Errors
    ///
    /// A stripe that fails its CRC frame here is a hard error: spill-time
    /// verification guaranteed the file was good when written, so this is
    /// post-hoc disk damage with nothing left to rebuild from.
    fn restore_stripes_for(
        &self,
        bs: &mut KmerSumma,
        block_out: &mut [(usize, BlockEdges)],
        a_evicted: &mut [bool],
        b_evicted: &mut [bool],
        targets: &[BlockTask],
    ) -> Result<(), String> {
        for t in targets {
            if a_evicted[t.r] {
                self.restore_stripe(bs, block_out, a_evicted, b_evicted, true, t.r, targets)?;
            }
            if b_evicted[t.c] {
                self.restore_stripe(bs, block_out, a_evicted, b_evicted, false, t.c, targets)?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn restore_stripe(
        &self,
        bs: &mut KmerSumma,
        block_out: &mut [(usize, BlockEdges)],
        a_evicted: &mut [bool],
        b_evicted: &mut [bool],
        is_a: bool,
        i: usize,
        protect: &[BlockTask],
    ) -> Result<(), String> {
        let path = checkpoint::index_spill_path(self.dir, self.rank, is_a, i);
        let text = {
            let _sp = span!(self.recorder, Component::SparseOther, names::SPAN_SPILL_READ, {
                stripe: i as u64,
            });
            self.io.read_to_string(&path)?
        };
        let shard = IndexShard::parse(&text).map_err(|e| {
            format!(
                "index stripe {} is unreadable ({e}); it was verified at spill \
                 time, so the file was damaged on disk afterwards",
                path.display()
            )
        })?;
        if shard.fingerprint != self.fingerprint
            || shard.is_a != is_a
            || shard.stripe != i
            || shard.rank != self.rank
        {
            return Err(format!(
                "index stripe {} belongs to a different run",
                path.display()
            ));
        }
        self.recorder.add_counter(names::CTR_SPILL_BLOCKS_IN, 1.0);
        self.recorder
            .add_counter(names::CTR_SPILL_BYTES_IN, text.len() as f64);
        let m = CsrMatrix::from_parts(
            shard.nrows,
            shard.ncols,
            shard.rowptr,
            shard.cols,
            shard.vals,
        );
        let bytes;
        if is_a {
            bs.restore_a_stripe(i, m);
            a_evicted[i] = false;
            bytes = bs.a_stripe_bytes(i);
        } else {
            bs.restore_b_stripe(i, m);
            b_evicted[i] = false;
            bytes = bs.b_stripe_bytes(i);
        }
        self.charge(
            "index stripe restore",
            bytes,
            bs,
            block_out,
            a_evicted,
            b_evicted,
            protect,
        )
    }
}

/// Run the search over `grid`. Every rank passes the same full `store`
/// (as if all ranks read the same FASTA); each rank *uses* only its slice
/// for matrix construction and exchanges residues through the
/// communicator like the MPI implementation does.
///
/// # Errors
///
/// Returns an error for invalid [`SearchParams`].
pub fn run_search<C: Communicator + Sync>(
    grid: &ProcessGrid<C>,
    store: &SeqStore,
    params: &SearchParams,
) -> Result<SearchResult, String> {
    run_search_traced(grid, store, params, &Recorder::disabled())
}

/// [`run_search`] with structured telemetry: pipeline phases, per-block
/// SUMMA spans, alignment batches (with per-worker occupancy via the
/// [`AlignPool`] recorder), and end-of-run counters are recorded into
/// `recorder`. Telemetry is observation-only — the result is identical to
/// the untraced run (pinned by `tests/telemetry_e2e.rs`). To also record
/// per-collective traffic, run over a
/// [`TracedComm`](pastis_comm::TracedComm)-wrapped grid.
///
/// # Errors
///
/// Returns an error for invalid [`SearchParams`].
pub fn run_search_traced<C: Communicator + Sync>(
    grid: &ProcessGrid<C>,
    store: &SeqStore,
    params: &SearchParams,
    recorder: &Recorder,
) -> Result<SearchResult, String> {
    params.validate()?;
    let wall_start = Instant::now();
    let mut times = TimeBreakdown::new();
    let mut stats = SearchStats::default();

    let n = store.len();
    let world = grid.world();
    let (rank, p) = (world.rank(), world.size());

    // --- 0. Memory accountant (budgeted runs; see DESIGN.md "Memory
    // model & spill"). The run fingerprint frames both checkpoints and
    // spill shards, binding them to this exact search.
    let budgeted = params.mem_budget.is_some();
    let accountant = MemBudget::new(params.mem_budget);
    let fingerprint = if params.checkpoint_dir.is_some() || budgeted {
        checkpoint::run_fingerprint(params, store)
    } else {
        0
    };
    let spill_io = FaultyStore::new(
        params.spill_faults.clone().unwrap_or_else(FaultPlan::none),
        rank,
    )
    .with_recorder(recorder.clone());
    let slice = BlockDist1D::new(n, p);
    let my_begin = slice.part_offset(rank);
    let my_end = my_begin + slice.part_len(rank);

    // --- 1. Non-blocking sequence exchange: send now, receive at need.
    let my_slice = SeqSlice::from_store(store, my_begin, my_end);
    for dst in 0..p {
        if dst != rank {
            world.send_to(dst, my_slice.clone(), my_slice.bytes());
        }
    }

    // --- 2. k-mer matrix stripes for the Blocked SUMMA.
    let t0 = Instant::now();
    let mut kmer_span = span!(recorder, Component::SparseOther, names::SPAN_KMER_MATRIX);
    let a: Triples<u32> = if params.substitute_kmers > 0 {
        kmer_matrix_triples_with_substitutes(
            store,
            my_begin,
            my_end,
            params.k,
            params.alphabet,
            params.substitute_kmers,
        )
    } else {
        kmer_matrix_triples(store, my_begin, my_end, params.k, params.alphabet)
    };
    // Collectively compact the k-mer column space: `Aᵀ` is stored row-major
    // per stripe, and 20⁶ = 64M mostly-empty k-mer rows would waste the
    // memory CombBLAS avoids with DCSC storage. The remap table is the
    // sorted union of every rank's distinct k-mer ids, so it is identical
    // on all ranks and for every process count — determinism is preserved.
    let mut my_cols: Vec<u32> = a.entries.iter().map(|e| e.col).collect();
    my_cols.sort_unstable();
    my_cols.dedup();
    let gathered = world.all_gather(my_cols);
    let mut col_map: Vec<u32> = gathered.concat();
    col_map.sort_unstable();
    col_map.dedup();
    let inner_dim = col_map.len().max(1);
    let mut a_compact = Triples::new(n, inner_dim);
    for e in a.entries {
        let col = col_map.binary_search(&e.col).expect("k-mer id present") as u32;
        a_compact.push(e.row, col, e.val);
    }
    let a = a_compact;
    let a_nnz = a.entries.len() as u64;

    let at = a.clone().transpose();
    let keep_min = |acc: &mut u32, inc: u32| {
        if inc < *acc {
            *acc = inc;
        }
    };
    let mut bs = BlockedSumma::from_triples(
        grid,
        a,
        at,
        params.block_rows.min(n.max(1)),
        params.block_cols.min(n.max(1)),
        keep_min,
        keep_min,
    );
    kmer_span.push_arg("nnz", a_nnz);
    kmer_span.push_arg("inner_dim", inner_dim as u64);
    drop(kmer_span);
    times.record(Component::SparseOther, t0.elapsed().as_secs_f64());

    let plan = BlockPlan::new(
        params.load_balance,
        bs.br(),
        bs.bc(),
        |r| bs.row_range(r),
        |c| bs.col_range(c),
    );

    // Budgeted-run state: per-stripe eviction flags, per-block output
    // lifecycles, and the spill context tying them to the accountant.
    let mut a_evicted = vec![false; bs.br()];
    let mut b_evicted = vec![false; bs.bc()];
    let mut block_out: Vec<(usize, BlockEdges)> = Vec::new();
    let spill_ctx = budgeted.then(|| SpillCtx {
        accountant: &accountant,
        io: &spill_io,
        dir: params
            .spill_dir
            .as_deref()
            .expect("validate() enforces budget ⇒ spill_dir"),
        fingerprint,
        rank,
        recorder,
    });
    // Exact staging bound per stripe: each SUMMA stage holds the *received*
    // broadcast pair — some peer's block of the A/B stripe — so the bound
    // is the largest block any row/col peer owns, not this rank's own
    // block. One Max all-reduce per axis, run before any eviction zeroes
    // a local size. Collective, but `budgeted` is parameter-derived and
    // therefore identical on every rank.
    let (stage_max_a, stage_max_b) = if budgeted {
        let a: Vec<u64> = (0..bs.br()).map(|r| bs.a_stripe_bytes(r)).collect();
        let b: Vec<u64> = (0..bs.bc()).map(|c| bs.b_stripe_bytes(c)).collect();
        (
            grid.row_comm().all_reduce(&a, ReduceOp::Max),
            grid.col_comm().all_reduce(&b, ReduceOp::Max),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    // Bytes the staged broadcast buffers of one block's SUMMA may reach:
    // one received A+B pair per stage, two pairs resident when overlapped
    // broadcasts double-buffer the next stage.
    let staging_bound = |targets: &[BlockTask], overlap_on: bool| -> u64 {
        let per: u64 = targets
            .iter()
            .map(|t| stage_max_a[t.r] + stage_max_b[t.c])
            .sum();
        if overlap_on {
            per.saturating_mul(2)
        } else {
            per
        }
    };
    // Collective OOM agreement: in a budgeted multi-rank run, a rank whose
    // reservation cannot be satisfied must not abandon the SPMD schedule
    // unilaterally — its peers would block forever in the next collective.
    // Every reservation site sits at a schedule point all ranks reach, so
    // an all-reduced failure flag lets the whole world abort together:
    // the failing rank returns its own typed OOM, everyone else a peer
    // marker carrying the same "out of memory in phase" classification.
    const PEER_OOM: &str = "out of memory in phase \"peer reservation\": another rank could not \
                            satisfy a reservation under its memory budget; aborted collectively";
    let oom_vote = |local: Result<u64, String>| -> Result<u64, String> {
        if !budgeted || p == 1 {
            return local;
        }
        let any = world.all_reduce(&[u64::from(local.is_err())], ReduceOp::Max)[0];
        if any == 0 {
            local
        } else {
            local.and(Err(PEER_OOM.to_owned()))
        }
    };
    if let Some(ctx) = &spill_ctx {
        // Charge the k-mer index stripes one at a time; the first
        // scheduled blocks' stripes are protected so pressure doesn't
        // immediately evict what the loop is about to use. Not-yet-charged
        // stripes are hidden from the relief scan (evicting an uncharged
        // stripe would release bytes never reserved), so a budget smaller
        // than the whole index streams the index tail straight to disk
        // instead of refusing to start.
        let protect: Vec<BlockTask> = plan.tasks.iter().take(2).copied().collect();
        let nr = bs.br();
        let total = nr + bs.bc();
        let set_flag = |a: &mut [bool], b: &mut [bool], j: usize, v: bool| {
            if j < nr {
                a[j] = v;
            } else {
                b[j - nr] = v;
            }
        };
        let mut setup_oom: Result<u64, String> = Ok(0);
        for i in 0..total {
            for j in i + 1..total {
                set_flag(&mut a_evicted, &mut b_evicted, j, true);
            }
            let bytes = if i < nr {
                bs.a_stripe_bytes(i)
            } else {
                bs.b_stripe_bytes(i - nr)
            };
            let charged = if bytes > 0 {
                ctx.charge(
                    "k-mer index stripes",
                    bytes,
                    &mut bs,
                    &mut block_out,
                    &mut a_evicted,
                    &mut b_evicted,
                    &protect,
                )
            } else {
                Ok(())
            };
            // Uncharged stripes were only masked, never evicted (the scan
            // skips flagged entries), so their true state is still
            // resident.
            for j in i + 1..total {
                set_flag(&mut a_evicted, &mut b_evicted, j, false);
            }
            if let Err(e) = charged {
                setup_oom = Err(e);
                break;
            }
        }
        oom_vote(setup_oom)?;
    }

    // --- 3. Assemble the exchanged sequences (the cwait component).
    let t1 = Instant::now();
    let seqs: Vec<Vec<u8>> = {
        let _recv_span = span!(recorder, Component::CommWait, names::SPAN_SEQ_EXCHANGE_RECV, {
            peers: p.saturating_sub(1) as u64,
        });
        let mut unpacked = vec![Vec::new(); n];
        my_slice.unpack_into(&mut unpacked);
        let op_timeout = params.op_timeout_ms.map(Duration::from_millis);
        for src in 0..p {
            if src != rank {
                // With a deadline, a lost peer surfaces as a typed error
                // here instead of hanging the whole world in cwait.
                let s: SeqSlice = match op_timeout {
                    None => world.recv_from(src),
                    Some(t) => world
                        .recv_from_deadline(src, t)
                        .map_err(|e| format!("sequence exchange failed: {e}"))?,
                };
                s.unpack_into(&mut unpacked);
            }
        }
        unpacked
    };
    times.record(Component::CommWait, t1.elapsed().as_secs_f64());
    if let Some(ctx) = &spill_ctx {
        // The assembled sequences stay resident for the whole search
        // (alignment needs random access); charge them up front so a
        // budget below the irreducible working set fails here, naming
        // the phase, instead of thrashing later.
        let seq_bytes: u64 = seqs.iter().map(|s| s.len() as u64 + 24).sum();
        let protect: Vec<BlockTask> = plan.tasks.iter().take(2).copied().collect();
        let charged = ctx.charge(
            "sequence store",
            seq_bytes,
            &mut bs,
            &mut block_out,
            &mut a_evicted,
            &mut b_evicted,
            &protect,
        );
        oom_vote(charged.map(|()| 0))?;
    }

    // --- 4. The incremental blocked search.
    let sr = OverlapSemiring;
    // The unified intra-rank worker pool (`--threads`): one team of
    // persistent workers serves SpGEMM row chunks *and* alignment units,
    // so an idle sparse worker steals alignment work and vice versa.
    // Per-engine caps reproduce the old static split as an upper bound.
    // `None` keeps the legacy per-engine scoped teams.
    let unified = params.threads.map(|t| {
        let wp = WorkPool::sized(t);
        wp.set_cap(Engine::Align, params.align_cap);
        wp.set_cap(Engine::Sparse, params.spgemm_cap);
        wp
    });
    // --- Self-tuning seed (`--tune`). Engine caps and lookahead are
    // schedule-invariant (the graph is bit-identical for every value),
    // so nothing decided here or mid-run can change the output. `auto`
    // seeds the split from the α–β cost model over the already-exchanged
    // global sequence set — identical inputs on every rank give an
    // identical seed — unless the user passed explicit caps, which win
    // as the starting point. `fixed:` applies its hand-tuned spec once
    // and never adapts.
    let mut tune_state: Option<TuneKnobs> = None;
    match (&params.tune, &unified) {
        (TunePolicy::Auto, Some(wp)) => {
            let t = wp.threads();
            let (sp, al) = if params.spgemm_cap.is_some() || params.align_cap.is_some() {
                (
                    params.spgemm_cap.unwrap_or(t).clamp(1, t.max(1)),
                    params.align_cap.unwrap_or(t).clamp(1, t.max(1)),
                )
            } else {
                let mean_len =
                    seqs.iter().map(|s| s.len() as u64).sum::<u64>() as f64 / n.max(1) as f64;
                autotune::seed_split(t, &pastis_comm::MachineModel::commodity(), mean_len)
            };
            wp.set_cap(Engine::Sparse, Some(sp));
            wp.set_cap(Engine::Align, Some(al));
            recorder.add_counter(names::CTR_TUNE_SPGEMM_CAP, sp as f64);
            recorder.add_counter(names::CTR_TUNE_ALIGN_CAP, al as f64);
            tune_state = Some(TuneKnobs {
                spgemm_cap: sp,
                align_cap: al,
                lookahead: usize::from(params.pre_blocking),
            });
        }
        (TunePolicy::Fixed(spec), Some(wp)) => {
            if let Some(c) = spec.spgemm_cap {
                wp.set_cap(Engine::Sparse, Some(c));
                recorder.add_counter(names::CTR_TUNE_SPGEMM_CAP, c as f64);
            }
            if let Some(c) = spec.align_cap {
                wp.set_cap(Engine::Align, Some(c));
                recorder.add_counter(names::CTR_TUNE_ALIGN_CAP, c as f64);
            }
        }
        _ => {}
    }
    // The intra-rank SpGEMM pool: each SUMMA stage's local multiplication
    // picks a kernel (hash/heap/parallel) per `params.spgemm` and runs row
    // chunks across `spgemm_threads` workers, stitched in row order — the
    // overlap matrix is bit-identical for every kernel and worker count.
    let mut spgemm_pool = SpGemmPool::new(params.spgemm_threads)
        .with_kind(params.spgemm)
        .with_recorder(recorder.clone());
    if let Some(wp) = &unified {
        spgemm_pool = spgemm_pool.with_workers(wp.clone());
    }
    let spgemm_pool = spgemm_pool;
    // `bs` is passed in (not captured) so the drive loop can evict and
    // restore stripes between calls under a memory budget. Budgeted runs
    // cover the staged broadcast buffers with a reservation held across
    // the call (`staging_bound`), so no stage hook is attached — every
    // accounted byte goes through the checked reserve path.
    let compute_sparse = |bs: &KmerSumma, task: BlockTask, overlap_on: bool| -> CandidateBatch {
        let mut block_span = span!(recorder, Component::SpGemm, names::SPAN_SUMMA_BLOCK, {
            r: task.r as u64,
            c: task.c as u64,
        });
        let t_mult = Instant::now();
        let (cblock, gemm_stats) =
            bs.multiply_block_hooked(grid, &sr, task.r, task.c, &spgemm_pool, overlap_on, None);
        let spgemm_seconds = t_mult.elapsed().as_secs_f64();

        let t_other = Instant::now();
        let row_offset = bs.row_range(task.r).0 + cblock.row_offset();
        let col_offset = bs.col_range(task.c).0 + cblock.col_offset();
        let candidates = cblock.nnz_local() as u64;
        let pruned = plan.prune_local(task, cblock.local(), row_offset, col_offset);
        let mut pairs = Vec::with_capacity(pruned.nnz());
        for (li, lj, ck) in pruned.iter() {
            if !candidate_passes(ck, params.common_kmer_threshold) {
                continue;
            }
            let (sq, srr) = ck.first_seed().unwrap_or((0, 0));
            // Lossless narrowing: global ids are store indices, and
            // `SeqStore::push` refuses to assign an id past u32::MAX,
            // so `local + offset` here is always within u32 range.
            let (gi, gj) = (
                (li as usize + row_offset) as u32,
                (lj as usize + col_offset) as u32,
            );
            // Canonical alignment orientation: always query = lower id.
            // The parity scheme keeps some pairs as their lower-triangle
            // entry (gi > gj); traceback tie-breaking is not symmetric
            // under swapping the sequences, so without this both
            // load-balance schemes — and the serving path, which always
            // aligns (query, reference) — could disagree on the identity
            // of a tie-sensitive pair. `C(j,i)`'s combined seed is
            // `C(i,j)`'s with the positions swapped (both orientations
            // pick the same minimum k-mer id), so the swap is exact.
            let pt = if gi <= gj {
                PairTask {
                    i: gi,
                    j: gj,
                    seed_q: sq,
                    seed_r: srr,
                    count: ck.count,
                }
            } else {
                PairTask {
                    i: gj,
                    j: gi,
                    seed_q: srr,
                    seed_r: sq,
                    count: ck.count,
                }
            };
            pairs.push(pt);
        }
        let other_seconds = t_other.elapsed().as_secs_f64();
        block_span.push_arg(names::CTR_CANDIDATES, candidates);
        block_span.push_arg("products", gemm_stats.products);
        block_span.push_arg("pairs", pairs.len() as u64);
        CandidateBatch {
            task,
            pairs,
            candidates,
            products: gemm_stats.products,
            spgemm_seconds,
            other_seconds,
        }
    };

    // The intra-rank alignment pool: batches execute as atomically-claimed
    // chunks across `align_threads` workers (the calling thread included),
    // with results in task order — output is bit-identical for every
    // worker count. Workers never touch the communicator, so under
    // pre-blocking the concurrent sparse thread remains the only thread
    // issuing collectives. Score-only batches dispatch through the
    // `--simd`-selected vector backend; like the thread count, the choice
    // never changes the graph (the kernel is bit-identical to scalar).
    let simd_backend = params
        .simd
        .resolve()
        .expect("validate() checked the SIMD policy");
    let mut pool = AlignPool::new(params.align_threads)
        .with_recorder(recorder.clone())
        .with_simd(simd_backend);
    if let Some(wp) = &unified {
        pool = pool.with_workers(wp.clone());
    }
    let pool = pool;
    let filter = EdgeFilter::from_params(params);
    let align_pairs = |task: BlockTask,
                       pairs: &[PairTask]|
     -> (Vec<SimilarityEdge>, u64, f64, f64) {
        let t = Instant::now();
        let mut batch_span = span!(recorder, Component::Align, names::SPAN_ALIGN_BATCH, {
            r: task.r as u64,
            c: task.c as u64,
            pairs: pairs.len() as u64,
        });
        let tasks: Vec<AlignTask> = pairs
            .iter()
            .map(|pt| AlignTask {
                query: pt.i,
                reference: pt.j,
                seed_q: pt.seed_q,
                seed_r: pt.seed_r,
            })
            .collect();
        let lookup = |id: u32| -> &[u8] { &seqs[id as usize] };
        let mut edges = Vec::new();
        let cells;
        let cpu_seconds;
        match params.align_kind {
            AlignKind::FullSw => {
                let (results, stats) = pool.run_traceback(&tasks, lookup, &Blosum62, params.gaps);
                cells = stats.cells;
                cpu_seconds = stats.seconds;
                for (pt, res) in pairs.iter().zip(&results) {
                    let (qlen, rlen) = (seqs[pt.i as usize].len(), seqs[pt.j as usize].len());
                    if filter.passes(res, qlen, rlen) {
                        edges.push(SimilarityEdge {
                            i: pt.i,
                            j: pt.j,
                            score: res.score,
                            ani: res.identity() as f32,
                            coverage: res.coverage_min(qlen, rlen) as f32,
                            common_kmers: pt.count,
                        });
                    }
                }
            }
            AlignKind::Banded(w) => {
                let (results, stats) = pool.run_banded(&tasks, lookup, &Blosum62, params.gaps, w);
                cells = stats.cells;
                cpu_seconds = stats.seconds;
                for (pt, res) in pairs.iter().zip(&results) {
                    let (q, r) = (&seqs[pt.i as usize], &seqs[pt.j as usize]);
                    if let Some(e) = banded_edge(pt, res.score, q, r, &filter) {
                        edges.push(e);
                    }
                }
            }
            AlignKind::ScoreOnly => {
                // Exact scores through the multilane vector kernel.
                let (results, stats) = pool.run_score_only(&tasks, lookup, &Blosum62, params.gaps);
                cells = stats.cells;
                cpu_seconds = stats.seconds;
                batch_span.push_arg("simd", stats.simd.id());
                batch_span.push_arg("lane_promotions", stats.lane_promotions);
                for (pt, res) in pairs.iter().zip(&results) {
                    let (q, r) = (&seqs[pt.i as usize], &seqs[pt.j as usize]);
                    if let Some(e) = banded_edge(pt, res.score, q, r, &filter) {
                        edges.push(e);
                    }
                }
            }
        }
        batch_span.push_arg(names::CTR_CELLS, cells);
        batch_span.push_arg("edges", edges.len() as u64);
        drop(batch_span);
        (edges, cells, t.elapsed().as_secs_f64(), cpu_seconds)
    };
    // Memory backpressure's second stage: run the block's pairs in
    // quarters, sequentially, shrinking the peak intermediate alignment
    // state. Results are per-pair and stitched in task order, so the
    // edges are bit-identical to the unshrunk batch.
    let align_batch =
        |batch: &CandidateBatch, shrink: bool| -> (Vec<SimilarityEdge>, u64, f64, f64) {
            if !shrink || batch.pairs.len() <= 1 {
                return align_pairs(batch.task, &batch.pairs);
            }
            recorder.add_counter(names::CTR_MEM_BACKPRESSURE_BATCH_SHRUNK, 1.0);
            let chunk = batch.pairs.len().div_ceil(4);
            let (mut edges, mut cells, mut wall, mut cpu) = (Vec::new(), 0u64, 0f64, 0f64);
            for part in batch.pairs.chunks(chunk) {
                let (e, cl, w, cp) = align_pairs(batch.task, part);
                edges.extend(e);
                cells += cl;
                wall += w;
                cpu += cp;
            }
            (edges, cells, wall, cpu)
        };

    let mut graph = SimilarityGraph::new(n);
    let mut per_block = Vec::with_capacity(plan.tasks.len());
    let apply = |batch: CandidateBatch,
                 outcome: (Vec<SimilarityEdge>, u64, f64, f64),
                 times: &mut TimeBreakdown,
                 stats: &mut SearchStats,
                 per_block: &mut Vec<BlockTiming>|
     -> Vec<SimilarityEdge> {
        let (edges, cells, align_seconds, align_cpu_seconds) = outcome;
        times.record(Component::SpGemm, batch.spgemm_seconds);
        times.record(Component::SparseOther, batch.other_seconds);
        times.record(Component::Align, align_seconds);
        stats.candidates += batch.candidates;
        stats.spgemm_products += batch.products;
        stats.aligned_pairs += batch.pairs.len() as u64;
        stats.cells += cells;
        stats.similar_pairs += edges.len() as u64;
        stats.align_kernel_seconds += align_seconds;
        stats.align_cpu_seconds += align_cpu_seconds;
        per_block.push(BlockTiming {
            r: batch.task.r,
            c: batch.task.c,
            sparse_seconds: batch.spgemm_seconds + batch.other_seconds,
            align_seconds,
            candidates: batch.candidates,
            aligned_pairs: batch.pairs.len() as u64,
        });
        edges
    };

    let tasks = &plan.tasks;

    // --- 4a. Checkpoint/resume bookkeeping. The run fingerprint binds a
    // checkpoint to its exact search (output-relevant params + input), so a
    // stale or foreign directory can never poison a run.
    let ckpt_dir = params.checkpoint_dir.as_deref();
    let mut start_idx = 0usize;
    let mut resumed_from_block = None;
    if params.resume {
        let dir = ckpt_dir.expect("validate() enforces resume ⇒ checkpoint_dir");
        // Resume from the last block EVERY rank completed: ranks can die at
        // different blocks, and the SUMMA loop is bulk-synchronous, so the
        // world must re-enter it at one common index (collective Min).
        let mine =
            checkpoint::latest_valid(dir, rank, p, fingerprint).map_or(0, |ck| ck.blocks_done);
        let common = world.all_reduce(&[mine as u64], pastis_comm::ReduceOp::Min)[0] as usize;
        if common > 0 {
            let path = checkpoint::checkpoint_path(dir, rank, common);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading checkpoint {}: {e}", path.display()))?;
            let ck = Checkpoint::parse(&text)
                .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
            // Restore the partial state exactly as saved. Edges are in
            // insertion order (pre-normalize); the final normalize makes
            // the resumed graph bit-identical to an uninterrupted run.
            graph = ck.graph();
            stats = ck.stats;
            times = ck.times;
            per_block = ck.per_block;
            start_idx = common;
            resumed_from_block = Some(common);
            recorder.add_counter(names::CTR_RESUME_FROM_BLOCK, common as f64);
        }
    }
    // Halt is an *absolute* block index, so halt-then-resume-then-halt
    // chains compose (the deterministic stand-in for "killed at block k").
    let stop_idx = params
        .halt_after_blocks
        .map_or(tasks.len(), |h| h.min(tasks.len()));
    let halted = stop_idx < tasks.len();

    let save_ckpt = |blocks_done: usize,
                     graph: &SimilarityGraph,
                     stats: &SearchStats,
                     times: &TimeBreakdown,
                     per_block: &[BlockTiming]|
     -> Result<(), String> {
        let Some(dir) = ckpt_dir else {
            return Ok(());
        };
        let ck = Checkpoint {
            fingerprint,
            rank,
            nranks: p,
            n_vertices: n,
            blocks_done,
            stats: *stats,
            times: *times,
            per_block: per_block.to_vec(),
            edges: graph.edges().to_vec(),
        };
        checkpoint::save(dir, &ck)?;
        recorder.add_counter(names::CTR_CHECKPOINT_BLOCKS_WRITTEN, 1.0);
        Ok(())
    };

    // One drive loop for both schedules, parameterized by the lookahead
    // depth: depth 0 computes each block's SpGEMM on the critical path
    // (the serial schedule — the scope spawns nothing); depth 1 is the
    // pre-blocking software pipeline, aligning block i while the SpGEMM
    // of block i+1 runs on a concurrent thread. Alignment is purely
    // local, so the sparse thread is the only one issuing collectives —
    // the SPMD collective order stays identical on every rank either way.
    let depth = match &params.tune {
        // A hand-tuned lookahead overrides `--pre-blocking` (the drive
        // loop implements depth 0 and 1; deeper specs clamp). The choice
        // comes from world-uniform params, so the collective schedule
        // stays identical on every rank.
        TunePolicy::Fixed(spec) if spec.lookahead.is_some() => {
            spec.lookahead.unwrap_or_default().min(1)
        }
        _ => usize::from(params.pre_blocking),
    };
    // Blocks already accounted to the tuner (resume restores per_block;
    // restored blocks never count toward a live window).
    let mut tune_window_start = per_block.len();
    // Backpressure state (budgeted runs): under sustained pressure the
    // loop first pauses broadcast/SpGEMM prefetching (overlap and
    // pre-blocking lookahead), then shrinks alignment batches — both are
    // output-neutral knobs — before any reservation is allowed to abort.
    let mut prefetch_paused = false;
    let mut shrink_batches = false;
    let mut pending: Option<CandidateBatch> = None;
    // Carried across iterations of the budgeted loop: an output-block
    // charge that failed at the end of iteration i aborts at the top of
    // iteration i+1 (the next collectively-aligned point), and a pressure
    // signal raised on any rank flips the backpressure knobs on every
    // rank at once — the lookahead depth shapes the collective schedule,
    // so it must stay uniform across the world.
    let mut deferred_oom: Option<String> = None;
    let mut pressure_hint = false;
    for idx in start_idx..stop_idx {
        if budgeted {
            let flags = [u64::from(deferred_oom.is_some()), u64::from(pressure_hint)];
            let flags = if p > 1 {
                world.all_reduce(&flags, ReduceOp::Max)
            } else {
                flags.to_vec()
            };
            if flags[0] != 0 {
                return Err(deferred_oom.unwrap_or_else(|| PEER_OOM.to_owned()));
            }
            if flags[1] != 0 {
                if !prefetch_paused {
                    prefetch_paused = true;
                    recorder.add_counter(names::CTR_MEM_BACKPRESSURE_PREFETCH_PAUSED, 1.0);
                } else if !shrink_batches {
                    shrink_batches = true;
                }
                pressure_hint = false;
            }
        }
        // --- Self-tuning decision point (`--tune auto`). Mirrors the
        // backpressure protocol above: window telemetry is reduced
        // collectively (exact integer microsecond sums, so every rank
        // holds identical values), then every rank runs the same pure
        // `decide` on that snapshot — the lookahead depth shapes the
        // collective schedule and therefore must stay world-uniform,
        // while the cap re-split is local but still decided from the
        // same agreed state. The window condition (`per_block` grew) is
        // itself world-uniform: the BSP loop completes exactly one block
        // per iteration on every rank.
        if let (Some(wp), Some(cur)) = (&unified, tune_state.as_mut()) {
            if per_block.len() > tune_window_start {
                let _tspan = span!(recorder, Component::Other, names::SPAN_TUNE_DECIDE, {
                    block: idx as u64,
                });
                let (mut sp_us, mut al_us) = (0u64, 0u64);
                for b in &per_block[tune_window_start..] {
                    sp_us += (b.sparse_seconds.max(0.0) * 1e6) as u64;
                    al_us += (b.align_seconds.max(0.0) * 1e6) as u64;
                }
                tune_window_start = per_block.len();
                let local = [sp_us, al_us, sp_us + al_us];
                let sums = if p > 1 {
                    world.all_reduce(&local[..2], ReduceOp::Sum)
                } else {
                    local[..2].to_vec()
                };
                let maxs = if p > 1 {
                    world.all_reduce(&local[2..], ReduceOp::Max)
                } else {
                    local[2..].to_vec()
                };
                let snap = TuneSnapshot {
                    threads: wp.threads(),
                    sparse_us: sums[0],
                    align_us: sums[1],
                    max_rank_us: maxs[0],
                    sum_rank_us: sums[0] + sums[1],
                    ranks: p as u32,
                };
                let next = autotune::decide(cur, &snap, depth);
                recorder.add_counter(names::CTR_TUNE_DECISIONS, 1.0);
                if next != *cur {
                    wp.set_cap(Engine::Sparse, Some(next.spgemm_cap));
                    wp.set_cap(Engine::Align, Some(next.align_cap));
                    recorder.add_counter(names::CTR_TUNE_RESPLITS, 1.0);
                    recorder.add_counter(names::CTR_TUNE_SPGEMM_CAP, next.spgemm_cap as f64);
                    recorder.add_counter(names::CTR_TUNE_ALIGN_CAP, next.align_cap as f64);
                    recorder.add_counter(names::CTR_TUNE_LOOKAHEAD, next.lookahead as f64);
                    *cur = next;
                }
            }
        }
        let tuned_depth = tune_state
            .as_ref()
            .map_or(depth, |k| k.lookahead.min(depth));
        let eff_depth = if prefetch_paused { 0 } else { tuned_depth };
        let next_task = (eff_depth > 0 && idx + 1 < stop_idx).then(|| tasks[idx + 1]);
        let overlap_on = params.overlap && !prefetch_paused;
        // SUMMAs this iteration will actually run: the current block unless
        // its batch was prefetched, plus the pre-blocking lookahead.
        let mut summa_targets: Vec<BlockTask> = Vec::new();
        if pending.is_none() {
            summa_targets.push(tasks[idx]);
        }
        summa_targets.extend(next_task);
        let mut staging_held = 0u64;
        if let Some(ctx) = &spill_ctx {
            let prep = (|| -> Result<u64, String> {
                // Stream back any evicted stripes the upcoming SpGEMMs need.
                ctx.restore_stripes_for(
                    &mut bs,
                    &mut block_out,
                    &mut a_evicted,
                    &mut b_evicted,
                    &summa_targets,
                )?;
                // Reserve the staged-broadcast bound and hold it across the
                // block's SUMMA: the stage buffers themselves are allocated
                // deep inside the collective (no spill relief possible there),
                // so pressure is relieved here and the reservation covers the
                // peak until the multiply returns.
                let held = staging_bound(&summa_targets, overlap_on);
                if held > 0 {
                    ctx.charge(
                        "broadcast staging",
                        held,
                        &mut bs,
                        &mut block_out,
                        &mut a_evicted,
                        &mut b_evicted,
                        &summa_targets,
                    )?;
                }
                Ok(held)
            })();
            staging_held = oom_vote(prep)?;
        }
        let batch = match pending.take() {
            Some(b) => b,
            None => compute_sparse(&bs, tasks[idx], overlap_on),
        };
        let (outcome, next_batch) = std::thread::scope(|scope| {
            let bs_ref = &bs;
            let handle =
                next_task.map(|t| scope.spawn(move || compute_sparse(bs_ref, t, overlap_on)));
            let outcome = align_batch(&batch, shrink_batches);
            (
                outcome,
                handle.map(|h| h.join().expect("pre-blocking sparse thread panicked")),
            )
        });
        // All staged buffers are dropped once the multiplies return.
        accountant.release(staging_held);
        pending = next_batch;
        let edges = apply(batch, outcome, &mut times, &mut stats, &mut per_block);
        if let Some(ctx) = &spill_ctx {
            // Charge the completed block's edges; the blocks the loop
            // touches next keep their stripes resident through any
            // relief spilling.
            let protect: Vec<BlockTask> =
                tasks[(idx + 1).min(stop_idx)..(idx + 3).min(stop_idx)].to_vec();
            match ctx.charge(
                "output block",
                EDGE_BYTES * edges.len() as u64,
                &mut bs,
                &mut block_out,
                &mut a_evicted,
                &mut b_evicted,
                &protect,
            ) {
                // A failed charge aborts at the next vote point (loop top
                // or assembly), keeping the abort collective.
                Err(e) => deferred_oom = Some(e),
                Ok(()) => block_out.push((idx, BlockEdges::Mem(edges))),
            }
            pressure_hint = accountant
                .budget()
                .is_some_and(|b| accountant.live().saturating_mul(10) >= b.saturating_mul(8));
        } else {
            for e in edges {
                graph.add(e);
            }
        }
        save_ckpt(idx + 1, &graph, &stats, &times, &per_block)?;
    }

    // --- 4b'. Budgeted output assembly: merge every block's edges into
    // the graph in scheduled order, streaming spilled shards back. A
    // shard failing its CRC frame (or torn, or foreign) is recomputed —
    // collectively, since the block's SpGEMM is SPMD — and the final
    // normalize makes the graph bit-identical to an unbudgeted run
    // either way.
    if let Some(ctx) = &spill_ctx {
        let mut failed: Vec<usize> = Vec::new();
        // A charge that failed at the tail of the block loop (or fails
        // while merging below) aborts at the vote before the collective
        // failed-set exchange, so the world leaves together.
        let mut merge_err: Option<String> = deferred_oom.take();
        for k in 0..block_out.len() {
            if merge_err.is_some() {
                break;
            }
            let idx = block_out[k].0;
            let state = std::mem::replace(&mut block_out[k].1, BlockEdges::Merged);
            match state {
                BlockEdges::Mem(edges) => {
                    for e in edges {
                        graph.add(e);
                    }
                }
                BlockEdges::Spilled => {
                    let path = checkpoint::spill_path(ctx.dir, rank, idx);
                    let read = {
                        let _sp = span!(recorder, Component::SparseOther, names::SPAN_SPILL_READ, {
                            block: idx as u64,
                        });
                        ctx.io
                            .read_to_string(&path)
                            .and_then(|t| SpillShard::parse(&t).map(|s| (t.len(), s)))
                    };
                    match read {
                        Ok((len, shard))
                            if shard.fingerprint == fingerprint
                                && shard.rank == rank
                                && shard.block == idx =>
                        {
                            recorder.add_counter(names::CTR_SPILL_BLOCKS_IN, 1.0);
                            recorder.add_counter(names::CTR_SPILL_BYTES_IN, len as f64);
                            match ctx.charge(
                                "output assembly",
                                EDGE_BYTES * shard.edges.len() as u64,
                                &mut bs,
                                &mut block_out,
                                &mut a_evicted,
                                &mut b_evicted,
                                &[],
                            ) {
                                Err(e) => merge_err = Some(e),
                                Ok(()) => {
                                    for e in shard.edges {
                                        graph.add(e);
                                    }
                                }
                            }
                        }
                        _ => {
                            // CRC-detect: the shard is damaged (injected
                            // corruption, short write, torn disk) or
                            // foreign. Recompute the block below.
                            recorder.add_counter(names::CTR_SPILL_CRC_REJECTS, 1.0);
                            failed.push(idx);
                        }
                    }
                }
                BlockEdges::Merged => {}
            }
        }
        oom_vote(merge_err.map_or(Ok(0), Err))?;
        // Every rank recomputes the union of failed blocks — the SUMMA
        // is collective — but only ranks whose own shard was bad keep
        // (and charge) the recomputed edges.
        let failed_union: Vec<usize> = if p > 1 {
            let all = world.all_gather(failed.clone());
            let mut u: Vec<usize> = all.concat();
            u.sort_unstable();
            u.dedup();
            u
        } else {
            let mut u = failed.clone();
            u.sort_unstable();
            u
        };
        let mut recompute_err: Option<String> = None;
        for &idx in &failed_union {
            let t = tasks[idx];
            let prep = (|| -> Result<u64, String> {
                ctx.restore_stripes_for(
                    &mut bs,
                    &mut block_out,
                    &mut a_evicted,
                    &mut b_evicted,
                    &[t],
                )?;
                let staging = staging_bound(&[t], false);
                if staging > 0 {
                    ctx.charge(
                        "output recompute staging",
                        staging,
                        &mut bs,
                        &mut block_out,
                        &mut a_evicted,
                        &mut b_evicted,
                        &[t],
                    )?;
                }
                Ok(staging)
            })();
            // One vote per recomputed block, before its collective SpGEMM;
            // it also settles the previous block's deferred charge.
            let local = match recompute_err.take() {
                Some(e) => Err(e),
                None => prep,
            };
            let staging = oom_vote(local)?;
            let batch = compute_sparse(&bs, t, false);
            accountant.release(staging);
            if failed.contains(&idx) {
                let (edges, _cells, _wall, _cpu) = align_pairs(t, &batch.pairs);
                recorder.add_counter(names::CTR_SPILL_RECOMPUTES, 1.0);
                match ctx.charge(
                    "output assembly",
                    EDGE_BYTES * edges.len() as u64,
                    &mut bs,
                    &mut block_out,
                    &mut a_evicted,
                    &mut b_evicted,
                    &[],
                ) {
                    Err(e) => recompute_err = Some(e),
                    Ok(()) => {
                        for e in edges {
                            graph.add(e);
                        }
                    }
                }
            }
        }
        oom_vote(recompute_err.map_or(Ok(0), Err))?;
    }

    // --- 4b. Graceful degradation: flag environmental stragglers. Work
    // counters stay balanced when a *node* (not the partition) is slow, so
    // the scan compares wall seconds, rank against rank, via telemetry
    // rather than silently absorbing the skew. Collective — skipped on
    // halted (partial) runs where ranks may disagree about completion.
    let stragglers = match params.straggler_factor {
        Some(factor) if p > 1 && !halted => {
            let my_secs: f64 = per_block
                .iter()
                .map(|b| b.sparse_seconds + b.align_seconds)
                .sum();
            let all = world.all_gather(my_secs);
            let report = detect_stragglers(&all, factor);
            recorder.add_counter(names::CTR_STRAGGLER_MEDIAN_SECONDS, report.median_seconds);
            recorder.add_counter(names::CTR_STRAGGLER_SELF_SECONDS, my_secs);
            recorder.add_counter(
                names::CTR_STRAGGLER_IMBALANCE_FACTOR,
                report.imbalance_factor,
            );
            if report.flagged.contains(&rank) {
                recorder.add_counter(names::CTR_STRAGGLER_FLAGGED, 1.0);
            }
            Some(report)
        }
        _ => None,
    };

    {
        let _out_span = span!(recorder, Component::SparseOther, names::SPAN_OUTPUT_ASSEMBLY, {
            edges: graph.n_edges() as u64,
        });
        graph.normalize();
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    stats.total_seconds = wall_seconds;
    recorder.add_counter(names::CTR_CANDIDATES, stats.candidates as f64);
    recorder.add_counter(names::CTR_ALIGNED_PAIRS, stats.aligned_pairs as f64);
    recorder.add_counter(names::CTR_CELLS, stats.cells as f64);
    recorder.add_counter(names::CTR_SIMILAR_PAIRS, stats.similar_pairs as f64);
    recorder.add_counter(names::CTR_ALIGN_SECONDS, times.get(Component::Align));
    recorder.add_counter(names::CTR_SPARSE_SECONDS, times.sparse_all());
    recorder.add_counter(names::CTR_ALIGN_CPU_SECONDS, stats.align_cpu_seconds);
    if budgeted {
        // The accountant's high-water mark: peak live bytes across
        // sequences, stripes, staged broadcast buffers, and output
        // blocks. The acceptance bar for a budgeted run is that this
        // stays at or under the budget.
        recorder.add_counter(names::CTR_MEM_HIGH_WATER, accountant.high_water() as f64);
    }
    if let Some(wp) = &unified {
        // Cross-engine steals: how often a persistent pool worker switched
        // between sparse and alignment jobs — the utilization the unified
        // pool recovers over the old static thread split.
        recorder.add_counter(names::CTR_POOL_STEALS, wp.steals() as f64);
    }
    if params.align_kind == AlignKind::ScoreOnly {
        // Which vector backend the score-only batches ran on (stable id:
        // scalar 0, sse2 1, avx2 2, neon 3). Recorded once per run.
        recorder.add_counter(names::CTR_ALIGN_SIMD_BACKEND, simd_backend.id() as f64);
    }
    Ok(SearchResult {
        graph,
        stats,
        times,
        wall_seconds,
        per_block,
        resumed_from_block,
        stragglers,
        mem_high_water: budgeted.then(|| accountant.high_water()),
    })
}

/// Edge construction for the banded (score-only) kernel: the ANI threshold
/// applies to the score normalized by the shorter sequence's self-score,
/// and coverage is not measurable (reported as the normalized score too).
/// Shared with [`crate::serve`] so both paths compute identical edges.
pub(crate) fn banded_edge(
    pt: &PairTask,
    score: i32,
    q: &[u8],
    r: &[u8],
    filter: &EdgeFilter,
) -> Option<SimilarityEdge> {
    if score <= 0 {
        return None;
    }
    let self_score = |s: &[u8]| -> i32 { s.iter().map(|&c| Blosum62.score(c, c)).sum() };
    let denom = self_score(q).min(self_score(r)).max(1);
    let normalized = score as f64 / denom as f64;
    (normalized >= filter.ani_threshold).then_some(SimilarityEdge {
        i: pt.i,
        j: pt.j,
        score,
        ani: normalized as f32,
        coverage: normalized as f32,
        common_kmers: pt.count,
    })
}

/// Convenience serial entry point: run the whole search on one rank.
pub fn run_search_serial(store: &SeqStore, params: &SearchParams) -> Result<SearchResult, String> {
    let grid = ProcessGrid::square(pastis_comm::SelfComm::new());
    run_search(&grid, store, params)
}

/// Serial entry point with telemetry: the single rank's communicator is
/// wrapped in a [`TracedComm`](pastis_comm::TracedComm) so collectives are
/// recorded alongside the pipeline spans.
pub fn run_search_serial_traced(
    store: &SeqStore,
    params: &SearchParams,
    recorder: &Recorder,
) -> Result<SearchResult, String> {
    let comm = pastis_comm::TracedComm::new(pastis_comm::SelfComm::new(), recorder.clone());
    let grid = ProcessGrid::square(comm);
    run_search_traced(&grid, store, params, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::encode;
    use pastis_comm::run_threaded;
    use pastis_seqio::{SyntheticConfig, SyntheticDataset};

    fn tiny_store() -> SeqStore {
        // Two obvious families plus noise.
        let mut s = SeqStore::new();
        let fam1 = "MKVLAWYHEEMKVLAWYHEE";
        let fam1b = "MKVLAWYHEEMKVLAWYHEA"; // one substitution
        let fam2 = "GGSTPNQRCDGGSTPNQRCD";
        let fam2b = "GGSTPNQRCDGGSTPNQRCE";
        let noise = "WPWPWPWPWPWPWPWPWPWP";
        for (i, q) in [fam1, fam1b, fam2, fam2b, noise].iter().enumerate() {
            s.push(format!("s{i}"), encode(q).unwrap());
        }
        s
    }

    fn edges_of(result: &SearchResult) -> Vec<(u32, u32)> {
        result.graph.edges().iter().map(|e| e.key()).collect()
    }

    #[test]
    fn serial_search_finds_planted_families() {
        let store = tiny_store();
        let params = SearchParams::test_defaults();
        let res = run_search_serial(&store, &params).unwrap();
        let keys = edges_of(&res);
        assert!(keys.contains(&(0, 1)), "family 1 missed: {keys:?}");
        assert!(keys.contains(&(2, 3)), "family 2 missed: {keys:?}");
        assert!(!keys.contains(&(0, 2)), "cross-family edge: {keys:?}");
        assert!(
            !keys.iter().any(|&(i, j)| i == 4 || j == 4),
            "noise matched"
        );
        // Counters are coherent.
        assert!(res.stats.candidates >= res.stats.aligned_pairs);
        assert!(res.stats.aligned_pairs >= res.stats.similar_pairs);
        assert_eq!(res.stats.similar_pairs as usize, res.graph.n_edges());
        assert!(res.stats.cells > 0);
    }

    #[test]
    fn each_pair_aligned_exactly_once() {
        let store = tiny_store();
        for lb in [
            crate::LoadBalance::Triangular,
            crate::LoadBalance::IndexBased,
        ] {
            let params = SearchParams::test_defaults().with_load_balance(lb);
            let res = run_search_serial(&store, &params).unwrap();
            // 5 sequences share kmers only within families; candidates
            // pruned to one per unordered pair: count aligned pairs for a
            // sanity bound.
            let mut seen = std::collections::HashSet::new();
            for e in res.graph.edges() {
                assert!(seen.insert(e.key()), "{lb:?} duplicated {:?}", e.key());
            }
        }
    }

    #[test]
    fn blocked_equals_unblocked_serial() {
        let store = tiny_store();
        let base = run_search_serial(&store, &SearchParams::test_defaults()).unwrap();
        for (br, bc) in [(2, 2), (3, 2), (5, 5)] {
            let params = SearchParams::test_defaults().with_blocking(br, bc);
            let res = run_search_serial(&store, &params).unwrap();
            assert_eq!(
                edges_of(&res),
                edges_of(&base),
                "blocking {br}x{bc} changed the result"
            );
        }
    }

    #[test]
    fn schemes_agree_on_results() {
        let store = tiny_store();
        let tri = run_search_serial(
            &store,
            &SearchParams::test_defaults()
                .with_load_balance(crate::LoadBalance::Triangular)
                .with_blocking(3, 3),
        )
        .unwrap();
        let idx = run_search_serial(
            &store,
            &SearchParams::test_defaults()
                .with_load_balance(crate::LoadBalance::IndexBased)
                .with_blocking(3, 3),
        )
        .unwrap();
        assert_eq!(edges_of(&tri), edges_of(&idx));
    }

    #[test]
    fn pre_blocking_preserves_results() {
        let store = tiny_store();
        let off =
            run_search_serial(&store, &SearchParams::test_defaults().with_blocking(4, 4)).unwrap();
        let on = run_search_serial(
            &store,
            &SearchParams::test_defaults()
                .with_blocking(4, 4)
                .with_pre_blocking(true),
        )
        .unwrap();
        assert_eq!(edges_of(&on), edges_of(&off));
    }

    #[test]
    fn distributed_matches_serial() {
        let ds = SyntheticDataset::generate(&SyntheticConfig {
            n_sequences: 40,
            mean_len: 60.0,
            singleton_fraction: 0.4,
            seed: 77,
            ..SyntheticConfig::small(40, 77)
        });
        let params = SearchParams::test_defaults().with_blocking(2, 3);
        let serial = run_search_serial(&ds.store, &params).unwrap();
        let want = edges_of(&serial);
        for p in [4usize, 9] {
            let store = ds.store.clone();
            let params = params.clone();
            let out = run_threaded(p, move |c| {
                let grid = ProcessGrid::square(c.split(0, c.rank()));
                let res = run_search(&grid, &store, &params).unwrap();
                let global = res.gather_graph(grid.world());
                let keys: Vec<(u32, u32)> = global.edges().iter().map(|e| e.key()).collect();
                let gstats = res.stats.all_reduce(grid.world());
                (keys, gstats.aligned_pairs, gstats.similar_pairs)
            });
            for (keys, aligned, similar) in &out {
                assert_eq!(keys, &want, "p={p} changed the similarity graph");
                assert_eq!(*aligned, serial.stats.aligned_pairs, "p={p}");
                assert_eq!(*similar, serial.stats.similar_pairs, "p={p}");
            }
        }
    }

    #[test]
    fn tune_auto_sweep_is_byte_identical() {
        use crate::autotune::TunePolicy;
        use pastis_sparse::SpGemmKind;
        // The satellite determinism sweep: `--tune auto` must emit the
        // same TSV bytes as `--tune off` (and as the untuned baseline)
        // across pool sizes, SpGEMM kernels, and the overlap switch —
        // tuning moves only schedule-invariant knobs.
        let ds = SyntheticDataset::generate(&SyntheticConfig::small(60, 5));
        let base = SearchParams::test_defaults()
            .with_blocking(3, 3)
            .with_pre_blocking(true);
        let tsv = |p: &SearchParams| {
            run_search_serial(&ds.store, p)
                .unwrap()
                .graph
                .to_tsv_lines()
        };
        let want = tsv(&base);
        assert!(!want.is_empty(), "sweep baseline found no edges");
        for threads in [1usize, 2, 4] {
            for kernel in [SpGemmKind::Hash, SpGemmKind::Parallel] {
                for overlap in [false, true] {
                    let cfg = base
                        .clone()
                        .with_threads(threads)
                        .with_spgemm(kernel)
                        .with_overlap(overlap);
                    let ctx = format!("threads={threads} kernel={kernel:?} overlap={overlap}");
                    let off = tsv(&cfg.clone().with_tune(TunePolicy::Off));
                    assert_eq!(off, want, "--tune off diverged at {ctx}");
                    let auto = tsv(&cfg.clone().with_tune(TunePolicy::Auto));
                    assert_eq!(auto, want, "--tune auto diverged at {ctx}");
                }
            }
        }
    }

    #[test]
    fn tune_auto_resplits_mid_run_on_imbalanced_input() {
        use crate::autotune::TunePolicy;
        use pastis_trace::TraceSession;
        // A fixture the cost model mis-seeds on purpose: the commodity
        // preset models alignment as the dominant cost (gcups 0 → the
        // modeled O(len²) term saturates), so the seed gives alignment
        // the lion's share of the pool. But this run's common-k-mer
        // filter is so strict that almost no candidate survives to
        // alignment — the *measured* time is all sparse. The telemetry
        // loop must notice and move workers from align to SpGEMM.
        let ds = SyntheticDataset::generate(&SyntheticConfig {
            n_sequences: 160,
            mean_len: 200.0,
            len_sigma: 0.2,
            singleton_fraction: 1.0,
            seed: 0xA5A5,
            ..SyntheticConfig::default()
        });
        let params = SearchParams {
            common_kmer_threshold: 64,
            ..SearchParams::test_defaults()
        }
        .with_blocking(4, 4)
        .with_threads(4)
        .with_tune(TunePolicy::Auto);
        let session = TraceSession::new();
        let rec = session.recorder(0);
        let res = run_search_serial_traced(&ds.store, &params, &rec).unwrap();
        let ctr = rec.counters();
        let decisions = ctr.get(names::CTR_TUNE_DECISIONS).copied().unwrap_or(0.0);
        let resplits = ctr.get(names::CTR_TUNE_RESPLITS).copied().unwrap_or(0.0);
        assert!(decisions >= 1.0, "tuning loop never evaluated: {ctr:?}");
        assert!(
            resplits >= 1.0,
            "no mid-run re-split on an align-misseeded fixture: {ctr:?}"
        );
        // And the tuned graph is still exactly the untuned graph.
        let off = run_search_serial(&ds.store, &params.clone().with_tune(TunePolicy::Off)).unwrap();
        assert_eq!(res.graph.to_tsv_lines(), off.graph.to_tsv_lines());
    }

    #[test]
    fn banded_kernel_runs_and_filters() {
        let store = tiny_store();
        let params = SearchParams {
            align_kind: AlignKind::Banded(8),
            ..SearchParams::test_defaults()
        };
        let res = run_search_serial(&store, &params).unwrap();
        let keys = edges_of(&res);
        assert!(keys.contains(&(0, 1)), "banded missed identical family");
        assert!(res.stats.cells > 0);
        // Banded explores fewer cells than full SW would.
        let full = run_search_serial(&store, &SearchParams::test_defaults()).unwrap();
        assert!(res.stats.cells < full.stats.cells);
    }

    #[test]
    fn invalid_params_rejected() {
        let store = tiny_store();
        let bad = SearchParams {
            k: 0,
            ..SearchParams::default()
        };
        assert!(run_search_serial(&store, &bad).is_err());
    }

    #[test]
    fn empty_store_is_ok() {
        let res = run_search_serial(&SeqStore::new(), &SearchParams::test_defaults()).unwrap();
        assert_eq!(res.graph.n_edges(), 0);
        assert_eq!(res.stats.aligned_pairs, 0);
    }

    #[test]
    fn sequences_shorter_than_k_are_isolated() {
        let mut store = tiny_store();
        store.push("tiny".into(), encode("MK").unwrap());
        let res = run_search_serial(&store, &SearchParams::test_defaults()).unwrap();
        assert!(!res.graph.edges().iter().any(|e| e.i == 5 || e.j == 5));
    }

    #[test]
    fn per_block_series_covers_schedule() {
        let store = tiny_store();
        let params = SearchParams::test_defaults()
            .with_blocking(3, 3)
            .with_load_balance(crate::LoadBalance::Triangular);
        let res = run_search_serial(&store, &params).unwrap();
        // The per-block series covers exactly the scheduled (non-avoidable)
        // blocks. For 5 sequences blocked 3x3 the stripes are 2/2/1 and the
        // last diagonal block is a single element (4,4) — avoidable — so 5
        // of the 9 blocks are scheduled.
        assert_eq!(res.per_block.len(), 5);
        let total_aligned: u64 = res.per_block.iter().map(|b| b.aligned_pairs).sum();
        assert_eq!(total_aligned, res.stats.aligned_pairs);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pastis-pipe-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn graph_bits(result: &SearchResult) -> Vec<(u32, u32, i32, u32, u32, u32)> {
        result
            .graph
            .edges()
            .iter()
            .map(|e| {
                (
                    e.i,
                    e.j,
                    e.score,
                    e.ani.to_bits(),
                    e.coverage.to_bits(),
                    e.common_kmers,
                )
            })
            .collect()
    }

    #[test]
    fn halt_and_resume_is_bit_identical_serial() {
        let store = tiny_store();
        let dir = ckpt_dir("serial");
        let base_params = SearchParams::test_defaults().with_blocking(3, 3);
        let base = run_search_serial(&store, &base_params).unwrap();

        // Phase 1: run to block 2, then "die".
        let halted = run_search_serial(
            &store,
            &base_params
                .clone()
                .with_checkpoint_dir(&dir)
                .with_halt_after_blocks(2),
        )
        .unwrap();
        assert_eq!(halted.per_block.len(), 2);
        assert!(halted.resumed_from_block.is_none());

        // Phase 2: resume and finish; output is bit-identical to the
        // uninterrupted run.
        let resumed = run_search_serial(
            &store,
            &base_params
                .clone()
                .with_checkpoint_dir(&dir)
                .with_resume(true),
        )
        .unwrap();
        assert_eq!(resumed.resumed_from_block, Some(2));
        assert_eq!(graph_bits(&resumed), graph_bits(&base));
        assert_eq!(resumed.stats.candidates, base.stats.candidates);
        assert_eq!(resumed.stats.aligned_pairs, base.stats.aligned_pairs);
        assert_eq!(resumed.stats.similar_pairs, base.stats.similar_pairs);
        assert_eq!(resumed.stats.cells, base.stats.cells);
        assert_eq!(resumed.per_block.len(), base.per_block.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn halt_resume_chains_compose() {
        // Kill at block 1, resume and kill at block 3, resume to the end:
        // the absolute halt index composes with resume.
        let store = tiny_store();
        let dir = ckpt_dir("chain");
        let base_params = SearchParams::test_defaults()
            .with_blocking(3, 3)
            .with_pre_blocking(true);
        let base = run_search_serial(&store, &base_params).unwrap();

        let p1 = base_params
            .clone()
            .with_checkpoint_dir(&dir)
            .with_halt_after_blocks(1);
        let r1 = run_search_serial(&store, &p1).unwrap();
        assert_eq!(r1.per_block.len(), 1);

        let p2 = base_params
            .clone()
            .with_checkpoint_dir(&dir)
            .with_resume(true)
            .with_halt_after_blocks(3);
        let r2 = run_search_serial(&store, &p2).unwrap();
        assert_eq!(r2.resumed_from_block, Some(1));
        assert_eq!(r2.per_block.len(), 3);

        let p3 = base_params
            .clone()
            .with_checkpoint_dir(&dir)
            .with_resume(true);
        let r3 = run_search_serial(&store, &p3).unwrap();
        assert_eq!(r3.resumed_from_block, Some(3));
        assert_eq!(graph_bits(&r3), graph_bits(&base));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_empty_dir_recomputes_from_scratch() {
        let store = tiny_store();
        let dir = ckpt_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let params = SearchParams::test_defaults()
            .with_blocking(2, 2)
            .with_checkpoint_dir(&dir)
            .with_resume(true);
        let res = run_search_serial(&store, &params).unwrap();
        assert!(res.resumed_from_block.is_none());
        let base =
            run_search_serial(&store, &SearchParams::test_defaults().with_blocking(2, 2)).unwrap();
        assert_eq!(graph_bits(&res), graph_bits(&base));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distributed_halt_resume_matches_uninterrupted() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::small(30, 11));
        let params = SearchParams::test_defaults().with_blocking(3, 3);
        let store = ds.store.clone();
        let want = {
            let serial = run_search_serial(&store, &params).unwrap();
            edges_of(&serial)
        };
        let dir = ckpt_dir("dist");
        let p = 4usize;
        // Phase 1: every rank halts after 2 blocks, checkpointing as it goes.
        {
            let store = store.clone();
            let params = params
                .clone()
                .with_checkpoint_dir(&dir)
                .with_halt_after_blocks(2);
            run_threaded(p, move |c| {
                let grid = ProcessGrid::square(c.split(0, c.rank()));
                run_search(&grid, &store, &params).unwrap().per_block.len()
            });
        }
        // Phase 2: resume on the same world size; the gathered graph is the
        // same as the uninterrupted distributed (and serial) run.
        let out = {
            let store = store.clone();
            let params = params.clone().with_checkpoint_dir(&dir).with_resume(true);
            run_threaded(p, move |c| {
                let grid = ProcessGrid::square(c.split(0, c.rank()));
                let res = run_search(&grid, &store, &params).unwrap();
                let global = res.gather_graph(grid.world());
                let keys: Vec<(u32, u32)> = global.edges().iter().map(|e| e.key()).collect();
                (res.resumed_from_block, keys)
            })
        };
        for (resumed, keys) in &out {
            assert_eq!(*resumed, Some(2));
            assert_eq!(keys, &want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprint_checkpoints_are_ignored() {
        // Checkpoints from a different search (different k) must not be
        // resumed into this one.
        let store = tiny_store();
        let dir = ckpt_dir("foreign");
        let other = SearchParams {
            k: 5,
            ..SearchParams::test_defaults()
        }
        .with_blocking(2, 2)
        .with_checkpoint_dir(&dir);
        run_search_serial(&store, &other).unwrap();
        let params = SearchParams::test_defaults()
            .with_blocking(2, 2)
            .with_checkpoint_dir(&dir)
            .with_resume(true);
        let res = run_search_serial(&store, &params).unwrap();
        assert!(res.resumed_from_block.is_none(), "resumed a foreign run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn straggler_scan_reports_on_distributed_runs() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::small(20, 5));
        let params = SearchParams::test_defaults().with_blocking(2, 2);
        let store = ds.store.clone();
        let out = run_threaded(4, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            run_search(&grid, &store, &params).unwrap().stragglers
        });
        for report in out {
            let report = report.expect("scan enabled by default on p > 1");
            assert_eq!(report.per_rank_seconds.len(), 4);
            // A healthy in-process world must not flag anyone (the 1 ms
            // absolute floor absorbs scheduler noise on tiny runs).
            assert!(report.is_healthy(), "flagged: {:?}", report.flagged);
        }
    }

    #[test]
    fn serial_run_skips_straggler_scan() {
        let store = tiny_store();
        let res = run_search_serial(&store, &SearchParams::test_defaults()).unwrap();
        assert!(res.stragglers.is_none());
    }

    fn spill_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pastis-pipe-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spill_files(dir: &std::path::Path) -> usize {
        let Ok(ranks) = std::fs::read_dir(dir) else {
            return 0;
        };
        ranks
            .flatten()
            .filter_map(|d| std::fs::read_dir(d.path()).ok())
            .flat_map(|files| files.flatten())
            .filter(|f| f.path().extension().is_some_and(|e| e == "spill"))
            .count()
    }

    #[test]
    fn budgeted_run_spills_and_stays_bit_identical() {
        let store = tiny_store();
        let base_params = SearchParams::test_defaults().with_blocking(3, 3);
        let base = run_search_serial(&store, &base_params).unwrap();

        // Phase 1: a budget too big to pressure anything measures the
        // unconstrained high-water mark.
        let dir = spill_dir("loose");
        let loose = run_search_serial(
            &store,
            &base_params
                .clone()
                .with_mem_budget(1 << 30)
                .with_spill_dir(&dir),
        )
        .unwrap();
        let high = loose.mem_high_water.unwrap();
        assert!(high > 0);
        assert_eq!(graph_bits(&loose), graph_bits(&base), "loose budget");
        assert_eq!(spill_files(&dir), 0, "a loose budget must not spill");
        let _ = std::fs::remove_dir_all(&dir);

        // Phase 2: budgets below the unconstrained peak force spills yet
        // leave the graph bit-identical, with the accounted high-water
        // staying under budget. Budgets can undershoot the irreducible
        // working set (sequences + active stripes + current block) — those
        // runs fail gracefully, naming the phase.
        let mut spilled_and_passed = false;
        for denom in [4u64, 2, 1] {
            let budget = (high * 3) / (denom * 4); // 3/16, 3/8, 3/4 of peak
            if budget == 0 {
                continue;
            }
            let dir = spill_dir(&format!("tight{denom}"));
            let params = base_params
                .clone()
                .with_mem_budget(budget)
                .with_spill_dir(&dir);
            match run_search_serial(&store, &params) {
                Ok(res) => {
                    assert_eq!(graph_bits(&res), graph_bits(&base), "budget {budget}");
                    assert!(
                        res.mem_high_water.unwrap() <= budget,
                        "budget {budget} overshot to {}",
                        res.mem_high_water.unwrap()
                    );
                    if spill_files(&dir) > 0 {
                        spilled_and_passed = true;
                    }
                }
                Err(e) => assert!(e.contains("out of memory in phase"), "{e}"),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert!(
            spilled_and_passed,
            "no tested budget both spilled and completed"
        );
    }

    #[test]
    fn budgeted_run_recovers_from_fully_corrupted_spills() {
        // Every spill write is corrupted in flight: output shards fail
        // their CRC on readback and are recomputed; index-stripe
        // evictions never commit (verified write). The graph must still
        // be bit-identical.
        let store = tiny_store();
        let base_params = SearchParams::test_defaults().with_blocking(3, 3);
        let base = run_search_serial(&store, &base_params).unwrap();
        let dir = spill_dir("loose-crc");
        let high = run_search_serial(
            &store,
            &base_params
                .clone()
                .with_mem_budget(1 << 30)
                .with_spill_dir(&dir),
        )
        .unwrap()
        .mem_high_water
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        let dir = spill_dir("corrupt");
        let plan = pastis_comm::FaultPlan::parse("seed=7,spill_corrupt=1.0").unwrap();
        let params = base_params
            .clone()
            .with_mem_budget((high * 3) / 4)
            .with_spill_dir(&dir)
            .with_spill_faults(plan);
        match run_search_serial(&store, &params) {
            Ok(res) => assert_eq!(graph_bits(&res), graph_bits(&base)),
            // Only a genuine OOM is acceptable (nothing evictable sticks
            // when every write corrupts) — never a wrong graph.
            Err(e) => assert!(e.contains("out of memory in phase"), "{e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distributed_budgeted_matches_unbudgeted() {
        let ds = SyntheticDataset::generate(&SyntheticConfig::small(30, 11));
        let params = SearchParams::test_defaults().with_blocking(3, 3);
        let store = ds.store.clone();
        let want = {
            let serial = run_search_serial(&store, &params).unwrap();
            edges_of(&serial)
        };
        let p = 4usize;
        // Measure each rank's unconstrained peak first.
        let dir = spill_dir("dist-loose");
        let highs = {
            let store = store.clone();
            let params = params.clone().with_mem_budget(1 << 30).with_spill_dir(&dir);
            run_threaded(p, move |c| {
                let grid = ProcessGrid::square(c.split(0, c.rank()));
                let res = run_search(&grid, &store, &params).unwrap();
                res.mem_high_water.unwrap()
            })
        };
        let _ = std::fs::remove_dir_all(&dir);
        let budget = (highs.iter().copied().max().unwrap() * 3) / 4;
        let dir = spill_dir("dist-tight");
        let out = {
            let store = store.clone();
            let dir2 = dir.clone();
            let params = params.clone().with_mem_budget(budget).with_spill_dir(dir2);
            run_threaded(p, move |c| {
                let grid = ProcessGrid::square(c.split(0, c.rank()));
                let res = run_search(&grid, &store, &params).unwrap();
                let global = res.gather_graph(grid.world());
                let keys: Vec<(u32, u32)> = global.edges().iter().map(|e| e.key()).collect();
                (keys, res.mem_high_water.unwrap())
            })
        };
        for (keys, hw) in &out {
            assert_eq!(keys, &want, "budget {budget} changed the graph");
            assert!(*hw <= budget, "rank overshot: {hw} > {budget}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn substitute_kmers_increase_sensitivity() {
        // Two sequences whose only k-mer matches are destroyed by sparse
        // substitutions; substitute k-mers recover the pair.
        let mut store = SeqStore::new();
        store.push("a".into(), encode("MKVLAWYHEEGASTPNQRCD").unwrap());
        store.push("b".into(), encode("MKVIAWYHELGASTPMQRCD").unwrap());
        let strict = SearchParams {
            k: 6,
            common_kmer_threshold: 2,
            ani_threshold: 0.3,
            coverage_threshold: 0.3,
            ..SearchParams::default()
        };
        let plain = run_search_serial(&store, &strict).unwrap();
        let boosted = run_search_serial(
            &store,
            &SearchParams {
                substitute_kmers: 12,
                ..strict
            },
        )
        .unwrap();
        assert!(boosted.stats.candidates >= plain.stats.candidates);
        assert!(
            boosted.stats.aligned_pairs >= plain.stats.aligned_pairs,
            "substitutes did not add candidates"
        );
    }
}
