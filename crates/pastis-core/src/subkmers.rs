//! Substitute k-mers: the m-nearest-neighbor sensitivity option.
//!
//! Section V: "PASTIS has the option to introduce substitute k-mers that
//! are m-nearest neighbors of a k-mer … which can enhance the
//! sensitivity." A k-mer's neighbors are the single-substitution variants
//! ranked by substitution-matrix score; adding the top `m` to the k-mer
//! matrix lets diverged homologs that share no exact k-mer still be
//! discovered by the SpGEMM.

use pastis_align::matrices::{Blosum62, Scoring};
use pastis_seqio::ReducedAlphabet;
use pastis_seqio::SeqStore;
use pastis_sparse::{Index, Triples};

use crate::kmer::{distinct_kmers, kmer_id};

/// The `m` highest-scoring single-substitution neighbors of the k-mer at
/// `seq[pos..pos+k]`, as k-mer ids under `alphabet` (own id excluded,
/// deduplicated, deterministic order: descending score, then ascending
/// id).
pub fn nearest_kmers(
    seq: &[u8],
    pos: usize,
    k: usize,
    alphabet: ReducedAlphabet,
    m: usize,
) -> Vec<u32> {
    if m == 0 || pos + k > seq.len() {
        return Vec::new();
    }
    let window = &seq[pos..pos + k];
    let own = kmer_id(seq, pos, k, alphabet).expect("in range");
    let scoring = Blosum62;
    // Score of the unmodified k-mer against itself.
    let self_score: i32 = window.iter().map(|&c| scoring.score(c, c)).sum();
    let mut candidates: Vec<(i32, u32)> = Vec::with_capacity(k * 19);
    let base = alphabet.size() as u64;
    for (i, &orig) in window.iter().enumerate() {
        // Place value of window position i in the packed base-Σ id; a
        // variant id is the k-mer's own id with that digit swapped — no
        // O(k) re-encoding per variant.
        let place = base.pow((k - 1 - i) as u32);
        let orig_digit = alphabet.reduce(orig) as u64;
        for sub in 0..20u8 {
            if sub == orig {
                continue;
            }
            // Score of the substituted k-mer aligned to the original.
            let score = self_score - scoring.score(orig, orig) + scoring.score(orig, sub);
            let id64 = own as u64 - orig_digit * place + alphabet.reduce(sub) as u64 * place;
            debug_assert!(id64 <= u32::MAX as u64, "variant id overflows u32");
            let id = id64 as u32;
            if id != own {
                candidates.push((score, id));
            }
        }
    }
    // Descending score, ascending id; dedup ids keeping the best score.
    candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let cap = m.min(candidates.len());
    let mut seen = std::collections::HashSet::with_capacity(cap);
    let mut out = Vec::with_capacity(cap);
    for (_, id) in candidates {
        if seen.insert(id) {
            out.push(id);
            if out.len() == m {
                break;
            }
        }
    }
    out
}

/// Build k-mer matrix triples with substitute k-mers: every distinct k-mer
/// contributes its own column plus its `m` nearest neighbors (at the same
/// position). Duplicate (row, column) pairs may occur and must be combined
/// by the caller (keep the smaller position).
pub fn kmer_matrix_triples_with_substitutes(
    store: &SeqStore,
    seq_begin: usize,
    seq_end: usize,
    k: usize,
    alphabet: ReducedAlphabet,
    m: usize,
) -> Triples<u32> {
    assert!(seq_begin <= seq_end && seq_end <= store.len());
    let ncols = alphabet.kmer_space(k);
    let mut t = Triples::new(store.len(), ncols);
    for row in seq_begin..seq_end {
        let seq = store.seq(row);
        for (id, pos) in distinct_kmers(seq, k, alphabet) {
            t.push(row as Index, id as Index, pos);
            for nid in nearest_kmers(seq, pos as usize, k, alphabet, m) {
                t.push(row as Index, nid as Index, pos);
            }
        }
    }
    // Resolve collisions now so downstream code sees clean triples.
    t.combine_duplicates(|a, b| *a = (*a).min(b));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::encode;

    const FULL: ReducedAlphabet = ReducedAlphabet::Full20;

    #[test]
    fn zero_m_yields_nothing() {
        let seq = encode("MKVLAW").unwrap();
        assert!(nearest_kmers(&seq, 0, 4, FULL, 0).is_empty());
    }

    #[test]
    fn neighbors_exclude_self_and_are_distinct() {
        let seq = encode("MKVLAW").unwrap();
        let own = kmer_id(&seq, 0, 4, FULL).unwrap();
        let n = nearest_kmers(&seq, 0, 4, FULL, 10);
        assert_eq!(n.len(), 10);
        assert!(!n.contains(&own));
        let set: std::collections::HashSet<_> = n.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn best_neighbor_substitutes_conservatively() {
        // For "LLLL", the best single substitution is L->I or L->M
        // (BLOSUM62 score 2), never L->P (-3).
        let seq = encode("LLLL").unwrap();
        let n = nearest_kmers(&seq, 0, 4, FULL, 1);
        assert_eq!(n.len(), 1);
        // Decode the neighbor id: base-20 digits.
        let mut id = n[0];
        let mut codes = [0u8; 4];
        for slot in (0..4).rev() {
            codes[slot] = (id % 20) as u8;
            id /= 20;
        }
        let subs: Vec<u8> = codes
            .iter()
            .copied()
            .filter(|&c| c != encode("L").unwrap()[0])
            .collect();
        assert_eq!(subs.len(), 1);
        // I = 9 or M = 12 (both score 2 vs L).
        assert!(subs[0] == 9 || subs[0] == 12, "unexpected sub {}", subs[0]);
    }

    #[test]
    fn place_value_ids_match_reencoding() {
        // The fast path swaps one digit of the packed id; the reference is
        // re-encoding the substituted window. They must agree for every
        // single-substitution variant, including under reduced alphabets
        // where distinct residues share a digit.
        let seq = encode("MKVLAWYHEE").unwrap();
        for alphabet in [ReducedAlphabet::Full20, ReducedAlphabet::Murphy10] {
            for (pos, k) in [(0usize, 6usize), (2, 5), (4, 4)] {
                let window = &seq[pos..pos + k];
                let mut reference = std::collections::HashSet::new();
                let mut variant = window.to_vec();
                for i in 0..k {
                    let orig = window[i];
                    for sub in 0..20u8 {
                        if sub == orig {
                            continue;
                        }
                        variant[i] = sub;
                        reference.insert(kmer_id(&variant, 0, k, alphabet).unwrap());
                    }
                    variant[i] = orig;
                }
                let own = kmer_id(&seq, pos, k, alphabet).unwrap();
                reference.remove(&own);
                let fast: std::collections::HashSet<u32> =
                    nearest_kmers(&seq, pos, k, alphabet, usize::MAX)
                        .into_iter()
                        .collect();
                assert_eq!(fast, reference, "alphabet {alphabet:?}, pos={pos}, k={k}");
            }
        }
    }

    #[test]
    fn deterministic_ordering() {
        let seq = encode("HEAGAW").unwrap();
        let a = nearest_kmers(&seq, 1, 5, FULL, 7);
        let b = nearest_kmers(&seq, 1, 5, FULL, 7);
        assert_eq!(a, b);
        // Prefix property: top-3 is a prefix of top-7.
        let c = nearest_kmers(&seq, 1, 5, FULL, 3);
        assert_eq!(&a[..3], c.as_slice());
    }

    #[test]
    fn substitutes_connect_diverged_kmers() {
        // Two sequences differing by one conservative substitution share
        // no exact 6-mer but do share one after expansion.
        let mut store = SeqStore::new();
        store.push("a".into(), encode("MKVLAW").unwrap());
        store.push("b".into(), encode("MKVIAW").unwrap()); // L -> I
        let exact = kmer_matrix_triples_with_substitutes(&store, 0, 2, 6, FULL, 0);
        let expanded = kmer_matrix_triples_with_substitutes(&store, 0, 2, 6, FULL, 8);
        let shared = |t: &Triples<u32>| {
            let mut by_col = std::collections::HashMap::new();
            for e in &t.entries {
                by_col
                    .entry(e.col)
                    .or_insert_with(std::collections::HashSet::new)
                    .insert(e.row);
            }
            by_col.values().filter(|rows| rows.len() == 2).count()
        };
        assert_eq!(shared(&exact), 0);
        assert!(
            shared(&expanded) >= 1,
            "expansion failed to connect L/I variants"
        );
    }

    #[test]
    fn expansion_grows_matrix_monotonically() {
        let mut store = SeqStore::new();
        store.push("a".into(), encode("MKVLAWYHEE").unwrap());
        let base = kmer_matrix_triples_with_substitutes(&store, 0, 1, 5, FULL, 0);
        let m2 = kmer_matrix_triples_with_substitutes(&store, 0, 1, 5, FULL, 2);
        let m5 = kmer_matrix_triples_with_substitutes(&store, 0, 1, 5, FULL, 5);
        assert!(base.nnz() < m2.nnz());
        assert!(m2.nnz() <= m5.nnz());
    }
}
