//! Markov clustering (MCL) of the similarity graph.
//!
//! The paper's motivating workflow is "many-against-many search … often
//! followed by clustering of sequences"; at scale the consumer of PASTIS's
//! similarity graph is HipMCL, the distributed Markov Cluster algorithm —
//! itself built on the same CombBLAS SpGEMM primitives. This module closes
//! that loop with a single-node MCL over the crate's own sparse substrate:
//!
//! 1. **Expansion** — squaring the column-stochastic matrix (semiring
//!    SpGEMM, [`pastis_sparse::spgemm_hash`]);
//! 2. **Inflation** — element-wise powering + column re-normalization,
//!    sharpening strong connections;
//! 3. **Pruning** — dropping entries below a threshold to keep the matrix
//!    sparse (HipMCL's "selective pruning").
//!
//! Iterated to (near-)convergence, columns concentrate on "attractor"
//! rows; vertices sharing attractors form clusters.

use pastis_sparse::{spgemm_hash, CsrMatrix, PlusTimes, Triples};

use crate::simgraph::SimilarityGraph;

/// MCL parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MclParams {
    /// Inflation exponent (the granularity knob; MCL default is 2.0 —
    /// higher splits finer).
    pub inflation: f64,
    /// Entries below this value are pruned after each iteration.
    pub prune_threshold: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the max entry change.
    pub tolerance: f64,
}

impl Default for MclParams {
    fn default() -> MclParams {
        MclParams {
            inflation: 2.0,
            prune_threshold: 1.0e-4,
            max_iters: 60,
            tolerance: 1.0e-6,
        }
    }
}

/// Build the initial column-stochastic matrix from a similarity graph:
/// symmetric weights (the edge ANI), self-loops (MCL's standard trick to
/// damp odd-cycle oscillation), columns normalized to sum 1.
fn stochastic_from_graph(graph: &SimilarityGraph) -> CsrMatrix<f64> {
    let n = graph.n_vertices();
    let mut t = Triples::new(n, n);
    for v in 0..n as u32 {
        t.push(v, v, 1.0);
    }
    for e in graph.edges() {
        let w = e.ani.max(1.0e-3) as f64;
        t.push(e.i, e.j, w);
        t.push(e.j, e.i, w);
    }
    normalize_columns(CsrMatrix::from_triples_combining(t, |a, b| *a += b))
}

/// Normalize each column to sum 1 (column-stochastic).
fn normalize_columns(m: CsrMatrix<f64>) -> CsrMatrix<f64> {
    let mut colsum = vec![0.0f64; m.ncols()];
    for (_, j, v) in m.iter() {
        colsum[j as usize] += *v;
    }
    let mut t = Triples::new(m.nrows(), m.ncols());
    for (i, j, v) in m.iter() {
        let s = colsum[j as usize];
        if s > 0.0 {
            t.push(i, j, v / s);
        }
    }
    CsrMatrix::from_triples(t)
}

/// Inflation: element-wise power then column normalization, with pruning.
fn inflate(m: &CsrMatrix<f64>, inflation: f64, prune: f64) -> CsrMatrix<f64> {
    let powed = m.map(|v| v.powf(inflation));
    let normalized = normalize_columns(powed);
    let pruned = normalized.prune(|_, _, v| *v >= prune);
    // Re-normalize after pruning so columns stay stochastic.
    normalize_columns(pruned)
}

/// Largest element-wise difference between two same-pattern-ish matrices
/// (union pattern, missing entries treated as 0).
fn max_delta(a: &CsrMatrix<f64>, b: &CsrMatrix<f64>) -> f64 {
    let mut delta = 0.0f64;
    for (i, j, v) in a.iter() {
        let other = b.get(i as usize, j as usize).copied().unwrap_or(0.0);
        delta = delta.max((v - other).abs());
    }
    for (i, j, v) in b.iter() {
        if a.get(i as usize, j as usize).is_none() {
            delta = delta.max(v.abs());
        }
    }
    delta
}

/// Outcome of an MCL run.
#[derive(Debug, Clone)]
pub struct MclResult {
    /// Cluster label per vertex (labels are attractor vertex ids).
    pub labels: Vec<u32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iters`.
    pub converged: bool,
}

impl MclResult {
    /// Cluster sizes, descending, singletons included.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut counts = std::collections::HashMap::new();
        for &l in &self.labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<usize> = counts.into_values().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// Run MCL on a similarity graph.
pub fn mcl(graph: &SimilarityGraph, params: &MclParams) -> MclResult {
    let n = graph.n_vertices();
    if n == 0 {
        return MclResult {
            labels: Vec::new(),
            iterations: 0,
            converged: true,
        };
    }
    let mut m = stochastic_from_graph(graph);
    let mut iterations = 0;
    let mut converged = false;
    while iterations < params.max_iters {
        iterations += 1;
        // Expansion: M ← M·M (flow through length-2 walks).
        let (expanded, _) = spgemm_hash(&PlusTimes::<f64>::new(), &m, &m);
        // Inflation + pruning.
        let next = inflate(&expanded, params.inflation, params.prune_threshold);
        let delta = max_delta(&next, &m);
        m = next;
        if delta < params.tolerance {
            converged = true;
            break;
        }
    }
    // Interpretation: vertex j belongs to the attractor with the largest
    // flow in column j. (Classic MCL reads clusters off the rows of the
    // limit matrix; arg-max per column is the standard robust extraction.)
    let mut best: Vec<(f64, u32)> = vec![(-1.0, 0); n];
    for (i, j, v) in m.iter() {
        let j = j as usize;
        if *v > best[j].0 {
            best[j] = (*v, i);
        }
    }
    // Canonicalize labels: attractors label themselves; two vertices with
    // the same attractor share a cluster. Vertices with no flow (isolated
    // after pruning) become their own attractor.
    let labels: Vec<u32> = best
        .iter()
        .enumerate()
        .map(|(j, &(w, a))| if w <= 0.0 { j as u32 } else { a })
        .collect();
    MclResult {
        labels,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simgraph::SimilarityEdge;

    fn edge(i: u32, j: u32, ani: f32) -> SimilarityEdge {
        SimilarityEdge {
            i,
            j,
            score: 100,
            ani,
            coverage: 0.9,
            common_kmers: 5,
        }
    }

    fn two_cliques() -> SimilarityGraph {
        // {0,1,2} and {3,4,5}, no cross edges.
        let mut g = SimilarityGraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add(edge(a, b, 0.9));
        }
        g
    }

    #[test]
    fn separates_disconnected_cliques() {
        let r = mcl(&two_cliques(), &MclParams::default());
        assert!(r.converged, "did not converge in {} iters", r.iterations);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[1], r.labels[2]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_eq!(r.labels[4], r.labels[5]);
        assert_ne!(r.labels[0], r.labels[3]);
        assert_eq!(r.cluster_sizes(), vec![3, 3]);
    }

    #[test]
    fn splits_weakly_bridged_cliques() {
        // Two tight cliques joined by one weak edge: connected components
        // would merge them; MCL with inflation splits them.
        let mut g = two_cliques();
        g.add(edge(2, 3, 0.05));
        let cc_clusters = g.cluster_sizes();
        assert_eq!(cc_clusters, vec![6], "CC should see one component");
        let r = mcl(
            &g,
            &MclParams {
                inflation: 2.5,
                ..MclParams::default()
            },
        );
        assert_eq!(
            r.cluster_sizes(),
            vec![3, 3],
            "MCL failed to cut the weak bridge (labels {:?})",
            r.labels
        );
    }

    #[test]
    fn singletons_stay_single() {
        // A triangle plus two isolated vertices. (A bare 2-clique with
        // unit self-loops is a known MCL edge case that can split — the
        // diagonal dominates after inflation — so the connected part here
        // is a triangle.)
        let mut g = SimilarityGraph::new(5);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            g.add(edge(a, b, 0.9));
        }
        let r = mcl(&g, &MclParams::default());
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[1], r.labels[2]);
        // 3 and 4 are isolated: their own attractors.
        assert_ne!(r.labels[3], r.labels[0]);
        assert_ne!(r.labels[4], r.labels[3]);
    }

    #[test]
    fn empty_graph() {
        let r = mcl(&SimilarityGraph::new(0), &MclParams::default());
        assert!(r.labels.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn higher_inflation_never_coarsens() {
        // A path graph: low inflation keeps it together, high splits it.
        let mut g = SimilarityGraph::new(8);
        for i in 0..7u32 {
            g.add(edge(i, i + 1, 0.8));
        }
        let coarse = mcl(
            &g,
            &MclParams {
                inflation: 1.4,
                ..MclParams::default()
            },
        );
        let fine = mcl(
            &g,
            &MclParams {
                inflation: 3.0,
                ..MclParams::default()
            },
        );
        let n_coarse = coarse.cluster_sizes().len();
        let n_fine = fine.cluster_sizes().len();
        assert!(
            n_fine >= n_coarse,
            "inflation 3.0 gave {n_fine} clusters vs {n_coarse} at 1.4"
        );
    }

    #[test]
    fn stochastic_construction_normalizes() {
        let g = two_cliques();
        let m = stochastic_from_graph(&g);
        let mut colsum = [0.0; 6];
        for (_, j, v) in m.iter() {
            colsum[j as usize] += *v;
        }
        for (j, s) in colsum.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-12, "column {j} sums to {s}");
        }
    }
}
