//! The persistent sharded k-mer index behind `pastis index build` and
//! `pastis serve`.
//!
//! The batch pipeline forms `C = A·Aᵀ` from scratch on every run. The
//! serving path splits that work: `build_index` constructs the reference
//! side **once** — the compacted k-mer matrix `B = Aᵀ` (k-mers × refs,
//! values are first k-mer positions, exactly the operand the batch SUMMA
//! multiplies) — and persists it as column stripes in the CRC-framed
//! `PASTIS-IDX 1` shard format from [`crate::checkpoint`], plus one
//! manifest binding the shards to the build parameters and the reference
//! set. [`PersistedIndex::open`] reloads the manifest and the reference
//! sequences, re-verifying every frame, so a query batch only has to form
//! its own small `A_query` and multiply against the loaded stripes.
//!
//! Identity is defended in layers, mirroring the checkpoint family:
//!
//! * every file (manifest, shard, `refs.fasta` via its digest line) is
//!   covered by a CRC32 trailer → torn or bit-flipped files are rejected
//!   with a typed error, never parsed into garbage;
//! * the manifest records the *output-relevant* build parameters
//!   (`k`, alphabet, substitute k-mers) and a digest of the reference
//!   store; shards carry the same [`index_fingerprint`] → a stale index
//!   (different parameters or references) refuses to serve with a clear
//!   message instead of silently answering from the wrong matrix;
//! * shard CSR invariants are re-validated on load (via
//!   [`IndexShard::parse`]) so even a CRC-colliding forgery yields `Err`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use pastis_comm::fault::crc32;
use pastis_seqio::fasta::write_fasta;
use pastis_seqio::{FastaStream, ReducedAlphabet, SeqStore};
use pastis_sparse::{csr_payload_bytes, CsrMatrix, Triple, Triples};
use pastis_trace::{names, span, Component, Recorder};

use crate::checkpoint::{digest_bytes, digest_u64, write_atomic, IndexShard};
use crate::kmer::kmer_matrix_triples;
use crate::membudget::MemBudget;
use crate::subkmers::kmer_matrix_triples_with_substitutes;

/// Schema version of the index manifest format.
pub const INDEX_MANIFEST_SCHEMA_VERSION: u32 = 1;

/// Largest record accepted when reloading `refs.fasta` (matches the CLI's
/// input bound).
const RECORD_BOUND: usize = 1 << 30;

/// Content digest of a sequence store: length, every id, every encoded
/// sequence. Binds `refs.fasta` to the shards and detects self-serving
/// (query stream == reference set) deterministically.
pub fn store_digest(store: &SeqStore) -> u64 {
    let mut h = 0x5041_5354_4953_2d53u64; // "PASTIS-S"
    h = digest_u64(h, store.len() as u64);
    for i in 0..store.len() {
        h = digest_bytes(h, store.id(i).as_bytes());
        h = digest_bytes(h, store.seq(i));
    }
    h
}

/// Identity of a persisted index: the output-relevant build parameters
/// plus the reference store digest. Serving-time knobs (thresholds,
/// alignment kind, threads, SIMD backend, kernels) are deliberately
/// excluded — they are query-time choices and never change what the
/// index *is*, exactly as [`crate::checkpoint::run_fingerprint`] excludes
/// wall-time-only knobs.
pub fn index_fingerprint(
    k: usize,
    alphabet: ReducedAlphabet,
    substitute_kmers: usize,
    store: &SeqStore,
) -> u64 {
    let mut h = 0x5041_5354_4953_2d49u64; // "PASTIS-I"
    h = digest_u64(h, k as u64);
    h = digest_bytes(h, alphabet_name(alphabet).as_bytes());
    h = digest_u64(h, substitute_kmers as u64);
    digest_u64(h, store_digest(store))
}

/// The CLI spelling of an alphabet (stable across `Debug` renames).
pub fn alphabet_name(a: ReducedAlphabet) -> &'static str {
    match a {
        ReducedAlphabet::Full20 => "full20",
        ReducedAlphabet::Murphy10 => "murphy10",
        ReducedAlphabet::Dayhoff6 => "dayhoff6",
    }
}

/// Inverse of [`alphabet_name`].
pub fn alphabet_from_name(s: &str) -> Result<ReducedAlphabet, String> {
    match s {
        "full20" => Ok(ReducedAlphabet::Full20),
        "murphy10" => Ok(ReducedAlphabet::Murphy10),
        "dayhoff6" => Ok(ReducedAlphabet::Dayhoff6),
        other => Err(format!("unknown alphabet in index manifest: {other:?}")),
    }
}

/// The manifest tying an index directory together: schema-versioned,
/// CRC-framed, hand-rolled text like the whole checkpoint family.
///
/// ```text
/// PASTIS-IDXMAN 1
/// fingerprint <hex16>
/// params <k> <alphabet> <substitute-kmers>
/// refs <n_refs> <store-digest hex16>
/// stripes <n_stripes> <stripe_cols>
/// colmap <len> <id0> <id1> ...
/// end <crc32-hex>
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexManifest {
    /// Index identity ([`index_fingerprint`]); every shard carries it too.
    pub fingerprint: u64,
    /// k-mer length the matrix was built with.
    pub k: usize,
    /// Reduced alphabet the matrix was built with.
    pub alphabet: ReducedAlphabet,
    /// Substitute k-mers per position (0 = exact k-mers only).
    pub substitute_kmers: usize,
    /// Reference sequence count (columns of `B`).
    pub n_refs: usize,
    /// [`store_digest`] of the reference store (`refs.fasta` must match).
    pub refs_digest: u64,
    /// Reference columns per stripe (the last stripe may be narrower).
    pub stripe_cols: usize,
    /// Stripe count (`ceil(n_refs / stripe_cols)`).
    pub n_stripes: usize,
    /// Sorted distinct k-mer ids of the reference matrix: the compacted
    /// inner dimension, identical to the batch pipeline's collective
    /// column compaction. Query k-mers are remapped through it by binary
    /// search; ids absent here cannot match any reference and are dropped.
    pub col_map: Vec<u32>,
}

impl IndexManifest {
    /// The compacted inner dimension (`col_map.len().max(1)`), the row
    /// count of every `B` stripe.
    pub fn inner_dim(&self) -> usize {
        self.col_map.len().max(1)
    }

    /// Column range `[lo, hi)` of stripe `s` in global reference ids.
    pub fn stripe_range(&self, s: usize) -> (usize, usize) {
        let lo = s * self.stripe_cols;
        (lo, (lo + self.stripe_cols).min(self.n_refs))
    }

    /// Serialize to the schema-v1 text format (CRC trailer included).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(96 + self.col_map.len() * 8);
        let _ = writeln!(s, "PASTIS-IDXMAN {INDEX_MANIFEST_SCHEMA_VERSION}");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(
            s,
            "params {} {} {}",
            self.k,
            alphabet_name(self.alphabet),
            self.substitute_kmers
        );
        let _ = writeln!(s, "refs {} {:016x}", self.n_refs, self.refs_digest);
        let _ = writeln!(s, "stripes {} {}", self.n_stripes, self.stripe_cols);
        let _ = write!(s, "colmap {}", self.col_map.len());
        for c in &self.col_map {
            let _ = write!(s, " {c}");
        }
        s.push('\n');
        let crc = crc32(s.as_bytes());
        let _ = writeln!(s, "end {crc:08x}");
        s
    }

    /// Parse, CRC-check, and structurally validate a schema-v1 manifest.
    ///
    /// # Errors
    ///
    /// Any truncation, bit flip, version skew, or structural violation
    /// (unsorted column map, inconsistent stripe arithmetic) is an `Err`.
    pub fn parse(text: &str) -> Result<IndexManifest, String> {
        let body_end = text
            .rfind("end ")
            .ok_or_else(|| "index manifest missing end trailer".to_string())?;
        let trailer = text[body_end..].strip_prefix("end ").unwrap().trim();
        let want_crc = u32::from_str_radix(trailer, 16)
            .map_err(|_| format!("bad index manifest crc trailer: {trailer:?}"))?;
        let body = &text[..body_end];
        let got_crc = crc32(body.as_bytes());
        if got_crc != want_crc {
            return Err(format!(
                "index manifest crc mismatch: file says {want_crc:08x}, content is {got_crc:08x}"
            ));
        }

        let mut lines = body.lines();
        let magic = lines.next().unwrap_or_default();
        let version: u32 = magic
            .strip_prefix("PASTIS-IDXMAN ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad index manifest magic: {magic:?}"))?;
        if version != INDEX_MANIFEST_SCHEMA_VERSION {
            return Err(format!(
                "unsupported index manifest schema version {version} \
                 (this build reads {INDEX_MANIFEST_SCHEMA_VERSION})"
            ));
        }

        fn keyed<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
            let line = line.ok_or_else(|| format!("index manifest truncated before {key:?}"))?;
            line.strip_prefix(key)
                .ok_or_else(|| format!("expected {key:?} line, got {line:?}"))
        }

        let fingerprint = u64::from_str_radix(keyed(lines.next(), "fingerprint ")?.trim(), 16)
            .map_err(|_| "bad fingerprint in index manifest".to_string())?;

        let mut it = keyed(lines.next(), "params ")?.split_whitespace();
        let k: usize = it
            .next()
            .ok_or("index manifest params line missing k")?
            .parse()
            .map_err(|_| "bad k in index manifest".to_string())?;
        let alphabet = alphabet_from_name(
            it.next()
                .ok_or("index manifest params line missing alphabet")?,
        )?;
        let substitute_kmers: usize = it
            .next()
            .ok_or("index manifest params line missing substitute-kmers")?
            .parse()
            .map_err(|_| "bad substitute-kmers in index manifest".to_string())?;

        let mut it = keyed(lines.next(), "refs ")?.split_whitespace();
        let n_refs: usize = it
            .next()
            .ok_or("index manifest refs line missing count")?
            .parse()
            .map_err(|_| "bad reference count in index manifest".to_string())?;
        let refs_digest = u64::from_str_radix(
            it.next().ok_or("index manifest refs line missing digest")?,
            16,
        )
        .map_err(|_| "bad reference digest in index manifest".to_string())?;

        let mut it = keyed(lines.next(), "stripes ")?.split_whitespace();
        let n_stripes: usize = it
            .next()
            .ok_or("index manifest stripes line missing count")?
            .parse()
            .map_err(|_| "bad stripe count in index manifest".to_string())?;
        let stripe_cols: usize = it
            .next()
            .ok_or("index manifest stripes line missing width")?
            .parse()
            .map_err(|_| "bad stripe width in index manifest".to_string())?;

        let mut it = keyed(lines.next(), "colmap ")?.split_whitespace();
        let n_cols: usize = it
            .next()
            .ok_or("index manifest colmap line missing length")?
            .parse()
            .map_err(|_| "bad colmap length in index manifest".to_string())?;
        let col_map: Vec<u32> = it
            .map(|t| {
                t.parse()
                    .map_err(|_| format!("bad colmap entry in index manifest: {t:?}"))
            })
            .collect::<Result<_, _>>()?;
        if lines.next().is_some() {
            return Err("trailing lines in index manifest".to_string());
        }

        // Structural invariants: even a CRC-colliding forgery must come
        // out as Err, never poison downstream binary searches.
        if col_map.len() != n_cols {
            return Err(format!(
                "index manifest colmap says {n_cols} entries, got {}",
                col_map.len()
            ));
        }
        if col_map.windows(2).any(|w| w[0] >= w[1]) {
            return Err("index manifest colmap not strictly increasing".to_string());
        }
        if k == 0 || k > 12 {
            return Err(format!("index manifest k {k} out of range (1..=12)"));
        }
        if n_refs == 0 || stripe_cols == 0 {
            return Err("index manifest has empty reference set or zero stripe width".to_string());
        }
        if n_stripes != n_refs.div_ceil(stripe_cols) {
            return Err(format!(
                "index manifest stripe arithmetic inconsistent: \
                 {n_stripes} stripes of {stripe_cols} cols for {n_refs} refs"
            ));
        }
        Ok(IndexManifest {
            fingerprint,
            k,
            alphabet,
            substitute_kmers,
            n_refs,
            refs_digest,
            stripe_cols,
            n_stripes,
            col_map,
        })
    }
}

/// Path of the manifest inside an index directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("index.manifest")
}

/// Path of stripe `s`'s shard inside an index directory.
pub fn shard_path(dir: &Path, stripe: usize) -> PathBuf {
    dir.join(format!("shard_b{stripe:04}.idx"))
}

/// Path of the persisted reference sequences inside an index directory.
pub fn refs_path(dir: &Path) -> PathBuf {
    dir.join("refs.fasta")
}

/// Build-time knobs for [`build_index`].
#[derive(Debug, Clone)]
pub struct IndexBuildConfig {
    /// k-mer length (1..=12, with the k-mer space fitting `u32`).
    pub k: usize,
    /// Reduced alphabet.
    pub alphabet: ReducedAlphabet,
    /// Substitute k-mers per position (0 = exact only).
    pub substitute_kmers: usize,
    /// Reference columns per persisted stripe.
    pub stripe_cols: usize,
    /// Optional hard byte budget for the build (PR 8 accountant): the
    /// build charges each phase and streams stripes out one at a time, so
    /// the budget bounds peak live bytes; an unsatisfiable phase fails
    /// with a typed error naming it.
    pub mem_budget: Option<u64>,
}

impl Default for IndexBuildConfig {
    fn default() -> IndexBuildConfig {
        IndexBuildConfig {
            k: 4,
            alphabet: ReducedAlphabet::Full20,
            substitute_kmers: 0,
            stripe_cols: 512,
            mem_budget: None,
        }
    }
}

/// What [`build_index`] wrote.
#[derive(Debug, Clone)]
pub struct IndexBuildReport {
    /// The manifest as persisted.
    pub manifest: IndexManifest,
    /// Total bytes of shard text written.
    pub shard_bytes: u64,
    /// Nonzeros of the reference matrix.
    pub nnz: u64,
    /// Peak accounted live bytes during the build.
    pub mem_high_water: u64,
}

/// Construct the reference k-mer matrix once and persist it as versioned,
/// CRC'd, fingerprint-bound column stripes plus a manifest and the
/// reference sequences themselves.
///
/// The matrix is built exactly as the batch pipeline builds its SUMMA
/// operand: triples of first k-mer positions, collectively-compacted
/// column space (here trivially collective — one builder), transpose, so
/// a serve-side `A_query × B_stripe` SpGEMM reproduces the batch overlap
/// values bit-for-bit.
///
/// # Errors
///
/// Invalid parameters, an empty reference set, I/O failures, and memory
/// budget exhaustion (typed, naming the phase) all return `Err`.
pub fn build_index(
    store: &SeqStore,
    cfg: &IndexBuildConfig,
    dir: &Path,
    recorder: &Recorder,
) -> Result<IndexBuildReport, String> {
    if cfg.k == 0 || cfg.k > 12 {
        return Err(format!("index build k {} out of range (1..=12)", cfg.k));
    }
    if cfg.alphabet.kmer_space(cfg.k) > u32::MAX as usize {
        return Err(format!(
            "k-mer space for k={} over {} does not fit u32 ids",
            cfg.k,
            alphabet_name(cfg.alphabet)
        ));
    }
    if cfg.stripe_cols == 0 {
        return Err("index build stripe width must be at least 1".to_string());
    }
    if store.is_empty() {
        return Err("index build requires a non-empty reference set".to_string());
    }

    let mut build_span = span!(recorder, Component::SparseOther, names::SPAN_INDEX_BUILD);
    let budget = MemBudget::new(cfg.mem_budget);
    let n = store.len();
    let fingerprint = index_fingerprint(cfg.k, cfg.alphabet, cfg.substitute_kmers, store);

    // 1. Triples of first k-mer positions — the batch pipeline's recipe.
    let a: Triples<u32> = if cfg.substitute_kmers > 0 {
        kmer_matrix_triples_with_substitutes(store, 0, n, cfg.k, cfg.alphabet, cfg.substitute_kmers)
    } else {
        kmer_matrix_triples(store, 0, n, cfg.k, cfg.alphabet)
    };
    let triple_bytes = (a.entries.len() * std::mem::size_of::<Triple<u32>>()) as u64;
    budget
        .reserve("index k-mer triples", triple_bytes)
        .map_err(|e| e.to_string())?;

    // 2. Column compaction: sorted distinct k-mer ids, the same remap the
    // batch pipeline gathers collectively (one builder ⇒ local sort).
    let mut col_map: Vec<u32> = a.entries.iter().map(|e| e.col).collect();
    col_map.sort_unstable();
    col_map.dedup();
    let inner_dim = col_map.len().max(1);
    let mut compact = Triples::new(n, inner_dim);
    for e in &a.entries {
        let col = col_map.binary_search(&e.col).expect("k-mer id present") as u32;
        compact.push(e.row, col, e.val);
    }
    budget
        .reserve("index compacted triples", triple_bytes)
        .map_err(|e| e.to_string())?;
    drop(a);
    budget.release(triple_bytes);

    // 3. CSR + transpose: `B = Aᵀ` (inner_dim × n_refs), duplicate
    // (row, k-mer) entries collapsed to the *first* position — the same
    // keep-min combine the SUMMA operand uses.
    let keep_min = |acc: &mut u32, inc: u32| {
        if inc < *acc {
            *acc = inc;
        }
    };
    let a_csr = CsrMatrix::from_triples_combining(compact, keep_min);
    let nnz = a_csr.nnz();
    let csr_bytes = csr_payload_bytes(n, nnz, 4) as u64;
    budget
        .reserve("index CSR", csr_bytes)
        .map_err(|e| e.to_string())?;
    budget.release(triple_bytes);
    let bt = a_csr.transpose();
    let bt_bytes = csr_payload_bytes(inner_dim, nnz, 4) as u64;
    budget
        .reserve("index transpose", bt_bytes)
        .map_err(|e| e.to_string())?;
    drop(a_csr);
    budget.release(csr_bytes);

    // 4. Stream the column stripes to disk one at a time: only one stripe
    // buffer is ever live on top of `B`, so `--mem-budget` bounds the
    // build's peak instead of the whole shard set.
    let n_stripes = n.div_ceil(cfg.stripe_cols);
    let mut shard_bytes = 0u64;
    for s in 0..n_stripes {
        let lo = s * cfg.stripe_cols;
        let hi = (lo + cfg.stripe_cols).min(n);
        let stripe = bt.extract_cols(lo, hi);
        let stripe_bytes = csr_payload_bytes(stripe.nrows(), stripe.nnz(), 4) as u64;
        budget
            .reserve("index stripe buffer", stripe_bytes)
            .map_err(|e| e.to_string())?;
        let (nrows, ncols, rowptr, cols, vals) = stripe.into_parts();
        let shard = IndexShard {
            fingerprint,
            rank: 0,
            is_a: false,
            stripe: s,
            nrows,
            ncols,
            rowptr,
            cols,
            vals,
        };
        let text = shard.to_text();
        shard_bytes += text.len() as u64;
        write_atomic(&shard_path(dir, s), &text)?;
        budget.release(stripe_bytes);
    }
    budget.release(bt_bytes);
    drop(bt);

    // 5. The reference sequences (alignment needs the residues at serve
    // time) and, last, the manifest — a directory without a valid
    // manifest is not an index, so a torn build can never be opened.
    let records = store.to_records();
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &records, 60).map_err(|e| format!("rendering refs.fasta: {e}"))?;
    let fasta = String::from_utf8(fasta).map_err(|_| "reference ids are not UTF-8".to_string())?;
    write_atomic(&refs_path(dir), &fasta)?;

    let manifest = IndexManifest {
        fingerprint,
        k: cfg.k,
        alphabet: cfg.alphabet,
        substitute_kmers: cfg.substitute_kmers,
        n_refs: n,
        refs_digest: store_digest(store),
        stripe_cols: cfg.stripe_cols,
        n_stripes,
        col_map,
    };
    write_atomic(&manifest_path(dir), &manifest.to_text())?;
    build_span.push_arg("nnz", nnz as u64);
    build_span.push_arg("stripes", n_stripes as u64);
    Ok(IndexBuildReport {
        manifest,
        shard_bytes,
        nnz: nnz as u64,
        mem_high_water: budget.high_water(),
    })
}

/// An opened index directory: verified manifest plus the reloaded (and
/// digest-checked) reference store. Stripes are loaded on demand via
/// [`PersistedIndex::load_stripe`].
#[derive(Debug)]
pub struct PersistedIndex {
    /// The directory the index lives in.
    pub dir: PathBuf,
    /// The verified manifest.
    pub manifest: IndexManifest,
    /// The reference sequences, digest-bound to the manifest.
    pub refs: SeqStore,
}

impl PersistedIndex {
    /// Open an index directory: parse + CRC-check the manifest, reload
    /// `refs.fasta`, and verify its digest against the manifest.
    ///
    /// # Errors
    ///
    /// Missing or corrupt files, and a reference set that no longer
    /// matches the manifest digest, are typed errors.
    pub fn open(dir: &Path) -> Result<PersistedIndex, String> {
        let mpath = manifest_path(dir);
        let text = std::fs::read_to_string(&mpath)
            .map_err(|e| format!("reading index manifest {}: {e}", mpath.display()))?;
        let manifest = IndexManifest::parse(&text)
            .map_err(|e| format!("index manifest {}: {e}", mpath.display()))?;
        let rpath = refs_path(dir);
        let file = std::fs::File::open(&rpath)
            .map_err(|e| format!("opening index references {}: {e}", rpath.display()))?;
        let stream =
            FastaStream::new(std::io::BufReader::new(file)).with_record_bound(RECORD_BOUND);
        let refs = SeqStore::from_fasta_stream(stream)
            .map_err(|e| format!("parsing index references {}: {e}", rpath.display()))?;
        if refs.len() != manifest.n_refs || store_digest(&refs) != manifest.refs_digest {
            return Err(format!(
                "index references {} do not match the manifest digest \
                 (the index directory was modified after the build; rebuild it)",
                rpath.display()
            ));
        }
        Ok(PersistedIndex {
            dir: dir.to_path_buf(),
            manifest,
            refs,
        })
    }

    /// Refuse to serve with parameters the index was not built for. The
    /// serving SpGEMM is only meaningful over the k-mer space the index
    /// was built in, so a mismatch is an error, never a silent answer.
    ///
    /// # Errors
    ///
    /// Names both the persisted and the requested parameter set.
    pub fn check_params(
        &self,
        k: usize,
        alphabet: ReducedAlphabet,
        substitute_kmers: usize,
    ) -> Result<(), String> {
        let m = &self.manifest;
        if k != m.k || alphabet != m.alphabet || substitute_kmers != m.substitute_kmers {
            return Err(format!(
                "stale index: {} was built with k={} alphabet={} substitute-kmers={}, \
                 but serving requested k={} alphabet={} substitute-kmers={}; \
                 rebuild with `pastis index build` or drop the conflicting flags",
                self.dir.display(),
                m.k,
                alphabet_name(m.alphabet),
                m.substitute_kmers,
                k,
                alphabet_name(alphabet),
                substitute_kmers
            ));
        }
        Ok(())
    }

    /// Load stripe `s`: read its shard, CRC-check, re-validate the CSR
    /// invariants, and verify it is *this* index's stripe `s` (fingerprint,
    /// side, stripe number, dimensions all bound by the manifest).
    ///
    /// # Errors
    ///
    /// Corrupt, foreign, or mis-shaped shards are typed errors.
    pub fn load_stripe(&self, s: usize) -> Result<CsrMatrix<u32>, String> {
        let path = shard_path(&self.dir, s);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading index shard {}: {e}", path.display()))?;
        let shard =
            IndexShard::parse(&text).map_err(|e| format!("index shard {}: {e}", path.display()))?;
        let (lo, hi) = self.manifest.stripe_range(s);
        if shard.fingerprint != self.manifest.fingerprint {
            return Err(format!(
                "index shard {} belongs to a different index build \
                 (fingerprint {:016x}, manifest {:016x}); rebuild the index",
                path.display(),
                shard.fingerprint,
                self.manifest.fingerprint
            ));
        }
        if shard.is_a
            || shard.stripe != s
            || shard.nrows != self.manifest.inner_dim()
            || shard.ncols != hi - lo
        {
            return Err(format!(
                "index shard {} is not stripe {s} of this index \
                 (side/stripe/dims disagree with the manifest)",
                path.display()
            ));
        }
        Ok(CsrMatrix::from_parts(
            shard.nrows,
            shard.ncols,
            shard.rowptr,
            shard.cols,
            shard.vals,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::encode;

    fn tiny_store() -> SeqStore {
        let mut s = SeqStore::new();
        for (i, q) in [
            "MKVLAWYHEEMKVLAWYHEE",
            "MKVLAWYHEEMKVLAWYHEA",
            "GGSTPNQRCDGGSTPNQRCD",
            "GGSTPNQRCDGGSTPNQRCE",
            "WPWPWPWPWPWPWPWPWPWP",
        ]
        .iter()
        .enumerate()
        {
            s.push(format!("s{i}"), encode(q).unwrap());
        }
        s
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pastis-index-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn manifest_round_trips_bit_identically() {
        let m = IndexManifest {
            fingerprint: 0xdead_beef_0123_4567,
            k: 4,
            alphabet: ReducedAlphabet::Murphy10,
            substitute_kmers: 2,
            n_refs: 7,
            refs_digest: 0x0123_4567_89ab_cdef,
            stripe_cols: 3,
            n_stripes: 3,
            col_map: vec![1, 5, 9, 1000],
        };
        let text = m.to_text();
        let back = IndexManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn manifest_rejects_corruption_and_skew() {
        let m = IndexManifest {
            fingerprint: 1,
            k: 4,
            alphabet: ReducedAlphabet::Full20,
            substitute_kmers: 0,
            n_refs: 5,
            refs_digest: 2,
            stripe_cols: 2,
            n_stripes: 3,
            col_map: vec![3, 4],
        };
        let text = m.to_text();
        // Bit flip in the body.
        let flipped = text.replacen("refs 5", "refs 6", 1);
        assert!(IndexManifest::parse(&flipped).unwrap_err().contains("crc"));
        // Truncation.
        assert!(IndexManifest::parse(&text[..text.len() / 2]).is_err());
        // Version skew (CRC re-framed so the version check itself fires).
        let body = text.replacen("PASTIS-IDXMAN 1", "PASTIS-IDXMAN 9", 1);
        let body = &body[..body.rfind("end ").unwrap()];
        let reframed = format!("{body}end {:08x}\n", crc32(body.as_bytes()));
        assert!(IndexManifest::parse(&reframed)
            .unwrap_err()
            .contains("schema version"));
    }

    #[test]
    fn build_open_round_trip_is_bit_identical() {
        let store = tiny_store();
        let dir = tmpdir("roundtrip");
        let cfg = IndexBuildConfig {
            stripe_cols: 2,
            ..IndexBuildConfig::default()
        };
        let report = build_index(&store, &cfg, &dir, &Recorder::disabled()).unwrap();
        let idx = PersistedIndex::open(&dir).unwrap();
        assert_eq!(idx.manifest, report.manifest);
        assert_eq!(store_digest(&idx.refs), store_digest(&store));
        // Every stripe reloads and matches a fresh in-memory build.
        let mut total_nnz = 0usize;
        for s in 0..idx.manifest.n_stripes {
            let stripe = idx.load_stripe(s).unwrap();
            assert_eq!(stripe.nrows(), idx.manifest.inner_dim());
            let (lo, hi) = idx.manifest.stripe_range(s);
            assert_eq!(stripe.ncols(), hi - lo);
            total_nnz += stripe.nnz();
        }
        assert_eq!(total_nnz as u64, report.nnz);
        // A second build writes byte-identical files.
        let dir2 = tmpdir("roundtrip2");
        build_index(&store, &cfg, &dir2, &Recorder::disabled()).unwrap();
        for s in 0..idx.manifest.n_stripes {
            assert_eq!(
                std::fs::read(shard_path(&dir, s)).unwrap(),
                std::fs::read(shard_path(&dir2, s)).unwrap()
            );
        }
        assert_eq!(
            std::fs::read(manifest_path(&dir)).unwrap(),
            std::fs::read(manifest_path(&dir2)).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn stale_parameters_refuse_to_serve() {
        let store = tiny_store();
        let dir = tmpdir("stale");
        build_index(
            &store,
            &IndexBuildConfig::default(),
            &dir,
            &Recorder::disabled(),
        )
        .unwrap();
        let idx = PersistedIndex::open(&dir).unwrap();
        idx.check_params(4, ReducedAlphabet::Full20, 0).unwrap();
        let err = idx.check_params(5, ReducedAlphabet::Full20, 0).unwrap_err();
        assert!(err.contains("stale index"), "{err}");
        assert!(err.contains("k=5"), "{err}");
        let err = idx
            .check_params(4, ReducedAlphabet::Murphy10, 0)
            .unwrap_err();
        assert!(err.contains("murphy10"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_or_corrupt_shard_is_rejected() {
        let store = tiny_store();
        let dir = tmpdir("corrupt");
        build_index(
            &store,
            &IndexBuildConfig::default(),
            &dir,
            &Recorder::disabled(),
        )
        .unwrap();
        let idx = PersistedIndex::open(&dir).unwrap();
        let p = shard_path(&dir, 0);
        let text = std::fs::read_to_string(&p).unwrap();
        // Bit flip → CRC rejection.
        std::fs::write(&p, text.replacen("stripe b 0", "stripe b 1", 1)).unwrap();
        assert!(idx.load_stripe(0).unwrap_err().contains("crc"));
        // Foreign fingerprint, correctly framed → binding rejection.
        let mut foreign = IndexShard::parse(&text).unwrap();
        foreign.fingerprint ^= 1;
        std::fs::write(&p, foreign.to_text()).unwrap();
        assert!(idx
            .load_stripe(0)
            .unwrap_err()
            .contains("different index build"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_honors_memory_budget_with_typed_error() {
        let store = tiny_store();
        let dir = tmpdir("budget");
        let cfg = IndexBuildConfig {
            mem_budget: Some(64),
            ..IndexBuildConfig::default()
        };
        let err = build_index(&store, &cfg, &dir, &Recorder::disabled()).unwrap_err();
        assert!(err.contains("memory budget exceeded in phase"), "{err}");
        // A torn budgeted build leaves no manifest, so it can never open.
        assert!(PersistedIndex::open(&dir).is_err());
        // A generous budget succeeds and reports its high-water mark.
        let cfg = IndexBuildConfig {
            mem_budget: Some(1 << 20),
            ..IndexBuildConfig::default()
        };
        let report = build_index(&store, &cfg, &dir, &Recorder::disabled()).unwrap();
        assert!(report.mem_high_water > 0 && report.mem_high_water <= 1 << 20);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
