//! The performance-model plane: replaying the pipeline at Summit scale.
//!
//! The paper's evaluation runs on 25–3364 Summit nodes. This module
//! replays the *same* block schedule the functional pipeline executes,
//! over the *real* dataset, for an arbitrary virtual node count: per-rank
//! work (candidates, aligned pairs, DP cells, semiring products,
//! broadcast payloads) is counted **exactly** from the actual overlap
//! matrix and the actual 2D partitioning, and only the conversion to
//! seconds goes through the calibrated [`MachineModel`]. The scaling
//! *shapes* — who wins, where the crossovers fall, how imbalance behaves —
//! therefore derive from genuine workload structure, not from closed-form
//! approximations.
//!
//! What is modeled rather than measured (documented per-experiment in
//! EXPERIMENTS.md): per-unit compute rates, the α–β network, filesystem
//! bandwidth, and the CPU contention factors of pre-blocking
//! (Section VI-C notes alignment and sparse work slow down when
//! overlapped; Table I measures 1.08–1.15× and 1.14–1.57×).

use pastis_align::batch::BatchAligner;
use pastis_align::matrices::Blosum62;
use pastis_comm::grid::BlockDist1D;
use pastis_comm::{ImbalanceStats, MachineModel};
use pastis_seqio::SeqStore;
use pastis_sparse::semiring::CountShared;
use pastis_sparse::{spgemm_hash, CsrMatrix, Index, Triples};
use pastis_trace::{names, CommOp, Component, TraceSession, Track};

use crate::filter::EdgeFilter;
use crate::kmer::kmer_matrix_triples;
use crate::loadbalance::{BlockPlan, LoadBalance};
use crate::params::SearchParams;
use crate::subkmers::kmer_matrix_triples_with_substitutes;

/// CPU contention when alignment and the next block's SpGEMM overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contention {
    /// Alignment slowdown while sharing the node (paper: 1.08–1.15×).
    pub align_factor: f64,
    /// Sparse slowdown at one block (paper: ≈1.14× at 10 blocks).
    pub sparse_factor_base: f64,
    /// Additional sparse slowdown per scheduled block (broadcast pressure
    /// grows with block count; paper: up to 1.57× at 50 blocks).
    pub sparse_factor_per_block: f64,
    /// Saturation of the sparse contention factor — resource sharing
    /// cannot degrade indefinitely (the paper's production run uses 400
    /// blocks yet keeps a healthy sparse phase).
    pub sparse_factor_cap: f64,
    /// Fraction of SUMMA broadcast time hidden behind local compute by the
    /// double-buffered broadcast path (`--overlap`), in `[0, 1]`. `0.0`
    /// models the phased schedule (every broadcast on the critical path);
    /// at `e`, `e · min(comm, compute)` of each block's broadcast wait is
    /// subtracted from its sparse time — a stage's prefetch can hide at
    /// most the compute it runs behind. The unhidden share of the
    /// sequence-exchange residual shrinks by the same factor. Affects
    /// modeled *seconds* only; byte counts are schedule-invariant.
    pub comm_overlap_efficiency: f64,
}

impl Default for Contention {
    fn default() -> Contention {
        Contention {
            align_factor: 1.13,
            sparse_factor_base: 1.12,
            sparse_factor_per_block: 0.006,
            sparse_factor_cap: 1.60,
            comm_overlap_efficiency: 0.0,
        }
    }
}

/// Configuration of one virtual-scale replay.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Virtual node count (must be a perfect square, as in CombBLAS).
    pub nodes: usize,
    /// Machine preset translating work to seconds.
    pub machine: MachineModel,
    /// Pre-blocking contention model.
    pub contention: Contention,
    /// Max pairs actually aligned to estimate the ANI/coverage pass
    /// fraction (0 = skip sampling and assume 12.3%, the paper's value).
    pub sample_pairs: usize,
    /// How per-rank work counts convert to modeled time; see
    /// [`TimeFidelity`].
    pub fidelity: TimeFidelity,
    /// Intra-rank alignment pool width replayed on every virtual rank
    /// (1 = serial driver, 0 = one worker per modeled core); enters the
    /// align term through [`MachineModel::align_time_parallel`].
    pub align_threads: usize,
    /// Intra-rank SpGEMM pool width replayed on every virtual rank
    /// (1 = serial kernel, 0 = one worker per modeled core); enters the
    /// sparse term through [`MachineModel::spgemm_time_parallel`].
    pub spgemm_threads: usize,
}

/// How the replay converts per-rank work into seconds.
///
/// At the paper's scale every rank-block cell holds 10⁶–10⁷ pairs, so its
/// duration concentrates tightly at its expectation (law of large
/// numbers); what remains is the *structural* imbalance the schemes of
/// Section VI-B are designed around (partial-block idling, parity
/// uniformity). A 10⁴×-miniature dataset has ~10²-pair cells whose
/// sampling noise would otherwise masquerade as imbalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeFidelity {
    /// Time each cell from its exact miniature counts (keeps sampling
    /// noise; right for validating against the functional pipeline).
    Exact,
    /// Time each cell from its structural expectation: the scheme's
    /// kept-area within the rank's rectangle × the global pair density
    /// (the paper's own uniform-distribution argument, Figure 6). All
    /// reported *counters* and the Figure-7a/b imbalance metrics stay
    /// exact.
    Structural,
}

impl ScaleConfig {
    /// A Summit replay on `nodes` nodes.
    pub fn summit(nodes: usize) -> ScaleConfig {
        ScaleConfig {
            nodes,
            machine: MachineModel::summit(),
            contention: Contention::default(),
            sample_pairs: 300,
            fidelity: TimeFidelity::Structural,
            align_threads: 1,
            spgemm_threads: 1,
        }
    }
}

/// Per-rank, per-component outcome of a replay.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Virtual node count.
    pub nodes: usize,
    /// Blocking factors replayed.
    pub br: usize,
    /// Column blocking factor.
    pub bc: usize,
    /// Load-balancing scheme replayed.
    pub scheme: LoadBalance,
    /// Modeled input-read seconds.
    pub io_read_s: f64,
    /// Modeled output-write seconds.
    pub io_write_s: f64,
    /// Modeled unhidden sequence-communication wait.
    pub cwait_s: f64,
    /// Modeled k-mer matrix formation seconds (slowest rank).
    pub kmer_s: f64,
    /// Σ over blocks of the slowest rank's alignment seconds
    /// (no contention).
    pub align_s: f64,
    /// Σ over blocks of the slowest rank's sparse seconds (SpGEMM compute
    /// + SUMMA broadcasts + pruning), plus k-mer formation.
    pub sparse_s: f64,
    /// End-to-end seconds without pre-blocking.
    pub total_without_pb: f64,
    /// End-to-end seconds with pre-blocking.
    pub total_with_pb: f64,
    /// Alignment seconds with contention applied (Table I "align w/").
    pub align_pb_s: f64,
    /// Sparse seconds with contention applied (Table I "sparse w/").
    pub sparse_pb_s: f64,
    /// The overlapped region's obtained time (Table I "sum w/").
    pub region_pb_s: f64,
    /// Pre-blocking efficiency: hidden work over ideally hideable work
    /// (Table I last column).
    pub pb_efficiency: f64,
    /// Discovered candidates (computed blocks only).
    pub candidates: u64,
    /// Pairs aligned.
    pub aligned_pairs: u64,
    /// Total DP cells.
    pub cells: u64,
    /// Semiring products (SpGEMM flops).
    pub products: u64,
    /// Σ over (block, rank) of the SUMMA broadcast payload the α–β model
    /// charges: the row+column stripe nonzeros a rank receives for the
    /// block, at the wire size of one nonzero (12 bytes). The traced
    /// replay records exactly these bytes on its broadcast events, so
    /// telemetry totals cross-check against this field bit-for-bit.
    pub modeled_bcast_bytes: u64,
    /// Estimated pairs passing ANI/coverage.
    pub similar_pairs: u64,
    /// Per-rank peak memory during the search, bytes (worst rank) —
    /// see [`MemoryFootprint`].
    pub memory: MemoryFootprint,
    /// Per-rank aligned-pair imbalance (Figure 7a).
    pub pairs_imbalance: ImbalanceStats,
    /// Per-rank DP-cell imbalance (Figure 7b).
    pub cells_imbalance: ImbalanceStats,
    /// Per-rank alignment-seconds imbalance (Figure 7c).
    pub align_time_imbalance: ImbalanceStats,
    /// Per-rank sparse-seconds imbalance.
    pub sparse_time_imbalance: ImbalanceStats,
}

/// The per-rank memory model behind the paper's central motivation
/// (Section V-B: "the memory required by such a relatively small-scale
/// search can quickly exceed the amount of memory found on a node",
/// Section VI-A: the unblocked 20M-sequence search "could not be
/// performed on fewer nodes").
///
/// All byte counts are for the *worst* rank at its peak block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryFootprint {
    /// Resident input stripes (this rank's shares of every A and B
    /// stripe), bytes.
    pub inputs_bytes: f64,
    /// This rank's slice of the sequence store plus fetched remote
    /// residues, bytes.
    pub sequences_bytes: f64,
    /// Peak SUMMA receive buffers within one block, bytes.
    pub recv_bytes: f64,
    /// Peak SpGEMM intermediate products within one block, bytes
    /// (compression-factor × output; the paper's Section V-B concern).
    pub intermediate_bytes: f64,
    /// Peak stored output block (candidates awaiting alignment), bytes.
    pub output_block_bytes: f64,
}

impl MemoryFootprint {
    /// Total peak bytes per rank.
    pub fn total_bytes(&self) -> f64 {
        self.inputs_bytes
            + self.sequences_bytes
            + self.recv_bytes
            + self.intermediate_bytes
            + self.output_block_bytes
    }

    /// The portion that the blocked formation bounds (everything that
    /// scales with the *output*, not the inputs).
    pub fn blocked_portion_bytes(&self) -> f64 {
        self.recv_bytes + self.intermediate_bytes + self.output_block_bytes
    }
}

impl ScaleReport {
    /// Total runtime under the given pre-blocking setting.
    pub fn total(&self, pre_blocking: bool) -> f64 {
        if pre_blocking {
            self.total_with_pb
        } else {
            self.total_without_pb
        }
    }

    /// Alignments per second of the pre-blocking run.
    pub fn alignments_per_sec(&self) -> f64 {
        self.aligned_pairs as f64 / self.total_with_pb
    }

    /// Sustained cell updates per second of the pre-blocking run.
    pub fn cups(&self) -> f64 {
        self.cells as f64 / self.total_with_pb
    }

    /// Overhead seconds common to both modes (IO, k-mer formation, cwait).
    pub fn overhead_s(&self) -> f64 {
        self.io_read_s + self.io_write_s + self.kmer_s + self.cwait_s
    }
}

/// Replay the search described by `params` over `store` on
/// `cfg.nodes` virtual Summit nodes.
///
/// # Panics
///
/// Panics if `cfg.nodes` is not a perfect square or `params` are invalid.
pub fn simulate(store: &SeqStore, params: &SearchParams, cfg: &ScaleConfig) -> ScaleReport {
    simulate_inner(store, params, cfg, None)
}

/// Like [`simulate`], additionally replaying the modeled per-rank timeline
/// into `session` (normally a [`TraceSession::virtual_time`]): io / k-mer /
/// sequence-exchange / SUMMA-block / alignment-batch spans, one broadcast
/// event per (block, rank) whose byte count is *exactly* the α–β cost
/// model's assumed volume ([`ScaleReport::modeled_bcast_bytes`]), and
/// per-rank work counters. Telemetry is observation-only: the returned
/// report is identical to [`simulate`]'s.
///
/// # Panics
///
/// Panics if `cfg.nodes` is not a perfect square or `params` are invalid.
pub fn simulate_traced(
    store: &SeqStore,
    params: &SearchParams,
    cfg: &ScaleConfig,
    session: &TraceSession,
) -> ScaleReport {
    simulate_inner(store, params, cfg, Some(session))
}

fn simulate_inner(
    store: &SeqStore,
    params: &SearchParams,
    cfg: &ScaleConfig,
    session: Option<&TraceSession>,
) -> ScaleReport {
    params.validate().unwrap_or_else(|e| panic!("{e}"));
    let p = cfg.nodes;
    let q = (p as f64).sqrt().round() as usize;
    assert_eq!(q * q, p, "virtual node count must be a perfect square");
    let machine = &cfg.machine;
    let n = store.len();

    // --- Exact overlap structure, computed serially once.
    let triples: Triples<u32> = if params.substitute_kmers > 0 {
        kmer_matrix_triples_with_substitutes(
            store,
            0,
            n,
            params.k,
            params.alphabet,
            params.substitute_kmers,
        )
    } else {
        kmer_matrix_triples(store, 0, n, params.k, params.alphabet)
    };
    // Compact the k-mer space so Aᵀ is materializable (CombBLAS would use
    // DCSC here; compaction is the serial equivalent).
    let (a_compact, _kmer_cols) = compact_columns(&triples);
    let a = CsrMatrix::from_triples_combining(a_compact, |x, y| {
        if y < *x {
            *x = y;
        }
    });
    let at = a.transpose();
    let (c, _) = spgemm_hash(&CountShared::<u32, u32>::new(), &a, &at);

    // --- Partitioning structures.
    let br = params.block_rows.min(n.max(1));
    let bc = params.block_cols.min(n.max(1));
    let row_stripes = BlockDist1D::new(n, br);
    let col_stripes = BlockDist1D::new(n, bc);
    let plan = BlockPlan::new(
        params.load_balance,
        br,
        bc,
        |r| {
            let s = row_stripes.part_offset(r);
            (s, s + row_stripes.part_len(r))
        },
        |c| {
            let s = col_stripes.part_offset(c);
            (s, s + col_stripes.part_len(c))
        },
    );
    let mut block_index = vec![usize::MAX; br * bc];
    for (idx, t) in plan.tasks.iter().enumerate() {
        block_index[t.r * bc + t.c] = idx;
    }
    let nb = plan.tasks.len();

    // Per-stripe intra-distribution over the grid dimension.
    let row_intra: Vec<BlockDist1D> = (0..br)
        .map(|r| BlockDist1D::new(row_stripes.part_len(r), q))
        .collect();
    let col_intra: Vec<BlockDist1D> = (0..bc)
        .map(|c| BlockDist1D::new(col_stripes.part_len(c), q))
        .collect();

    // --- Accumulate exact per-(block, rank) work from C's nonzeros.
    let mut candidates = vec![vec![0u64; p]; nb];
    let mut products = vec![vec![0u64; p]; nb];
    let mut pairs = vec![vec![0u64; p]; nb];
    let mut cells = vec![vec![0u64; p]; nb];
    let mut kept_total = 0u64;
    let mut sampled: Vec<(u32, u32)> = Vec::new();
    let sample_stride = 97usize;
    for (i, j, &count) in c.iter() {
        let (gi, gj) = (i as usize, j as usize);
        let r = row_stripes.owner(gi);
        let cc = col_stripes.owner(gj);
        let bidx = block_index[r * bc + cc];
        if bidx == usize::MAX {
            continue; // avoidable block: never computed
        }
        let rank = row_intra[r].owner(gi - row_stripes.part_offset(r)) * q
            + col_intra[cc].owner(gj - col_stripes.part_offset(cc));
        candidates[bidx][rank] += 1;
        products[bidx][rank] += count;
        if plan.keeps(i, j) && count >= params.common_kmer_threshold as u64 {
            pairs[bidx][rank] += 1;
            cells[bidx][rank] += store.seq_len(gi) as u64 * store.seq_len(gj) as u64;
            if cfg.sample_pairs > 0
                && sampled.len() < cfg.sample_pairs
                && kept_total as usize % sample_stride == 0
            {
                sampled.push((i, j));
            }
            kept_total += 1;
        }
    }

    // --- Broadcast payload histograms: nnz of stripe r owned by grid row
    // gi (A side) and of stripe c owned by grid col gj (B side). One pass
    // over A's entries.
    let mut hist_a = vec![vec![0u64; q]; br];
    let mut hist_b = vec![vec![0u64; q]; bc];
    for (s, _k, _) in a.iter() {
        let s = s as usize;
        let r = row_stripes.owner(s);
        hist_a[r][row_intra[r].owner(s - row_stripes.part_offset(r))] += 1;
        let cc = col_stripes.owner(s);
        hist_b[cc][col_intra[cc].owner(s - col_stripes.part_offset(cc))] += 1;
    }
    // One nonzero ≈ index + value + amortized pointer bytes. The integer
    // constant is authoritative: the traced replay records
    // `NNZ_WIRE_BYTES · stripe_nnz` on each broadcast event while the β
    // term below uses its float image, so the two cannot drift apart.
    const NNZ_WIRE_BYTES: u64 = 12;
    let nnz_bytes = NNZ_WIRE_BYTES as f64;
    let lg = if q <= 1 {
        0.0
    } else {
        (q as f64).log2().ceil()
    };

    // --- Per-block, per-rank modeled seconds.
    let total_pairs: u64 = pairs.iter().flatten().sum();
    let total_cells: u64 = cells.iter().flatten().sum();
    let total_candidates: u64 = candidates.iter().flatten().sum();
    let total_products: u64 = products.iter().flatten().sum();
    let expected_cells_per_pair = if total_pairs > 0 {
        total_cells as f64 / total_pairs as f64
    } else {
        0.0
    };
    let avg_multiplicity = if total_candidates > 0 {
        total_products as f64 / total_candidates as f64
    } else {
        0.0
    };

    // Structural expectations: for every (block, rank) rectangle, the
    // number of positions the scheme would align (kept area) and compute
    // (full area), converted to expected counts through global densities.
    let rect_of = |task: &crate::loadbalance::BlockTask, gi: usize, gj: usize| {
        let r0 = row_stripes.part_offset(task.r) + row_intra[task.r].part_offset(gi);
        let r1 = r0 + row_intra[task.r].part_len(gi);
        let c0 = col_stripes.part_offset(task.c) + col_intra[task.c].part_offset(gj);
        let c1 = c0 + col_intra[task.c].part_len(gj);
        (r0, r1, c0, c1)
    };
    let mut kept_area = vec![vec![0u64; p]; nb];
    let mut full_area = vec![vec![0u64; p]; nb];
    let (mut kept_area_total, mut full_area_total) = (0u64, 0u64);
    if cfg.fidelity == TimeFidelity::Structural {
        for (bidx, task) in plan.tasks.iter().enumerate() {
            for rank in 0..p {
                let (gi, gj) = (rank / q, rank % q);
                let (r0, r1, c0, c1) = rect_of(task, gi, gj);
                let kept = match params.load_balance {
                    LoadBalance::Triangular => count_upper(r0, r1, c0, c1),
                    LoadBalance::IndexBased => count_parity_kept(r0, r1, c0, c1),
                };
                let area = ((r1 - r0) * (c1 - c0)) as u64;
                kept_area[bidx][rank] = kept;
                full_area[bidx][rank] = area;
                kept_area_total += kept;
                full_area_total += area;
            }
        }
    }
    let pair_density = if kept_area_total > 0 {
        total_pairs as f64 / kept_area_total as f64
    } else {
        0.0
    };
    let cand_density = if full_area_total > 0 {
        total_candidates as f64 / full_area_total as f64
    } else {
        0.0
    };

    let mut sparse_secs = vec![vec![0.0f64; p]; nb];
    let mut align_secs = vec![vec![0.0f64; p]; nb];
    let mut bcast_wait = vec![vec![0.0f64; p]; nb];
    let mut modeled_bcast_bytes = 0u64;
    for (bidx, task) in plan.tasks.iter().enumerate() {
        for rank in 0..p {
            let (gi, gj) = (rank / q, rank % q);
            let stripe_nnz = (hist_a[task.r][gi] + hist_b[task.c][gj]) as f64;
            let (t_products, t_candidates, t_pairs) = match cfg.fidelity {
                TimeFidelity::Exact => (
                    products[bidx][rank] as f64,
                    candidates[bidx][rank] as f64,
                    pairs[bidx][rank] as f64,
                ),
                TimeFidelity::Structural => {
                    let cand = cand_density * full_area[bidx][rank] as f64;
                    (
                        cand * avg_multiplicity,
                        cand,
                        pair_density * kept_area[bidx][rank] as f64,
                    )
                }
            };
            let compute = machine.spgemm_time_parallel(t_products, t_candidates, cfg.spgemm_threads)
                    // Stripe handling: every block's SUMMA re-receives and
                    // re-traverses the input stripes (CSR walks, hash-table
                    // set-up). This split-computation overhead repeats per
                    // block while the product work above is
                    // blocking-invariant — it is what makes multiplication
                    // time grow with the block count in Figure 5.
                    + stripe_nnz / machine.stripe_nnz_per_sec;
            // SUMMA broadcasts over the q stages: latency q·α·log q per
            // side plus bandwidth on the row/column payload this rank
            // receives in aggregate.
            let comm = 2.0 * q as f64 * machine.net.alpha * lg
                + machine.net.beta * lg * nnz_bytes * stripe_nnz;
            // Double-buffered broadcasts hide up to `e · min(comm,
            // compute)` of the wait behind the local multiply — the
            // prefetch cannot hide more than the compute it overlaps.
            let hidden = cfg.contention.comm_overlap_efficiency * comm.min(compute);
            sparse_secs[bidx][rank] = compute + comm - hidden;
            bcast_wait[bidx][rank] = comm - hidden;
            modeled_bcast_bytes += NNZ_WIRE_BYTES * (hist_a[task.r][gi] + hist_b[task.c][gj]);
            align_secs[bidx][rank] = machine.align_time_parallel(
                t_pairs * expected_cells_per_pair,
                t_pairs,
                cfg.align_threads,
            )
                    // Per-batch device overhead: each block is one batch;
                    // more blocks = smaller, less efficient batches.
                    + if t_pairs > 0.0 {
                        machine.align_batch_overhead_s
                    } else {
                        0.0
                    };
        }
    }

    // --- Component times. The component columns report the *average*
    // rank's accumulated component time (the paper's Table I align/sparse
    // columns are balance-independent: its triangularity rows show align
    // times equal to the index rows despite far worse balance). Wall-clock
    // region/total times below remain max-based — imbalance surfaces
    // there, exactly as in the paper.
    let max_of = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
    let align_s: f64 = (0..p)
        .map(|r| align_secs.iter().map(|b| b[r]).sum::<f64>())
        .sum::<f64>()
        / p as f64;
    let sparse_blocks_s: f64 = (0..p)
        .map(|r| sparse_secs.iter().map(|b| b[r]).sum::<f64>())
        .sum::<f64>()
        / p as f64;

    // k-mer formation: contiguous sequence slices over all p ranks.
    let seq_slice = BlockDist1D::new(n, p);
    let kmer_secs: Vec<f64> = (0..p)
        .map(|rank| {
            let s0 = seq_slice.part_offset(rank);
            let s1 = s0 + seq_slice.part_len(rank);
            let residues: u64 = (s0..s1).map(|i| store.seq_len(i) as u64).sum();
            residues as f64 / machine.kmer_residues_per_sec
        })
        .collect();
    let kmer_s = kmer_secs.iter().copied().fold(0.0, f64::max);
    let sparse_s = sparse_blocks_s + kmer_s;

    // --- Region times with/without pre-blocking.
    let region_without: f64 = (0..nb)
        .map(|b| {
            (0..p)
                .map(|r| sparse_secs[b][r] + align_secs[b][r])
                .fold(0.0, f64::max)
        })
        .sum();
    let caf = cfg.contention.align_factor;
    let csf = (cfg.contention.sparse_factor_base
        + cfg.contention.sparse_factor_per_block * nb as f64)
        .min(cfg.contention.sparse_factor_cap);
    let mut region_pb = if nb > 0 {
        max_of(&sparse_secs[0]) * csf
    } else {
        0.0
    };
    for b in 0..nb {
        let step = (0..p)
            .map(|r| {
                let al = align_secs[b][r] * caf;
                let sp = if b + 1 < nb {
                    sparse_secs[b + 1][r] * csf
                } else {
                    0.0
                };
                al.max(sp)
            })
            .fold(0.0, f64::max);
        region_pb += step;
    }
    let align_pb_s = align_s * caf;
    let sparse_pb_s = sparse_blocks_s * csf + kmer_s;
    // Pre-blocking efficiency, the paper's Table I definition (verified
    // against its published cells, e.g. max(722,663)/740 = 97.6%):
    // how close the obtained overlapped region is to its lower bound, the
    // larger of the two contended components.
    let pb_efficiency = {
        let lower_bound = align_pb_s.max(sparse_blocks_s * csf);
        if region_pb > 0.0 {
            (lower_bound / region_pb).clamp(0.0, 1.0)
        } else {
            1.0
        }
    };

    // --- Per-rank peak memory (Section V-B / VI-A motivation).
    let mean_len = store.mean_len();
    let per_rank_pairs: Vec<u64> = (0..p).map(|r| (0..nb).map(|b| pairs[b][r]).sum()).collect();
    let max_pairs = per_rank_pairs.iter().copied().max().unwrap_or(0);
    let fetch_seqs = ((2 * max_pairs) as f64).min(n as f64);
    let memory = {
        const NNZ_IN_BYTES: f64 = 12.0; // index + u32 position + amortized ptr
        const CAND_BYTES: f64 = 28.0; // coords + CommonKmers{count, 2 seeds}
        const INTERMEDIATE_BYTES: f64 = 24.0; // hash slot: key + value + load slack
        let nnz_a: f64 = a.nnz() as f64;
        // Every rank holds its share of all A stripes plus all B stripes.
        let inputs_bytes = 2.0 * nnz_a / p as f64 * NNZ_IN_BYTES;
        // Own slice plus the remote sequences this rank's alignments touch.
        let sequences_bytes = store.total_residues() as f64 / p as f64 + fetch_seqs * mean_len;
        let mut worst = MemoryFootprint {
            inputs_bytes,
            sequences_bytes,
            ..MemoryFootprint::default()
        };
        let mut worst_total = 0.0f64;
        for (bidx, task) in plan.tasks.iter().enumerate() {
            for rank in 0..p {
                let (gi, gj) = (rank / q, rank % q);
                // Stage receive buffers: one stage's stripes at a time.
                let recv = (hist_a[task.r][gi] + hist_b[task.c][gj]) as f64 / q.max(1) as f64
                    * NNZ_IN_BYTES;
                let intermediate = products[bidx][rank] as f64 * INTERMEDIATE_BYTES;
                let output = candidates[bidx][rank] as f64 * CAND_BYTES;
                let total = inputs_bytes + sequences_bytes + recv + intermediate + output;
                if total > worst_total {
                    worst_total = total;
                    worst.recv_bytes = recv;
                    worst.intermediate_bytes = intermediate;
                    worst.output_block_bytes = output;
                }
            }
        }
        worst
    };

    // --- IO, cwait, pass-fraction.
    let header_bytes = 16u64;
    let input_bytes: u64 = store.total_residues() as u64 + n as u64 * header_bytes;
    let io_read_s = machine.io_time(input_bytes as f64, p);
    let pass_fraction = if cfg.sample_pairs == 0 || sampled.is_empty() {
        0.123 // the paper's production-run value
    } else {
        let aligner = BatchAligner::new(Blosum62, params.gaps);
        let filter = EdgeFilter::from_params(params);
        let passed = sampled
            .iter()
            .filter(|&&(i, j)| {
                // `i`/`j` are u32 store ids (dense, ≤ u32::MAX by
                // `SeqStore::push`'s checked constructor); widening them
                // back to usize store indices is always exact.
                let (qs, rs) = (store.seq(i as usize), store.seq(j as usize));
                filter.passes(&aligner.align_pair(qs, rs), qs.len(), rs.len())
            })
            .count();
        passed as f64 / sampled.len() as f64
    };
    let similar_pairs = (kept_total as f64 * pass_fraction).round() as u64;
    let triplet_bytes = 40.0;
    let io_write_s = machine.io_time(similar_pairs as f64 * triplet_bytes, p);

    // Sequence exchange: each rank fetches the sequences its alignments
    // touch (bounded by the whole set); the transfers are issued early and
    // almost fully hidden — only a small unhidden fraction plus the
    // per-peer latencies surface as cwait (Table II: ≤ 0.31%).
    // The unhidden remainder is host-side: per-peer message handling (one
    // slice per source rank — this is why the paper's cwait share *rises*
    // with node count, Table II) plus a small unpacking residual that
    // competes with the CPU sparse work.
    let unhidden = 0.015 * (1.0 - cfg.contention.comm_overlap_efficiency);
    let cwait_s = (p.saturating_sub(1)) as f64
        * (machine.net.alpha * lg.max(1.0) + machine.p2p_handling_s)
        + unhidden * fetch_seqs * mean_len / machine.kmer_residues_per_sec;

    let overhead = io_read_s + io_write_s + kmer_s + cwait_s;
    let total_without_pb = overhead + region_without;
    let total_with_pb = overhead + region_pb;

    // --- Virtual-time telemetry: replay the bulk-synchronous (no
    // pre-blocking) schedule onto per-rank recorders through the `*_at`
    // entry points. Every number on an event is the number the cost model
    // charged — in particular each broadcast's byte count is exactly the
    // α–β term's assumed volume, so exported metrics cross-check against
    // `modeled_bcast_bytes` bit-for-bit (pinned by a test below).
    if let Some(session) = session {
        let recs: Vec<_> = (0..p).map(|rank| session.recorder(rank)).collect();
        let t_blocks = io_read_s + kmer_s + cwait_s;
        for (rank, rec) in recs.iter().enumerate() {
            rec.record_span_at(
                Component::Io,
                names::SPAN_IO_READ,
                Track::Rank,
                0.0,
                io_read_s,
                &[("bytes", input_bytes)],
            );
            rec.record_span_at(
                Component::SparseOther,
                names::SPAN_KMER_MATRIX,
                Track::Rank,
                io_read_s,
                kmer_secs[rank],
                &[],
            );
            rec.record_span_at(
                Component::CommWait,
                names::SPAN_SEQ_EXCHANGE_RECV,
                Track::Rank,
                io_read_s + kmer_s,
                cwait_s,
                &[("peers", p.saturating_sub(1) as u64)],
            );
        }
        let mut cursor = vec![t_blocks; p];
        for (bidx, task) in plan.tasks.iter().enumerate() {
            // The SUMMA broadcasts synchronize the grid: every block
            // starts at the slowest rank's cursor.
            let start = cursor.iter().copied().fold(t_blocks, f64::max);
            for (rank, rec) in recs.iter().enumerate() {
                let (gi, gj) = (rank / q, rank % q);
                let bytes = NNZ_WIRE_BYTES * (hist_a[task.r][gi] + hist_b[task.c][gj]);
                rec.record_comm_at(
                    CommOp::Broadcast,
                    bytes,
                    2 * q.saturating_sub(1), // the rank's row team + column team
                    bcast_wait[bidx][rank],
                    start,
                );
                rec.record_span_at(
                    Component::SpGemm,
                    names::SPAN_SUMMA_BLOCK,
                    Track::Rank,
                    start,
                    sparse_secs[bidx][rank],
                    &[
                        ("r", task.r as u64),
                        ("c", task.c as u64),
                        ("candidates", candidates[bidx][rank]),
                        ("products", products[bidx][rank]),
                    ],
                );
                rec.record_span_at(
                    Component::Align,
                    names::SPAN_ALIGN_BATCH,
                    Track::Rank,
                    start + sparse_secs[bidx][rank],
                    align_secs[bidx][rank],
                    &[
                        ("r", task.r as u64),
                        ("c", task.c as u64),
                        ("pairs", pairs[bidx][rank]),
                        ("cells", cells[bidx][rank]),
                    ],
                );
                cursor[rank] = start + sparse_secs[bidx][rank] + align_secs[bidx][rank];
            }
        }
        let end = cursor.iter().copied().fold(t_blocks, f64::max);
        for (rank, rec) in recs.iter().enumerate() {
            rec.record_span_at(
                Component::Io,
                names::SPAN_IO_WRITE,
                Track::Rank,
                end,
                io_write_s,
                &[],
            );
            let sum_u = |data: &[Vec<u64>]| (0..nb).map(|b| data[b][rank]).sum::<u64>() as f64;
            rec.add_counter(names::CTR_CANDIDATES, sum_u(&candidates));
            rec.add_counter(names::CTR_ALIGNED_PAIRS, sum_u(&pairs));
            rec.add_counter(names::CTR_CELLS, sum_u(&cells));
            rec.add_counter(
                names::CTR_ALIGN_SECONDS,
                (0..nb).map(|b| align_secs[b][rank]).sum::<f64>(),
            );
            rec.add_counter(
                names::CTR_SPARSE_SECONDS,
                kmer_secs[rank] + (0..nb).map(|b| sparse_secs[b][rank]).sum::<f64>(),
            );
        }
    }

    // --- Imbalance metrics over per-rank totals.
    let per_rank = |data: &[Vec<u64>]| -> Vec<f64> {
        (0..p)
            .map(|r| data.iter().map(|b| b[r] as f64).sum())
            .collect()
    };
    let per_rank_f = |data: &[Vec<f64>]| -> Vec<f64> {
        (0..p).map(|r| data.iter().map(|b| b[r]).sum()).collect()
    };
    let sum2 = |data: &[Vec<u64>]| -> u64 { data.iter().flatten().sum() };

    ScaleReport {
        nodes: p,
        br,
        bc,
        scheme: params.load_balance,
        io_read_s,
        io_write_s,
        cwait_s,
        kmer_s,
        align_s,
        sparse_s,
        total_without_pb,
        total_with_pb,
        align_pb_s,
        sparse_pb_s,
        region_pb_s: region_pb,
        pb_efficiency,
        candidates: sum2(&candidates),
        aligned_pairs: sum2(&pairs),
        cells: sum2(&cells),
        products: sum2(&products),
        modeled_bcast_bytes,
        similar_pairs,
        memory,
        pairs_imbalance: ImbalanceStats::from_values(&per_rank(&pairs)),
        cells_imbalance: ImbalanceStats::from_values(&per_rank(&cells)),
        align_time_imbalance: ImbalanceStats::from_values(&per_rank_f(&align_secs)),
        sparse_time_imbalance: ImbalanceStats::from_values(&per_rank_f(&sparse_secs)),
    }
}

/// Factor a total block count into the `br × bc` pair closest to square,
/// matching the paper's usage (its production run reports "a total of 676
/// blocks" on a 26×26 grid).
fn near_square_factors(total: usize) -> (usize, usize) {
    let mut best = (total, 1);
    for d in 1..=total {
        if total % d == 0 {
            let (a, b) = (total / d, d);
            if a >= b && a - b < best.0 - best.1 {
                best = (a, b);
            }
        }
    }
    best
}

/// Choose the smallest block count whose modeled per-rank peak memory fits
/// `budget_bytes` — the planning face of the runtime `--mem-budget`
/// accountant. Sweeps total block counts `1..=max_blocks`, factoring each
/// into the near-square `br × bc` the paper uses, and replays the schedule
/// through [`simulate`]; the first blocking whose
/// [`MemoryFootprint::total_bytes`] fits is returned with its report.
///
/// Returns `None` when no tested blocking fits — in particular when the
/// budget is below the blocking-invariant floor (input stripes plus the
/// sequence store), the same irreducible working set that makes the
/// runtime accountant fail with a typed out-of-memory instead of spilling.
///
/// # Panics
///
/// Panics if `cfg.nodes` is not a perfect square, `params` are invalid, or
/// `max_blocks` is zero.
pub fn blocking_for_budget(
    store: &SeqStore,
    params: &SearchParams,
    cfg: &ScaleConfig,
    budget_bytes: f64,
    max_blocks: usize,
) -> Option<(usize, usize, ScaleReport)> {
    assert!(max_blocks > 0, "max_blocks must be positive");
    for total in 1..=max_blocks {
        let (br, bc) = near_square_factors(total);
        let mut p = params.clone();
        p.block_rows = br;
        p.block_cols = bc;
        let r = simulate(store, &p, cfg);
        if r.memory.total_bytes() <= budget_bytes {
            return Some((br, bc, r));
        }
    }
    None
}

/// Modeled CPU cell-update rate of the scalar score-only kernel,
/// cells/second/thread — the base the SIMD lane factor multiplies when
/// sizing serve batches.
const SERVE_CPU_CELLS_PER_SEC: f64 = 2.0e8;

/// Target share of a serve batch's time allowed to go to the fixed
/// per-batch overhead (launch/packing); batches are sized so overhead is
/// amortized to at most this fraction of useful work.
const SERVE_BATCH_OVERHEAD_FRACTION: f64 = 0.1;

/// Recommended admission-batch size for `pastis serve`: the smallest
/// SIMD-lane-aligned batch whose modeled useful work amortizes the
/// machine's fixed per-batch overhead ([`MachineModel::align_batch_overhead_s`])
/// to at most 10%, clamped to `[lanes, cap]` and rounded down to a lane
/// multiple. Latency is bounded separately by the batcher's flush
/// deadline, so the cap (not this model) is what keeps tail latency sane.
pub fn recommended_serve_batch(
    m: &MachineModel,
    lanes: usize,
    mean_query_len: f64,
    cap: usize,
) -> usize {
    let lanes = lanes.max(1);
    let cap = cap.max(lanes);
    // Modeled per-query compute: score-only DP over an average-length pair
    // plus the per-pair driver overhead, on the CPU vector kernel.
    let len = mean_query_len.max(1.0);
    let per_query_s = len * len / (SERVE_CPU_CELLS_PER_SEC * m.simd_lane_speedup.max(1.0))
        + m.align_overhead_per_pair;
    let n = (m.align_batch_overhead_s / (SERVE_BATCH_OVERHEAD_FRACTION * per_query_s)).ceil();
    // Degenerate calibration constants (zero/negative overhead, NaN/inf
    // rates) must never surface as a 0-sized batch: `n as usize` saturates
    // a small or negative finite float at 0, and a 0-sized recommendation
    // fed to the batcher is a silent no-progress loop. Anything that is
    // not a finite count of at least one query falls back to the cap.
    let n = if n.is_finite() && n >= 1.0 {
        n as usize
    } else {
        cap
    };
    let n = n.clamp(lanes, cap);
    n - n % lanes
}

/// The economics of persisting the reference k-mer matrix: what one index
/// build costs, what each serving process pays to load it back, and after
/// how many runs the build has paid for itself against re-deriving the
/// matrix from FASTA every time (what batch `pastis search` does).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexAmortization {
    /// One-time build cost, seconds: k-mer matrix formation plus writing
    /// the shards through the filesystem.
    pub build_seconds: f64,
    /// Per-process load cost, seconds: reading the shards back.
    pub load_seconds: f64,
    /// What every indexless run pays instead, seconds: re-deriving the
    /// k-mer matrix from the reference residues.
    pub rebuild_seconds: f64,
    /// Runs until the build breaks even:
    /// `build / (rebuild - load)`; infinite when loading is no cheaper
    /// than rebuilding (tiny references on slow disks).
    pub break_even_runs: f64,
}

/// Evaluate [`IndexAmortization`] for a reference set of
/// `total_residues` whose persisted index occupies `index_bytes`, under
/// machine model `m` (single node: `kmer_residues_per_sec` and
/// `io_bw_per_node` are the governing rates).
pub fn index_amortization(
    m: &MachineModel,
    total_residues: u64,
    index_bytes: u64,
) -> IndexAmortization {
    let rebuild_seconds = total_residues as f64 / m.kmer_residues_per_sec;
    let load_seconds = index_bytes as f64 / m.io_bw_per_node;
    let build_seconds = rebuild_seconds + load_seconds;
    let saved = rebuild_seconds - load_seconds;
    let break_even_runs = if saved > 0.0 {
        build_seconds / saved
    } else {
        f64::INFINITY
    };
    IndexAmortization {
        build_seconds,
        load_seconds,
        rebuild_seconds,
        break_even_runs,
    }
}

/// Number of strictly-upper positions (`j > i`) in the rectangle
/// `[r0, r1) × [c0, c1)` of global coordinates.
fn count_upper(r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
    let mut total = 0u64;
    for i in r0..r1 {
        let lo = c0.max(i + 1);
        if lo < c1 {
            total += (c1 - lo) as u64;
        }
    }
    total
}

/// Number of positions the index-based parity rule keeps in the rectangle
/// `[r0, r1) × [c0, c1)` (see [`pastis_sparse::spops::parity_keep`]).
fn count_parity_kept(r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
    // Evens in [a, b).
    fn evens(a: usize, b: usize) -> u64 {
        if a >= b {
            0
        } else {
            (b.div_ceil(2) - a.div_ceil(2)) as u64
        }
    }
    let mut total = 0u64;
    for i in r0..r1 {
        // Lower triangle (j < i): keep same parity as i.
        let (lo, hi) = (c0, c1.min(i));
        if lo < hi {
            let e = evens(lo, hi);
            let o = (hi - lo) as u64 - e;
            total += if i % 2 == 0 { e } else { o };
        }
        // Upper triangle (j > i): keep opposite parity.
        let (lo, hi) = (c0.max(i + 1), c1);
        if lo < hi {
            let e = evens(lo, hi);
            let o = (hi - lo) as u64 - e;
            total += if i % 2 == 0 { o } else { e };
        }
    }
    total
}

/// Remap column ids to a dense `0..n_distinct` space; returns the remapped
/// triples and the number of distinct columns.
fn compact_columns(t: &Triples<u32>) -> (Triples<u32>, usize) {
    let mut cols: Vec<Index> = t.entries.iter().map(|e| e.col).collect();
    cols.sort_unstable();
    cols.dedup();
    let ncols = cols.len().max(1);
    let mut out = Triples::new(t.nrows(), ncols);
    for e in &t.entries {
        let new_col = cols.binary_search(&e.col).expect("column present") as Index;
        out.push(e.row, new_col, e.val);
    }
    (out, ncols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_search_serial;
    use pastis_comm::costmodel::{AlphaBeta, CollectiveAlgo};
    use pastis_seqio::{SyntheticConfig, SyntheticDataset};

    fn dataset(n: usize) -> SeqStore {
        SyntheticDataset::generate(&SyntheticConfig {
            n_sequences: n,
            mean_len: 80.0,
            singleton_fraction: 0.3,
            seed: 5,
            ..SyntheticConfig::small(n, 5)
        })
        .store
    }

    fn params() -> SearchParams {
        SearchParams::test_defaults().with_blocking(4, 4)
    }

    /// A machine slowed down so that the *compute* of a tiny test dataset
    /// dominates latency terms, putting the replay into the regime the
    /// paper's node counts operate in (Summit rates with a 100-sequence
    /// input would be pure-latency, which scales like no real system).
    fn test_machine() -> MachineModel {
        MachineModel {
            name: "test-slow".into(),
            net: AlphaBeta::from_latency_bandwidth(2.0e-6, 2.0e7),
            algo: CollectiveAlgo::Tree,
            gpus_per_node: 1,
            gcups_per_gpu: 1.0e-2, // 10M cells/s per node
            align_overhead_per_pair: 1.0e-7,
            align_pool_efficiency: 0.9,
            spgemm_pool_efficiency: 0.8,
            simd_lane_speedup: 1.0,
            align_batch_overhead_s: 0.0,
            p2p_handling_s: 0.0,
            spgemm_products_per_sec: 1.0e6,
            merge_nnz_per_sec: 1.0e6,
            stripe_nnz_per_sec: 2.0e7,
            kmer_residues_per_sec: 1.0e7,
            io_bw_per_node: 1.0e9,
            io_bw_global_cap: 1.0e12,
            cores_per_node: 1,
        }
    }

    fn test_config(nodes: usize) -> ScaleConfig {
        ScaleConfig {
            nodes,
            machine: test_machine(),
            contention: Contention::default(),
            sample_pairs: 100,
            fidelity: TimeFidelity::Exact,
            align_threads: 1,
            spgemm_threads: 1,
        }
    }

    /// Rescale the sparse rates so modeled sparse time ≈ align time — the
    /// regime of the paper (align:sparse ≤ 2:1) where pre-blocking pays.
    fn balanced_config(store: &SeqStore, p: &SearchParams, nodes: usize) -> ScaleConfig {
        let mut cfg = test_config(nodes);
        let probe = simulate(store, p, &cfg);
        let ratio = probe.sparse_s / probe.align_s.max(1e-12);
        cfg.machine.spgemm_products_per_sec *= ratio;
        cfg.machine.merge_nnz_per_sec *= ratio;
        cfg
    }

    #[test]
    fn replay_counts_match_functional_pipeline() {
        let store = dataset(60);
        let p = params();
        let functional = run_search_serial(&store, &p).unwrap();
        let report = simulate(&store, &p, &test_config(4));
        assert_eq!(report.candidates, functional.stats.candidates);
        assert_eq!(report.aligned_pairs, functional.stats.aligned_pairs);
        assert_eq!(report.cells, functional.stats.cells);
    }

    #[test]
    fn replay_counts_invariant_in_node_count() {
        let store = dataset(50);
        let p = params();
        let r1 = simulate(&store, &p, &test_config(1));
        let r16 = simulate(&store, &p, &test_config(16));
        let r100 = simulate(&store, &p, &test_config(100));
        assert_eq!(r1.aligned_pairs, r16.aligned_pairs);
        assert_eq!(r16.aligned_pairs, r100.aligned_pairs);
        assert_eq!(r1.cells, r100.cells);
    }

    #[test]
    fn align_threads_shrink_align_time_only() {
        let store = dataset(60);
        let p = params();
        let serial = simulate(&store, &p, &test_config(4));
        let mut cfg = test_config(4);
        cfg.align_threads = 4;
        let pooled = simulate(&store, &p, &cfg);
        // Counters are work, not time: invariant.
        assert_eq!(pooled.aligned_pairs, serial.aligned_pairs);
        assert_eq!(pooled.cells, serial.cells);
        // The align term divides by the modeled pool speedup; sparse does not.
        let speedup = cfg.machine.align_speedup(4);
        assert!((pooled.align_s - serial.align_s / speedup).abs() < 1e-9 * serial.align_s);
        assert!((pooled.sparse_s - serial.sparse_s).abs() < 1e-12);
    }

    #[test]
    fn spgemm_threads_shrink_sparse_time_only() {
        let store = dataset(60);
        let p = params();
        let serial = simulate(&store, &p, &test_config(4));
        let mut cfg = test_config(4);
        cfg.spgemm_threads = 4;
        let pooled = simulate(&store, &p, &cfg);
        // Counters are work, not time: invariant.
        assert_eq!(pooled.candidates, serial.candidates);
        assert_eq!(pooled.cells, serial.cells);
        // Only the product term of the sparse phase divides by the pool
        // speedup (merge + stripe handling stay serial), so sparse time
        // must drop but by less than the full speedup; align is untouched.
        assert!(pooled.sparse_s < serial.sparse_s, "sparse time must shrink");
        let speedup = cfg.machine.spgemm_speedup(4);
        assert!(
            pooled.sparse_s > serial.sparse_s / speedup,
            "merge/stripe terms must not parallelize"
        );
        assert!((pooled.align_s - serial.align_s).abs() < 1e-12);
    }

    #[test]
    fn comm_overlap_efficiency_hides_broadcast_wait_only() {
        let store = dataset(60);
        let p = params();
        let phased = simulate(&store, &p, &test_config(4));
        // eff = 0.0 is the default: an explicit zero is bit-identical.
        let mut zero = test_config(4);
        zero.contention.comm_overlap_efficiency = 0.0;
        let z = simulate(&store, &p, &zero);
        assert_eq!(z.sparse_s.to_bits(), phased.sparse_s.to_bits());
        assert_eq!(z.cwait_s.to_bits(), phased.cwait_s.to_bits());
        // eff = 0.9 hides broadcast wait behind local SpGEMM compute.
        let mut cfg = test_config(4);
        cfg.contention.comm_overlap_efficiency = 0.9;
        let ov = simulate(&store, &p, &cfg);
        // Work counters and the modeled wire bytes are schedule-invariant:
        // overlap changes when bytes move, never how many.
        assert_eq!(ov.candidates, phased.candidates);
        assert_eq!(ov.aligned_pairs, phased.aligned_pairs);
        assert_eq!(ov.cells, phased.cells);
        assert_eq!(ov.products, phased.products);
        assert_eq!(ov.modeled_bcast_bytes, phased.modeled_bcast_bytes);
        // Hidden time comes out of the sparse phase and the unhidden
        // sequence-communication wait; alignment is untouched.
        assert!(ov.sparse_s < phased.sparse_s, "overlap must shrink sparse");
        assert!(ov.cwait_s < phased.cwait_s, "overlap must shrink cwait");
        assert!((ov.align_s - phased.align_s).abs() < 1e-12);
        // At most min(comm, compute) can hide: sparse time stays above
        // the compute-only floor even at eff = 1.0.
        let mut full = test_config(4);
        full.contention.comm_overlap_efficiency = 1.0;
        let f = simulate(&store, &p, &full);
        assert!(f.sparse_s < ov.sparse_s);
        assert!(f.sparse_s > 0.0);
    }

    #[test]
    fn more_nodes_reduce_total_time() {
        let store = dataset(80);
        let p = params();
        let t4 = simulate(&store, &p, &test_config(4)).total_with_pb;
        let t16 = simulate(&store, &p, &test_config(16)).total_with_pb;
        let t64 = simulate(&store, &p, &test_config(64)).total_with_pb;
        assert!(t16 < t4, "t4={t4} t16={t16}");
        assert!(t64 < t16, "t16={t16} t64={t64}");
    }

    #[test]
    fn pre_blocking_reduces_total() {
        let store = dataset(80);
        let cfg = balanced_config(&store, &params(), 16);
        let r = simulate(&store, &params(), &cfg);
        assert!(r.total_with_pb < r.total_without_pb);
        assert!(r.pb_efficiency > 0.3 && r.pb_efficiency <= 1.0);
        // With-contention components exceed the uncontended ones.
        assert!(r.align_pb_s > r.align_s);
        assert!(r.sparse_pb_s > r.sparse_s);
    }

    #[test]
    fn triangular_avoids_sparse_work() {
        let store = dataset(80);
        let tri = simulate(
            &store,
            &params().with_load_balance(LoadBalance::Triangular),
            &test_config(16),
        );
        let idx = simulate(
            &store,
            &params().with_load_balance(LoadBalance::IndexBased),
            &test_config(16),
        );
        // Same alignment work...
        assert_eq!(tri.aligned_pairs, idx.aligned_pairs);
        assert_eq!(tri.cells, idx.cells);
        // ...but fewer candidates computed and fewer products.
        assert!(tri.candidates < idx.candidates);
        assert!(tri.products < idx.products);
        // And worse alignment balance (partial blocks idle some ranks).
        assert!(tri.pairs_imbalance.imbalance_pct() >= idx.pairs_imbalance.imbalance_pct());
    }

    #[test]
    fn more_blocks_increase_sparse_time() {
        // Figure 5's main effect: block count inflates multiplication time.
        let store = dataset(80);
        let few = simulate(
            &store,
            &SearchParams::test_defaults().with_blocking(1, 1),
            &test_config(16),
        );
        let many = simulate(
            &store,
            &SearchParams::test_defaults().with_blocking(8, 8),
            &test_config(16),
        );
        assert!(many.sparse_s > few.sparse_s);
        assert_eq!(few.aligned_pairs, many.aligned_pairs);
    }

    #[test]
    fn io_fraction_is_small() {
        let store = dataset(100);
        let r = simulate(&store, &params(), &test_config(16));
        let io_pct = (r.io_read_s + r.io_write_s) / r.total_with_pb * 100.0;
        assert!(io_pct < 10.0, "io {io_pct}%");
        let cwait_pct = r.cwait_s / r.total_with_pb * 100.0;
        assert!(cwait_pct < 5.0, "cwait {cwait_pct}%");
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_node_count_panics() {
        let store = dataset(20);
        let _ = simulate(&store, &params(), &test_config(12));
    }

    #[test]
    fn traced_replay_bytes_match_cost_model_exactly() {
        use pastis_trace::MetricsReport;
        let store = dataset(60);
        let p = params();
        let session = TraceSession::virtual_time();
        let traced = simulate_traced(&store, &p, &test_config(4), &session);
        let untraced = simulate(&store, &p, &test_config(4));
        // Observation-only: tracing changes nothing in the report.
        assert_eq!(traced.aligned_pairs, untraced.aligned_pairs);
        assert_eq!(traced.cells, untraced.cells);
        assert_eq!(traced.candidates, untraced.candidates);
        assert_eq!(traced.modeled_bcast_bytes, untraced.modeled_bcast_bytes);
        assert_eq!(traced.total_with_pb, untraced.total_with_pb);
        assert_eq!(traced.total_without_pb, untraced.total_without_pb);
        // The built-in cross-check: per-collective byte counters on the
        // virtual-time backend equal the α–β model's assumed volumes,
        // exactly (not approximately).
        let metrics = MetricsReport::from_session(&session);
        assert!(metrics.virtual_time);
        assert!(traced.modeled_bcast_bytes > 0);
        assert_eq!(
            metrics.total_bytes(CommOp::Broadcast),
            traced.modeled_bcast_bytes
        );
        // The recorded broadcast waits reconstruct the model's comm term.
        assert!(metrics.total_wait_s(CommOp::Broadcast) > 0.0);
    }

    #[test]
    fn traced_replay_timeline_covers_all_phases_per_rank() {
        let store = dataset(60);
        let p = params();
        let session = TraceSession::virtual_time();
        let report = simulate_traced(&store, &p, &test_config(4), &session);
        let recs = session.recorders();
        assert_eq!(recs.len(), 4);
        for rec in &recs {
            let spans = rec.snapshot_spans();
            for name in [
                names::SPAN_IO_READ,
                names::SPAN_KMER_MATRIX,
                names::SPAN_SEQ_EXCHANGE_RECV,
                names::SPAN_SUMMA_BLOCK,
                names::SPAN_ALIGN_BATCH,
                names::SPAN_IO_WRITE,
            ] {
                assert!(
                    spans.iter().any(|s| s.name == name),
                    "rank {} missing span {name}",
                    rec.rank()
                );
            }
            // Bulk-synchronous schedule: no block span starts before the
            // prologue (read + k-mer + exchange) ends.
            let prologue_end = spans
                .iter()
                .find(|s| s.name == "seq_exchange.recv")
                .unwrap()
                .end_us();
            assert!(spans
                .iter()
                .filter(|s| s.name == "summa.block")
                .all(|s| s.start_us >= prologue_end));
        }
        // Per-rank counters partition the global work counts exactly.
        let sum_counter = |name: &str| -> u64 {
            recs.iter().map(|r| r.counters()[name]).sum::<f64>().round() as u64
        };
        assert_eq!(sum_counter("aligned_pairs"), report.aligned_pairs);
        assert_eq!(sum_counter("cells"), report.cells);
        assert_eq!(sum_counter("candidates"), report.candidates);
    }

    #[test]
    fn count_upper_matches_bruteforce() {
        for (r0, r1, c0, c1) in [
            (0usize, 5usize, 0usize, 5usize),
            (2, 7, 0, 4),
            (0, 3, 5, 9),
            (6, 9, 1, 3),
            (4, 4, 0, 9),
            (3, 8, 3, 8),
        ] {
            let brute = (r0..r1)
                .flat_map(|i| (c0..c1).map(move |j| (i, j)))
                .filter(|&(i, j)| j > i)
                .count() as u64;
            assert_eq!(
                count_upper(r0, r1, c0, c1),
                brute,
                "rect [{r0},{r1})x[{c0},{c1})"
            );
        }
    }

    #[test]
    fn count_parity_matches_bruteforce() {
        use pastis_sparse::spops::parity_keep;
        for (r0, r1, c0, c1) in [
            (0usize, 6usize, 0usize, 6usize),
            (1, 8, 2, 5),
            (0, 4, 7, 12),
            (5, 11, 0, 3),
            (2, 2, 0, 5),
            (3, 9, 3, 9),
        ] {
            let brute = (r0..r1)
                .flat_map(|i| (c0..c1).map(move |j| (i, j)))
                // Test-local narrowing over rectangles far below the
                // u32 edge; production ids stay ≤ u32::MAX via
                // `SeqStore::push`'s checked constructor.
                .filter(|&(i, j)| parity_keep(i as u32, j as u32))
                .count() as u64;
            assert_eq!(
                count_parity_kept(r0, r1, c0, c1),
                brute,
                "rect [{r0},{r1})x[{c0},{c1})"
            );
        }
    }

    #[test]
    fn memory_footprint_shrinks_with_blocks() {
        let store = dataset(60);
        let cfg = test_config(4);
        let one = simulate(
            &store,
            &SearchParams::test_defaults().with_blocking(1, 1),
            &cfg,
        );
        let many = simulate(
            &store,
            &SearchParams::test_defaults().with_blocking(4, 4),
            &cfg,
        );
        assert!(
            many.memory.blocked_portion_bytes() < one.memory.blocked_portion_bytes(),
            "blocking failed to bound the in-flight memory: {} vs {}",
            many.memory.blocked_portion_bytes(),
            one.memory.blocked_portion_bytes()
        );
        // Inputs and sequences are blocking-invariant.
        assert!((many.memory.inputs_bytes - one.memory.inputs_bytes).abs() < 1.0);
        assert!(one.memory.total_bytes() > 0.0);
    }

    #[test]
    fn blocking_for_budget_picks_smallest_fitting_blocking() {
        let store = dataset(60);
        let p = SearchParams::test_defaults();
        let cfg = test_config(4);
        let one = simulate(&store, &p.clone().with_blocking(1, 1), &cfg);
        // A budget at the unblocked peak is satisfied without blocking.
        let (br, bc, r) =
            blocking_for_budget(&store, &p, &cfg, one.memory.total_bytes(), 64).unwrap();
        assert_eq!((br, bc), (1, 1));
        assert_eq!(r.memory.total_bytes(), one.memory.total_bytes());
        // A budget between the invariant floor and the unblocked peak
        // forces a finer blocking, and the chosen one actually fits.
        let floor = one.memory.inputs_bytes + one.memory.sequences_bytes;
        let budget = floor + 0.25 * one.memory.blocked_portion_bytes();
        let (br, bc, r) = blocking_for_budget(&store, &p, &cfg, budget, 64)
            .expect("a finer blocking should fit this budget");
        assert!(br * bc > 1, "budget below the unblocked peak needs blocks");
        assert!(r.memory.total_bytes() <= budget);
        // Below the blocking-invariant floor no blocking helps — the same
        // irreducible working set the runtime accountant reports as OOM.
        assert!(blocking_for_budget(&store, &p, &cfg, floor * 0.5, 64).is_none());
    }

    #[test]
    fn near_square_factors_match_paper_usage() {
        assert_eq!(near_square_factors(1), (1, 1));
        assert_eq!(near_square_factors(25), (5, 5));
        assert_eq!(near_square_factors(50), (10, 5));
        assert_eq!(near_square_factors(676), (26, 26));
        assert_eq!(near_square_factors(7), (7, 1));
    }

    #[test]
    fn recommended_serve_batch_is_lane_aligned_bounded_and_monotone() {
        let m = MachineModel::commodity();
        for lanes in [1usize, 4, 16] {
            for len in [10.0f64, 100.0, 1000.0] {
                for cap in [8usize, 256, 4096] {
                    let n = recommended_serve_batch(&m, lanes, len, cap);
                    assert_eq!(n % lanes, 0, "lanes={lanes} len={len} cap={cap}");
                    assert!(n >= lanes && n <= cap.max(lanes));
                }
            }
        }
        // More per-batch overhead never shrinks the recommendation.
        let mut costly = MachineModel::commodity();
        costly.align_batch_overhead_s *= 10.0;
        assert!(
            recommended_serve_batch(&costly, 16, 200.0, 1 << 20)
                >= recommended_serve_batch(&m, 16, 200.0, 1 << 20)
        );
        // Longer queries amortize the overhead in fewer of them.
        assert!(
            recommended_serve_batch(&m, 16, 2000.0, 1 << 20)
                <= recommended_serve_batch(&m, 16, 20.0, 1 << 20)
        );
    }

    #[test]
    fn recommended_serve_batch_survives_degenerate_calibration() {
        // Degenerate calibration constants used to cast a small/negative
        // finite recommendation to 0 (`n as usize` saturates at 0) before
        // the clamp; every combination here must still yield a positive,
        // lane-aligned batch within [lanes, cap].
        let degenerate = [
            0.0,               // zero overhead -> n = 0.0
            -1.0e-3,           // negative overhead -> negative finite n
            f64::NAN,          // NaN propagates through the division
            f64::INFINITY,     // inf overhead -> inf n
            -f64::INFINITY,    // -inf overhead -> -inf n
            f64::MIN_POSITIVE, // subnormal-adjacent -> n rounds to 1
        ];
        for overhead in degenerate {
            for speedup in [1.0, 0.0, f64::NAN] {
                let mut m = MachineModel::commodity();
                m.align_batch_overhead_s = overhead;
                m.simd_lane_speedup = speedup;
                for (lanes, cap) in [(1usize, 1usize), (4, 8), (16, 256)] {
                    let n = recommended_serve_batch(&m, lanes, 150.0, cap);
                    assert!(
                        n >= 1,
                        "zero-sized batch for overhead={overhead} speedup={speedup} \
                         lanes={lanes} cap={cap}"
                    );
                    assert!(n >= lanes && n <= cap.max(lanes));
                    assert_eq!(n % lanes, 0);
                }
            }
        }
        // Zero-length / NaN mean query length is also survivable.
        let m = MachineModel::commodity();
        assert!(recommended_serve_batch(&m, 4, 0.0, 64) >= 4);
        assert!(recommended_serve_batch(&m, 4, f64::NAN, 64) >= 4);
    }

    #[test]
    fn index_amortization_breaks_even_when_loading_beats_rebuilding() {
        let m = MachineModel::commodity();
        // A compact index: shard bytes well under the residue count's
        // k-mer formation cost on this machine's disk.
        let a = index_amortization(&m, 1_000_000_000, 100_000_000);
        assert!(a.build_seconds > 0.0 && a.load_seconds > 0.0);
        assert!(a.rebuild_seconds > a.load_seconds, "{a:?}");
        assert!(a.break_even_runs.is_finite() && a.break_even_runs > 1.0);
        // A bloated index on the same disk never pays for itself.
        let never = index_amortization(&m, 1_000, u64::MAX);
        assert!(never.break_even_runs.is_infinite());
        // Bigger index ⇒ later break-even.
        let b = index_amortization(&m, 1_000_000_000, 150_000_000);
        assert!(b.break_even_runs >= a.break_even_runs);
    }

    #[test]
    fn compact_columns_preserves_structure() {
        let t = Triples::from_entries(
            3,
            1_000_000,
            vec![(0, 999_999, 5u32), (1, 7, 1), (2, 999_999, 2)],
        );
        let (c, ncols) = compact_columns(&t);
        assert_eq!(ncols, 2);
        assert_eq!(c.nnz(), 3);
        // Shared column stays shared.
        let cols: Vec<Index> = c.entries.iter().map(|e| e.col).collect();
        assert_eq!(cols.iter().filter(|&&x| x == 1).count(), 2);
    }
}
