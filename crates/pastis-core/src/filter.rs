//! Candidate and edge filtering.
//!
//! Two filters bracket the aligner, as in the paper's pipeline: the
//! *common-k-mer threshold* decides which discovered candidates are worth
//! aligning (Table IV: threshold 2; only 8.9% of discovered candidates
//! were aligned in the production run), and the *ANI + coverage
//! thresholds* decide which aligned pairs enter the similarity graph
//! (0.30 / 0.70; 12.3% of aligned pairs survived).

use pastis_align::sw::AlignmentResult;

use crate::overlap::CommonKmers;
use crate::params::SearchParams;

/// The post-alignment edge filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeFilter {
    /// Minimum identity over the alignment.
    pub ani_threshold: f64,
    /// Minimum coverage of the shorter sequence.
    pub coverage_threshold: f64,
}

impl EdgeFilter {
    /// Extract the filter from search parameters.
    pub fn from_params(p: &SearchParams) -> EdgeFilter {
        EdgeFilter {
            ani_threshold: p.ani_threshold,
            coverage_threshold: p.coverage_threshold,
        }
    }

    /// Does an aligned pair enter the similarity graph?
    pub fn passes(&self, res: &AlignmentResult, qlen: usize, rlen: usize) -> bool {
        res.score > 0
            && res.identity() >= self.ani_threshold
            && res.coverage_min(qlen, rlen) >= self.coverage_threshold
    }
}

/// Does a discovered candidate get aligned at all?
#[inline]
pub fn candidate_passes(ck: &CommonKmers, threshold: u32) -> bool {
    ck.count >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::{encode, Blosum62};
    use pastis_align::sw::{sw_align, GapPenalties};

    fn filter(ani: f64, cov: f64) -> EdgeFilter {
        EdgeFilter {
            ani_threshold: ani,
            coverage_threshold: cov,
        }
    }

    #[test]
    fn identical_pair_passes_strict_filter() {
        let s = encode("MKVLAWYHEEMKVLAWYHEE").unwrap();
        let res = sw_align(&s, &s, &Blosum62, GapPenalties::pastis_defaults());
        assert!(filter(0.95, 0.95).passes(&res, s.len(), s.len()));
    }

    #[test]
    fn low_coverage_fails() {
        // Perfect identity on a short core, but poor coverage of the
        // longer sequence.
        let q = encode("MKVLA").unwrap();
        let r = encode("MKVLAWYHEEWYHEEWYHEE").unwrap();
        let res = sw_align(&q, &r, &Blosum62, GapPenalties::pastis_defaults());
        assert_eq!(res.identity(), 1.0);
        assert!(!filter(0.3, 0.7).passes(&res, q.len(), r.len()));
        // Relaxing coverage admits it.
        assert!(filter(0.3, 0.2).passes(&res, q.len(), r.len()));
    }

    #[test]
    fn zero_score_never_passes() {
        let q = encode("WWWWW").unwrap();
        let r = encode("PPPPP").unwrap();
        let res = sw_align(&q, &r, &Blosum62, GapPenalties::pastis_defaults());
        assert!(!filter(0.0, 0.0).passes(&res, q.len(), r.len()));
    }

    #[test]
    fn candidate_threshold() {
        use pastis_sparse::Semiring;
        let one = CommonKmers::seed(0, 0);
        assert!(candidate_passes(&one, 1));
        assert!(!candidate_passes(&one, 2));
        let mut two = one;
        crate::overlap::OverlapSemiring.combine(&mut two, CommonKmers::seed(1, 1));
        assert!(candidate_passes(&two, 2));
    }
}
