//! Self-tuning runtime: the telemetry→cost-model feedback loop.
//!
//! The paper's production runs hand-pick blocking, thread splits, and
//! batch sizes per machine. This module closes that loop (ROADMAP item
//! 5): the α–β cost model ([`crate::perfmodel`]) seeds the initial
//! configuration, and live telemetry — per-block sparse/align seconds,
//! cross-rank imbalance, serve-batch latency — adapts it while the run
//! is in flight.
//!
//! # What may move mid-run, and why it is safe
//!
//! The tuner only touches knobs the test suite already proves
//! *schedule-invariant* (the similarity graph and the TSV are
//! bit-identical for every value):
//!
//! - **per-engine worker caps** of the unified pool
//!   ([`pastis_pool::WorkPool::set_cap`]) — purely local scheduling;
//! - **serve admission-batch size** — the serve conformance tests prove
//!   output independence for every `max_batch`;
//! - **pre-blocking lookahead depth** — same mechanism as the memory
//!   accountant's `prefetch_paused`, which already varies it.
//!
//! Blocking (`block_rows × block_cols`) is part of the checkpoint
//! fingerprint and shapes the collective schedule, so it is chosen
//! *once, up front*, from the budget-aware cost model
//! ([`crate::perfmodel::blocking_for_budget`]) and never moved again.
//!
//! # The collective-decision protocol
//!
//! The lookahead depth shapes the collective schedule, so — exactly like
//! the memory accountant's backpressure flags — every adaptation must be
//! world-uniform. The pipeline all-reduces each rank's window telemetry
//! (integer microsecond sums, so the reduction is exact and
//! order-independent) at the top of the block loop, then every rank runs
//! the same *pure* [`decide`] on the identical reduced
//! [`TuneSnapshot`]. Same snapshot in, same knobs out, on every rank —
//! no rank ever diverges. A property test pins this purity down.

use std::fmt;

use pastis_comm::MachineModel;

/// How the runtime picks its scheduling knobs (`--tune`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TunePolicy {
    /// Leave every knob exactly as the user passed it (the default).
    #[default]
    Off,
    /// Seed from the cost model, then adapt between SUMMA stages and
    /// serve batches from live telemetry. Explicit user knobs
    /// (`--align-threads`/`--spgemm-threads` under `--threads`, serve
    /// `--batch`) still win as the starting point.
    Auto,
    /// Apply the spec's knobs once at startup and never adapt — the
    /// reproducible "hand-tuned" configuration the `kernel_autotune`
    /// gate compares `Auto` against.
    Fixed(FixedSpec),
}

/// The knob assignments of `--tune fixed:<spec>`: a comma-separated list
/// of `key=value` pairs, e.g. `fixed:spgemm=2,align=6,batch=512`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedSpec {
    /// Cap on concurrent SpGEMM workers of the unified pool.
    pub spgemm_cap: Option<usize>,
    /// Cap on concurrent alignment workers of the unified pool.
    pub align_cap: Option<usize>,
    /// Serve admission-batch size (`pastis serve`).
    pub batch: Option<usize>,
    /// Pre-blocking lookahead depth (0 disables the software pipeline).
    pub lookahead: Option<usize>,
}

impl TunePolicy {
    /// Parse a `--tune` argument: `auto`, `off`, or `fixed:<k=v,...>`.
    pub fn parse(s: &str) -> Result<TunePolicy, String> {
        match s {
            "auto" => Ok(TunePolicy::Auto),
            "off" => Ok(TunePolicy::Off),
            _ => match s.strip_prefix("fixed:") {
                Some(spec) => FixedSpec::parse(spec).map(TunePolicy::Fixed),
                None => Err(format!(
                    "unknown --tune policy '{s}' (expected auto, off, or fixed:<spec>)"
                )),
            },
        }
    }

    /// Whether this policy adapts mid-run.
    pub fn is_auto(&self) -> bool {
        matches!(self, TunePolicy::Auto)
    }
}

impl fmt::Display for TunePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunePolicy::Off => write!(f, "off"),
            TunePolicy::Auto => write!(f, "auto"),
            TunePolicy::Fixed(spec) => {
                write!(f, "fixed:")?;
                let mut sep = "";
                for (k, v) in [
                    ("spgemm", spec.spgemm_cap),
                    ("align", spec.align_cap),
                    ("batch", spec.batch),
                    ("lookahead", spec.lookahead),
                ] {
                    if let Some(v) = v {
                        write!(f, "{sep}{k}={v}")?;
                        sep = ",";
                    }
                }
                Ok(())
            }
        }
    }
}

impl FixedSpec {
    /// Parse the `key=value` list after `fixed:`.
    pub fn parse(s: &str) -> Result<FixedSpec, String> {
        let mut spec = FixedSpec::default();
        if s.is_empty() {
            return Err("empty fixed: spec (expected key=value pairs)".into());
        }
        for part in s.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed fixed: entry '{part}' (expected key=value)"))?;
            let n: usize = value
                .parse()
                .map_err(|_| format!("fixed: value '{value}' for '{key}' is not a number"))?;
            match key {
                "spgemm" => spec.spgemm_cap = Some(n),
                "align" => spec.align_cap = Some(n),
                "batch" => spec.batch = Some(n),
                "lookahead" => spec.lookahead = Some(n),
                _ => {
                    return Err(format!(
                        "unknown fixed: key '{key}' (expected spgemm, align, batch, lookahead)"
                    ))
                }
            }
        }
        // A 0-sized cap or batch is a silent no-progress configuration —
        // the same class of bug the cost model's sizing clamp guards
        // against — so reject it at parse time.
        for (k, v) in [
            ("spgemm", spec.spgemm_cap),
            ("align", spec.align_cap),
            ("batch", spec.batch),
        ] {
            if v == Some(0) {
                return Err(format!("fixed: {k}=0 would make no progress"));
            }
        }
        Ok(spec)
    }
}

/// The world-agreed telemetry a tuning decision is derived from. On a
/// multi-rank run every field is the result of a collective reduction
/// (integer microsecond sums / maxima, so the values are identical on
/// every rank); on one rank they are the local sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneSnapshot {
    /// Unified-pool size (world-uniform by construction: `--threads` is
    /// part of the params every rank shares).
    pub threads: usize,
    /// Cluster-total sparse seconds of the window, in microseconds.
    pub sparse_us: u64,
    /// Cluster-total align seconds of the window, in microseconds.
    pub align_us: u64,
    /// Slowest rank's total block seconds of the window, in microseconds.
    pub max_rank_us: u64,
    /// Sum of all ranks' block seconds of the window, in microseconds.
    pub sum_rank_us: u64,
    /// World size.
    pub ranks: u32,
}

impl TuneSnapshot {
    /// Cross-rank `max/avg` imbalance factor of the window, ×1000 and
    /// truncated — integer so every rank computes the identical value.
    /// Defined as 1000 (perfectly balanced) when the window carries no
    /// measurable work, mirroring the hardened
    /// `ImbalanceStats::imbalance_factor`.
    pub fn imbalance_milli(&self) -> u64 {
        if self.sum_rank_us == 0 || self.ranks == 0 {
            return 1000;
        }
        // factor = max / (sum / ranks) = max * ranks / sum.
        (self.max_rank_us as u128 * self.ranks as u128 * 1000 / self.sum_rank_us as u128) as u64
    }
}

/// The knob vector a decision produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneKnobs {
    /// Cap on concurrent SpGEMM workers of the unified pool.
    pub spgemm_cap: usize,
    /// Cap on concurrent alignment workers of the unified pool.
    pub align_cap: usize,
    /// Pre-blocking lookahead depth currently in effect.
    pub lookahead: usize,
}

/// Split `threads` workers between the align and sparse engines
/// proportionally to the given cost weights, each side clamped to at
/// least one worker (every sizing recommendation is ≥ 1 by
/// construction). Returns `(spgemm_cap, align_cap)`.
pub fn split_threads(threads: usize, align_weight: f64, sparse_weight: f64) -> (usize, usize) {
    if threads < 2 {
        // Nothing to split: the single thread serves both engines.
        return (1.max(threads), 1.max(threads));
    }
    let total = align_weight + sparse_weight;
    let share = if total > 0.0 && align_weight.is_finite() && total.is_finite() {
        (align_weight / total).clamp(0.0, 1.0)
    } else {
        0.5
    };
    let align = ((threads as f64 * share).round() as usize).clamp(1, threads - 1);
    (threads - align, align)
}

/// Seed the initial engine split from the α–β cost model: the modeled
/// per-candidate alignment cost (O(len²) cell updates plus the per-pair
/// driver overhead) against the modeled per-candidate sparse cost
/// (O(len) k-mer products and merges). Identical inputs on every rank —
/// machine constants and the globally-exchanged mean sequence length —
/// give an identical split on every rank.
pub fn seed_split(threads: usize, m: &MachineModel, mean_len: f64) -> (usize, usize) {
    let len = if mean_len.is_finite() && mean_len >= 1.0 {
        mean_len
    } else {
        1.0
    };
    let align_cost =
        len * len / (m.gcups_per_gpu.max(1e-9) * 1e9) + m.align_overhead_per_pair.max(0.0);
    let sparse_cost = len / m.spgemm_products_per_sec.max(1.0) + len / m.merge_nnz_per_sec.max(1.0);
    split_threads(threads, align_cost, sparse_cost)
}

/// One adaptation step: re-split the engine caps toward the observed
/// sparse/align time ratio and gate the lookahead depth on cross-rank
/// imbalance. **Pure**: the output depends only on the arguments, so
/// ranks holding the same broadcast snapshot always agree (the property
/// test in this module generates random snapshots and checks exactly
/// this).
///
/// Damping: the split moves at most one worker per decision toward the
/// proportional target, so a single noisy window cannot flip the
/// schedule; the target itself is recomputed every window.
///
/// `max_lookahead` is the configured depth (`--pre-blocking`); the tuner
/// only ever *lowers* it — under heavy cross-rank imbalance (factor over
/// 2x) prefetching ahead of a straggler-stretched schedule holds extra
/// memory for no hiding benefit — and restores it when balance returns.
pub fn decide(cur: &TuneKnobs, snap: &TuneSnapshot, max_lookahead: usize) -> TuneKnobs {
    let mut next = *cur;
    // Lookahead: world-uniform because the snapshot is.
    next.lookahead = if snap.imbalance_milli() > 2000 {
        0
    } else {
        max_lookahead
    };
    let t = snap.threads;
    let total = snap.sparse_us + snap.align_us;
    if t < 2 || total == 0 {
        return next;
    }
    // Integer proportional target: round(t * align / total), in [1, t-1].
    let target_align =
        ((snap.align_us as u128 * t as u128 + (total / 2) as u128) / total as u128) as usize;
    let target_align = target_align.clamp(1, t - 1);
    let cur_align = cur.align_cap.clamp(1, t - 1);
    let align = match target_align.cmp(&cur_align) {
        std::cmp::Ordering::Greater => cur_align + 1,
        std::cmp::Ordering::Less => cur_align - 1,
        std::cmp::Ordering::Equal => cur_align,
    };
    next.align_cap = align;
    next.spgemm_cap = t - align;
    next
}

/// Modeled target wall time of one serve batch, microseconds: the batch
/// is sized so the fixed per-batch overhead amortizes to ≤10% of useful
/// work, so the useful work should take about 10× the overhead.
pub fn serve_batch_target_us(m: &MachineModel) -> u64 {
    let us = m.align_batch_overhead_s * 10.0 * 1e6;
    if us.is_finite() && us >= 1.0 {
        us as u64
    } else {
        1
    }
}

/// One serve-side adaptation step: resize the admission batch from the
/// last batch's observed wall time. **Pure** — serving is single-process
/// so no collective is needed, but purity keeps the decision replayable
/// and testable. The batch doubles when a *full* batch still finished in
/// under a quarter of the target (admission, not compute, is the
/// bottleneck) and halves when it overshot 4× (tail latency), always
/// staying lane-aligned within `[lanes, cap]` and never 0.
pub fn adapt_serve_batch(
    cur: usize,
    lanes: usize,
    cap: usize,
    batch_len: usize,
    batch_wall_us: u64,
    target_us: u64,
) -> usize {
    let lanes = lanes.max(1);
    let cap = cap.max(lanes);
    let cur = cur.clamp(lanes, cap);
    let target = target_us.max(1);
    let next = if batch_wall_us > target.saturating_mul(4) {
        cur / 2
    } else if batch_len >= cur && batch_wall_us.saturating_mul(4) < target {
        cur.saturating_mul(2)
    } else {
        cur
    };
    let next = next.clamp(lanes, cap);
    (next - next % lanes).max(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn policy_parses_and_round_trips() {
        assert_eq!(TunePolicy::parse("auto").unwrap(), TunePolicy::Auto);
        assert_eq!(TunePolicy::parse("off").unwrap(), TunePolicy::Off);
        let fixed = TunePolicy::parse("fixed:spgemm=2,align=6,batch=512,lookahead=1").unwrap();
        match &fixed {
            TunePolicy::Fixed(s) => {
                assert_eq!(s.spgemm_cap, Some(2));
                assert_eq!(s.align_cap, Some(6));
                assert_eq!(s.batch, Some(512));
                assert_eq!(s.lookahead, Some(1));
            }
            other => panic!("parsed {other:?}"),
        }
        // Display round-trips through parse.
        assert_eq!(TunePolicy::parse(&fixed.to_string()).unwrap(), fixed);
        assert_eq!(TunePolicy::default(), TunePolicy::Off);
    }

    #[test]
    fn policy_rejects_nonsense() {
        assert!(TunePolicy::parse("on").is_err());
        assert!(TunePolicy::parse("fixed:").is_err());
        assert!(TunePolicy::parse("fixed:spgemm").is_err());
        assert!(TunePolicy::parse("fixed:spgemm=x").is_err());
        assert!(TunePolicy::parse("fixed:warp=9").is_err());
        // 0-sized knobs are the no-progress class the sizing clamp
        // exists for; rejected up front.
        assert!(TunePolicy::parse("fixed:batch=0").is_err());
        assert!(TunePolicy::parse("fixed:align=0").is_err());
        assert!(TunePolicy::parse("fixed:spgemm=0").is_err());
        // lookahead=0 is a legitimate "disable pre-blocking".
        assert!(TunePolicy::parse("fixed:lookahead=0").is_ok());
    }

    #[test]
    fn split_is_proportional_clamped_and_total_preserving() {
        // Balanced weights on 4 threads: 2/2.
        assert_eq!(split_threads(4, 1.0, 1.0), (2, 2));
        // Align-dominated: align side grows but sparse keeps ≥ 1.
        assert_eq!(split_threads(4, 100.0, 1.0), (1, 3));
        assert_eq!(split_threads(8, 1.0, 100.0), (7, 1));
        // Degenerate weights fall back to an even split, never 0.
        for (a, s) in [(0.0, 0.0), (f64::NAN, 1.0), (f64::INFINITY, 1.0)] {
            let (sp, al) = split_threads(4, a, s);
            assert!(sp >= 1 && al >= 1, "weights ({a},{s}) -> ({sp},{al})");
            assert_eq!(sp + al, 4);
        }
        // 1 thread (or a degenerate 0): both engines share one worker —
        // every sizing recommendation is ≥ 1, never 0.
        assert_eq!(split_threads(1, 5.0, 1.0), (1, 1));
        assert_eq!(split_threads(0, 1.0, 1.0), (1, 1));
    }

    #[test]
    fn seed_split_tracks_the_cost_model() {
        let m = MachineModel::commodity();
        // Long sequences: O(len²) alignment dwarfs O(len) sparse work.
        let (sp_long, al_long) = seed_split(8, &m, 5000.0);
        // Short sequences shift weight back toward the sparse side.
        let (_sp_short, al_short) = seed_split(8, &m, 10.0);
        assert!(al_long >= al_short);
        assert!(sp_long >= 1 && al_long >= 1);
        // Degenerate mean lengths never panic or return 0.
        for len in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let (sp, al) = seed_split(4, &m, len);
            assert!(sp >= 1 && al >= 1);
        }
    }

    #[test]
    fn decide_moves_one_worker_toward_the_observed_ratio() {
        let cur = TuneKnobs {
            spgemm_cap: 2,
            align_cap: 2,
            lookahead: 1,
        };
        // Align-dominated window: one worker moves align-ward.
        let snap = TuneSnapshot {
            threads: 4,
            sparse_us: 100,
            align_us: 900,
            max_rank_us: 1000,
            sum_rank_us: 1000,
            ranks: 1,
        };
        let next = decide(&cur, &snap, 1);
        assert_eq!((next.spgemm_cap, next.align_cap), (1, 3));
        assert_eq!(next.lookahead, 1);
        // Converged: a second identical window holds the split.
        let again = decide(&next, &snap, 1);
        assert_eq!(again, next);
        // Sparse-dominated window moves back.
        let sparse_heavy = TuneSnapshot {
            sparse_us: 900,
            align_us: 100,
            ..snap
        };
        let back = decide(&next, &sparse_heavy, 1);
        assert_eq!((back.spgemm_cap, back.align_cap), (2, 2));
    }

    #[test]
    fn decide_is_inert_without_signal_or_threads() {
        let cur = TuneKnobs {
            spgemm_cap: 3,
            align_cap: 1,
            lookahead: 1,
        };
        // Empty window: caps untouched.
        let empty = TuneSnapshot {
            threads: 4,
            sparse_us: 0,
            align_us: 0,
            max_rank_us: 0,
            sum_rank_us: 0,
            ranks: 4,
        };
        let next = decide(&cur, &empty, 1);
        assert_eq!((next.spgemm_cap, next.align_cap), (3, 1));
        // Single thread: nothing to split.
        let one = TuneSnapshot {
            threads: 1,
            sparse_us: 500,
            align_us: 500,
            max_rank_us: 1000,
            sum_rank_us: 1000,
            ranks: 1,
        };
        let next = decide(&cur, &one, 1);
        assert_eq!((next.spgemm_cap, next.align_cap), (3, 1));
    }

    #[test]
    fn lookahead_drops_under_heavy_imbalance_and_recovers() {
        let cur = TuneKnobs {
            spgemm_cap: 2,
            align_cap: 2,
            lookahead: 1,
        };
        // One rank 3× the average: factor 3000 milli > 2000.
        let skewed = TuneSnapshot {
            threads: 4,
            sparse_us: 500,
            align_us: 500,
            max_rank_us: 750,
            sum_rank_us: 1000,
            ranks: 4,
        };
        assert_eq!(skewed.imbalance_milli(), 3000);
        assert_eq!(decide(&cur, &skewed, 1).lookahead, 0);
        // Balance restored: the configured depth comes back.
        let balanced = TuneSnapshot {
            max_rank_us: 260,
            ..skewed
        };
        assert_eq!(decide(&cur, &balanced, 1).lookahead, 1);
        // The tuner never raises lookahead above the configured depth.
        assert_eq!(decide(&cur, &balanced, 0).lookahead, 0);
    }

    #[test]
    fn imbalance_milli_is_defined_on_empty_windows() {
        let empty = TuneSnapshot {
            threads: 4,
            sparse_us: 0,
            align_us: 0,
            max_rank_us: 0,
            sum_rank_us: 0,
            ranks: 0,
        };
        assert_eq!(empty.imbalance_milli(), 1000);
    }

    #[test]
    fn serve_batch_adaptation_is_bounded_and_lane_aligned() {
        let target = 10_000u64;
        // Fast full batch doubles.
        assert_eq!(adapt_serve_batch(64, 4, 1024, 64, 100, target), 128);
        // Slow batch halves.
        assert_eq!(adapt_serve_batch(64, 4, 1024, 64, 100_000, target), 32);
        // Partial fast batch holds (admission-bound, not size-bound).
        assert_eq!(adapt_serve_batch(64, 4, 1024, 7, 100, target), 64);
        // Never leaves [lanes, cap], never 0, always lane-aligned.
        assert_eq!(adapt_serve_batch(4, 4, 1024, 4, 100_000, target), 4);
        assert_eq!(adapt_serve_batch(1024, 4, 1024, 1024, 1, target), 1024);
        for cur in [0usize, 1, 3, 5, 1000] {
            let n = adapt_serve_batch(cur, 8, 256, cur, 1, target);
            assert!((8..=256).contains(&n) && n % 8 == 0);
        }
        // Degenerate target from a broken model is clamped, not divided by.
        assert!(adapt_serve_batch(64, 4, 1024, 64, 1, 0) >= 4);
        assert!(serve_batch_target_us(&MachineModel::commodity()) >= 1);
        let mut broken = MachineModel::commodity();
        broken.align_batch_overhead_s = f64::NAN;
        assert_eq!(serve_batch_target_us(&broken), 1);
    }

    proptest! {
        /// The collective-decision contract: a tuning decision is a pure
        /// function of the broadcast snapshot — two ranks holding the
        /// same snapshot (and current knobs) always compute the same
        /// next knobs, and those knobs are always a sane partition.
        #[test]
        fn decision_is_pure_and_sane(
            threads in 1usize..64,
            sparse_us in 0u64..1_000_000_000,
            align_us in 0u64..1_000_000_000,
            max_frac in 0u64..4000,
            ranks in 1u32..4096,
            cur_align in 1usize..64,
            lookahead in 0usize..3,
        ) {
            let sum_rank_us = sparse_us + align_us;
            // max ≤ sum, scaled deterministically from the fraction.
            let max_rank_us = (sum_rank_us as u128 * max_frac as u128 / 4000) as u64;
            let snap = TuneSnapshot {
                threads, sparse_us, align_us, max_rank_us, sum_rank_us, ranks,
            };
            let cur = TuneKnobs {
                spgemm_cap: threads.saturating_sub(cur_align).max(1),
                align_cap: cur_align,
                lookahead,
            };
            // Purity: every "rank" recomputes the identical decision.
            let a = decide(&cur, &snap, lookahead);
            let b = decide(&cur.clone(), &snap.clone(), lookahead);
            prop_assert_eq!(a, b);
            // Sanity: caps stay ≥ 1 and partition the pool when there is
            // anything to split.
            prop_assert!(a.align_cap >= 1);
            prop_assert!(a.spgemm_cap >= 1);
            if threads >= 2 && sparse_us + align_us > 0 {
                prop_assert_eq!(a.align_cap + a.spgemm_cap, threads);
                prop_assert!(a.align_cap < threads);
            }
            prop_assert!(a.lookahead <= lookahead);
            // The serve-side decision is pure too.
            let x = adapt_serve_batch(cur_align, 4, 256, cur_align, sparse_us, 10_000);
            let y = adapt_serve_batch(cur_align, 4, 256, cur_align, sparse_us, 10_000);
            prop_assert_eq!(x, y);
            prop_assert!(x >= 1);
        }
    }
}
