//! Symmetry-aware load balancing of the blocked overlap computation
//! (Section VI-B, Figure 6).
//!
//! The overlap matrix is symmetric: `C(i,j)` and `C(j,i)` represent the
//! same alignment. Two schemes exploit this:
//!
//! * **Triangularity-based**: only blocks intersecting the strict upper
//!   triangle are computed. Blocks are *full* (entirely above the
//!   diagonal — every element needs alignment), *partial* (straddling the
//!   diagonal — only the upper part is aligned), or *avoidable* (entirely
//!   below — neither computed nor aligned). Saves sparse computation but
//!   partial blocks cause load imbalance (a rank's share of a partial
//!   block may be mostly lower-triangular).
//! * **Index-based**: all blocks are computed, then pruned by the parity
//!   rule ([`pastis_sparse::spops::parity_keep`]), which keeps exactly one
//!   of each `(i,j)/(j,i)` pair while preserving the uniform nonzero
//!   distribution — better balance, no sparse savings.
//!
//! Both schemes align every unordered pair exactly once (property-tested
//! in `tests/determinism.rs`).

use pastis_sparse::spops::{parity_keep, parity_prune, triu_prune_global};
use pastis_sparse::{CsrMatrix, Index};

/// The two schemes of Section VI-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadBalance {
    /// Triangularity-based (skip avoidable blocks).
    Triangular,
    /// Index-based (parity pruning, all blocks computed).
    IndexBased,
}

/// Classification of an output block against the strict upper triangle
/// (Figure 6 left: green/yellow/white).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockClass {
    /// Entirely strictly-upper: all computed elements are aligned.
    Full,
    /// Straddles the diagonal: computed, then pruned to the upper part.
    Partial,
    /// Entirely lower: neither computed nor aligned.
    Avoidable,
}

/// One schedulable output block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTask {
    /// Block row index in `0..br`.
    pub r: usize,
    /// Block column index in `0..bc`.
    pub c: usize,
    /// Triangularity class of the block.
    pub class: BlockClass,
}

/// Classify block `(r, c)` whose global element ranges are rows
/// `[r0, r1)` and columns `[c0, c1)`.
pub fn classify_block(r0: usize, r1: usize, c0: usize, c1: usize) -> BlockClass {
    debug_assert!(r0 < r1 && c0 < c1, "empty block range");
    // Strictly upper for all elements: min col > max row.
    if c0 > r1 - 1 {
        BlockClass::Full
    } else if c1 - 1 <= r0 {
        // Max col ≤ min row: no element with j > i.
        BlockClass::Avoidable
    } else {
        BlockClass::Partial
    }
}

/// The block schedule of one search: which blocks are computed, in which
/// order, and how each computed block is pruned before alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    scheme: LoadBalance,
    /// Blocks to compute, row-major.
    pub tasks: Vec<BlockTask>,
    skipped: usize,
}

impl BlockPlan {
    /// Build the schedule for an `n × n` overlap matrix blocked `br × bc`,
    /// where `row_range(r)`/`col_range(c)` give the global element ranges
    /// (as produced by [`pastis_sparse::BlockedSumma`]).
    pub fn new(
        scheme: LoadBalance,
        br: usize,
        bc: usize,
        row_range: impl Fn(usize) -> (usize, usize),
        col_range: impl Fn(usize) -> (usize, usize),
    ) -> BlockPlan {
        let mut tasks = Vec::with_capacity(br * bc);
        let mut skipped = 0;
        for r in 0..br {
            for c in 0..bc {
                let (r0, r1) = row_range(r);
                let (c0, c1) = col_range(c);
                if r0 == r1 || c0 == c1 {
                    continue; // degenerate empty stripe
                }
                let class = classify_block(r0, r1, c0, c1);
                match scheme {
                    LoadBalance::Triangular => {
                        if class == BlockClass::Avoidable {
                            skipped += 1;
                        } else {
                            tasks.push(BlockTask { r, c, class });
                        }
                    }
                    LoadBalance::IndexBased => tasks.push(BlockTask { r, c, class }),
                }
            }
        }
        BlockPlan {
            scheme,
            tasks,
            skipped,
        }
    }

    /// The scheme this plan implements.
    pub fn scheme(&self) -> LoadBalance {
        self.scheme
    }

    /// Number of blocks skipped entirely (triangularity only).
    pub fn skipped_blocks(&self) -> usize {
        self.skipped
    }

    /// Counts of (full, partial) among scheduled tasks.
    pub fn class_counts(&self) -> (usize, usize) {
        let full = self
            .tasks
            .iter()
            .filter(|t| t.class == BlockClass::Full)
            .count();
        let partial = self
            .tasks
            .iter()
            .filter(|t| t.class == BlockClass::Partial)
            .count();
        (full, partial)
    }

    /// Prune a computed block's local piece to the elements this scheme
    /// aligns. `row_offset`/`col_offset` are the global coordinates of the
    /// piece's `(0, 0)` element (block offset + intra-block distribution
    /// offset).
    pub fn prune_local<T: Clone>(
        &self,
        task: BlockTask,
        local: &CsrMatrix<T>,
        row_offset: usize,
        col_offset: usize,
    ) -> CsrMatrix<T> {
        match self.scheme {
            LoadBalance::Triangular => match task.class {
                BlockClass::Full => local.clone(),
                BlockClass::Partial => triu_prune_global(local, row_offset, col_offset),
                BlockClass::Avoidable => {
                    unreachable!("avoidable blocks are never computed")
                }
            },
            LoadBalance::IndexBased => parity_prune(local, row_offset, col_offset),
        }
    }

    /// Whether this scheme keeps global element `(i, j)` for alignment
    /// (the pure decision function; used by the performance model, which
    /// never materializes local blocks).
    pub fn keeps(&self, i: Index, j: Index) -> bool {
        match self.scheme {
            LoadBalance::Triangular => j > i,
            LoadBalance::IndexBased => parity_keep(i, j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_comm::grid::BlockDist1D;
    use pastis_sparse::Triples;

    fn ranges(n: usize, parts: usize) -> impl Fn(usize) -> (usize, usize) {
        let d = BlockDist1D::new(n, parts);
        move |i| {
            let s = d.part_offset(i);
            (s, s + d.part_len(i))
        }
    }

    #[test]
    fn classify_against_diagonal() {
        // Block rows 0..3, cols 5..8: strictly upper.
        assert_eq!(classify_block(0, 3, 5, 8), BlockClass::Full);
        // Block rows 5..8, cols 0..3: strictly lower.
        assert_eq!(classify_block(5, 8, 0, 3), BlockClass::Avoidable);
        // Diagonal block.
        assert_eq!(classify_block(2, 5, 2, 5), BlockClass::Partial);
        // Touching: rows 0..3, cols 3..6 -> element (2,3) is upper, all
        // elements have j >= 3 > i <= 2: full.
        assert_eq!(classify_block(0, 3, 3, 6), BlockClass::Full);
        // rows 3..6, cols 0..3: max col 2 <= min row 3: avoidable.
        assert_eq!(classify_block(3, 6, 0, 3), BlockClass::Avoidable);
    }

    #[test]
    fn triangular_plan_counts() {
        // Square b×b blocking of a 12×12 matrix: b(b-1)/2 full,
        // b partial (diagonal), b(b-1)/2 avoidable.
        for b in [2usize, 3, 4, 6] {
            let plan = BlockPlan::new(LoadBalance::Triangular, b, b, ranges(12, b), ranges(12, b));
            let (full, partial) = plan.class_counts();
            assert_eq!(full, b * (b - 1) / 2, "b={b}");
            assert_eq!(partial, b, "b={b}");
            assert_eq!(plan.skipped_blocks(), b * (b - 1) / 2);
            assert_eq!(plan.tasks.len(), full + partial);
        }
    }

    #[test]
    fn full_blocks_grow_quadratically_partial_linearly() {
        // The paper's argument for why triangular imbalance fades with
        // more blocks.
        let count = |b: usize| {
            BlockPlan::new(
                LoadBalance::Triangular,
                b,
                b,
                ranges(100, b),
                ranges(100, b),
            )
            .class_counts()
        };
        let (f5, p5) = count(5);
        let (f10, p10) = count(10);
        assert_eq!(p10, 2 * p5);
        assert_eq!(f10, 45); // vs f5 = 10: superlinear
        assert!(f10 > 4 * f5 - 5);
    }

    #[test]
    fn index_plan_schedules_everything() {
        let plan = BlockPlan::new(LoadBalance::IndexBased, 3, 4, ranges(12, 3), ranges(12, 4));
        assert_eq!(plan.tasks.len(), 12);
        assert_eq!(plan.skipped_blocks(), 0);
    }

    #[test]
    fn keeps_covers_each_pair_exactly_once() {
        for scheme in [LoadBalance::Triangular, LoadBalance::IndexBased] {
            let plan = BlockPlan::new(scheme, 1, 1, ranges(9, 1), ranges(9, 1));
            for i in 0..9u32 {
                assert!(!plan.keeps(i, i), "{scheme:?} keeps diagonal ({i},{i})");
                for j in 0..9u32 {
                    if i != j {
                        assert!(
                            plan.keeps(i, j) ^ plan.keeps(j, i),
                            "{scheme:?} pair ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prune_local_triangular_full_block_untouched() {
        let plan = BlockPlan::new(LoadBalance::Triangular, 2, 2, ranges(8, 2), ranges(8, 2));
        let full_task = plan
            .tasks
            .iter()
            .copied()
            .find(|t| t.class == BlockClass::Full)
            .unwrap();
        let m = CsrMatrix::from_triples(Triples::from_entries(2, 2, vec![(0, 0, 1u8), (1, 1, 2)]));
        // A full block keeps everything regardless of offsets.
        let pruned = plan.prune_local(full_task, &m, 0, 4);
        assert_eq!(pruned, m);
    }

    #[test]
    fn prune_local_partial_block_keeps_upper_only() {
        let plan = BlockPlan::new(LoadBalance::Triangular, 2, 2, ranges(8, 2), ranges(8, 2));
        let partial = plan
            .tasks
            .iter()
            .copied()
            .find(|t| t.class == BlockClass::Partial)
            .unwrap();
        // A dense 3x3 local piece at global (1,1): keep j > i.
        let mut t = Triples::new(3, 3);
        for i in 0..3u32 {
            for j in 0..3u32 {
                t.push(i, j, ());
            }
        }
        let m = CsrMatrix::from_triples(t);
        let pruned = plan.prune_local(partial, &m, 1, 1);
        assert_eq!(pruned.nnz(), 3);
        for (i, j, _) in pruned.iter() {
            assert!(j + 1 > i + 1 && j > i);
        }
    }

    #[test]
    fn prune_local_index_based_uses_parity_on_globals() {
        let plan = BlockPlan::new(LoadBalance::IndexBased, 2, 2, ranges(8, 2), ranges(8, 2));
        let task = plan.tasks[0];
        let mut t = Triples::new(4, 4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                t.push(i, j, ());
            }
        }
        let m = CsrMatrix::from_triples(t);
        let pruned = plan.prune_local(task, &m, 0, 0);
        // 4x4 dense symmetric window at origin: exactly one per pair.
        assert_eq!(pruned.nnz(), 6);
    }

    #[test]
    fn rectangular_blocking_is_supported() {
        // br=3, bc=4 (as in Figure 4's 3×4 example).
        let plan = BlockPlan::new(LoadBalance::Triangular, 3, 4, ranges(12, 3), ranges(12, 4));
        assert!(plan.tasks.len() < 12);
        assert!(plan.skipped_blocks() > 0);
        assert_eq!(plan.tasks.len() + plan.skipped_blocks(), 12);
    }
}
