//! The unified intra-rank worker pool shared by the sparse (SpGEMM) and
//! alignment engines.
//!
//! Both engines self-schedule the same way: a batch is split into units, a
//! shared atomic counter hands units to whichever thread asks next, and the
//! results are re-assembled **in unit order** so the output is bit-identical
//! for any worker count. Historically each engine owned its own scoped
//! thread team (`--spgemm-threads` / `--align-threads`), which leaves one
//! team idle while the other is busy — exactly the slack the block-level
//! overlap of Section VI-C creates, where block *i*'s alignment runs
//! concurrently with block *i+1*'s SpGEMM.
//!
//! This crate extracts that claim machinery into one process-wide pool:
//!
//! * **One team of persistent workers** ([`WorkPool::new`]) serves jobs
//!   from either engine; an idle sparse worker *steals* alignment units
//!   and vice versa ([`WorkPool::steals`] counts engine switches).
//! * **Per-engine caps** ([`WorkPool::set_cap`]) bound how many workers
//!   may serve one engine concurrently — the compatibility story for the
//!   old static split, now an upper bound instead of a partition.
//! * **The submitting thread helps**: [`WorkPool::run`] drains its own job
//!   alongside the workers (bypassing caps — a cap of zero still
//!   completes), so a job never waits on a fully-busy pool.
//!
//! Determinism is inherited, not re-proven: unit claims race, but every
//! unit's result lands in its own slot and [`WorkPool::run`] returns the
//! slots in unit order, so callers see exactly what a serial loop would
//! have produced. Pool workers never touch the communicator — the
//! submitting thread remains the only collective-issuing thread, keeping
//! the SPMD collective order identical on every rank.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Which engine a job belongs to. Caps and steal accounting key off this;
/// the claim machinery itself is engine-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Local SpGEMM row-chunk work (the SUMMA stage multiply).
    Sparse = 0,
    /// Batch-alignment chunk/lane work.
    Align = 1,
}

/// Number of [`Engine`] variants (cap/active array size).
const ENGINES: usize = 2;

impl Engine {
    fn idx(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (telemetry labels, error messages).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Sparse => "sparse",
            Engine::Align => "align",
        }
    }
}

/// One submitted batch: a unit counter plus the lifetime-erased work
/// closure. Workers claim `next` until it passes `n_units`; each completed
/// unit bumps `done`, and the submitter waits on `done_cv` for the last.
struct Job {
    engine: Engine,
    n_units: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    done_cv: Condvar,
    /// Borrow of the submitter's stack closure with the lifetime erased.
    /// Sound because [`WorkPool::run`] blocks until `done == n_units`
    /// (every dereference happens-before the submitter returns), and a
    /// worker that loses the claim race never dereferences it at all.
    work: *const (dyn Fn(usize, usize) + Sync),
}

// SAFETY: `work` is the only non-auto-Send/Sync field. It is dereferenced
// only under a successful unit claim, and the submitter keeps the pointee
// alive until every claimed unit has completed (see `Job::work`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n_units
    }

    /// Claim and run units until the counter is exhausted. `slot` is the
    /// executing thread's identity, forwarded to the work closure for
    /// telemetry (it never affects which unit runs what).
    fn work_on(&self, slot: usize) {
        loop {
            let u = self.next.fetch_add(1, Ordering::Relaxed);
            if u >= self.n_units {
                return;
            }
            // SAFETY: the claim above is unique to this thread, and the
            // submitter is still blocked in `run`, keeping the closure and
            // the result slots alive (see the `work` field invariant).
            unsafe { (*self.work)(u, slot) };
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.n_units {
                self.done_cv.notify_all();
            }
        }
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().unwrap();
        while *done < self.n_units {
            done = self.done_cv.wait(done).unwrap();
        }
    }
}

/// State shared by the workers and every `WorkPool` clone.
struct PoolInner {
    /// Open jobs (completed jobs are removed by their submitter).
    jobs: Mutex<Vec<Arc<Job>>>,
    /// Wakes workers on job submission, cap release, and shutdown.
    cv: Condvar,
    shutdown: AtomicBool,
    /// Engine switches by persistent workers (cross-engine steals).
    steals: AtomicU64,
    /// Workers currently serving each engine.
    active: [AtomicUsize; ENGINES],
    /// Per-engine concurrency bound (`usize::MAX` = uncapped).
    caps: [AtomicUsize; ENGINES],
}

impl PoolInner {
    /// Reserve a worker slot on `e`'s engine if its cap allows.
    fn try_enter(&self, e: Engine) -> bool {
        let cap = self.caps[e.idx()].load(Ordering::Relaxed);
        let active = &self.active[e.idx()];
        loop {
            let cur = active.load(Ordering::Relaxed);
            if cur >= cap {
                return false;
            }
            if active
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    fn leave(&self, e: Engine) {
        self.active[e.idx()].fetch_sub(1, Ordering::AcqRel);
        // A cap slot freed up — a worker parked on a capped engine can
        // retry.
        let _guard = self.jobs.lock().unwrap();
        self.cv.notify_all();
    }
}

/// Persistent worker body: wait for a job whose engine has cap headroom,
/// drain it, repeat. Workers never issue collectives and never submit —
/// they only execute.
fn worker_loop(inner: &PoolInner, slot: usize) {
    let mut last_engine: Option<Engine> = None;
    loop {
        let job: Arc<Job> = {
            let mut jobs = inner.jobs.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(j) = jobs
                    .iter()
                    .find(|j| j.has_work() && inner.try_enter(j.engine))
                {
                    break Arc::clone(j);
                }
                jobs = inner.cv.wait(jobs).unwrap();
            }
        };
        // A steal is a persistent worker switching engines: it was last
        // useful to one side and is now absorbing the other side's units.
        if last_engine.is_some_and(|e| e != job.engine) {
            inner.steals.fetch_add(1, Ordering::Relaxed);
        }
        last_engine = Some(job.engine);
        job.work_on(slot);
        inner.leave(job.engine);
    }
}

/// Owns the worker threads; dropped when the last `WorkPool` clone goes.
struct PoolHandle {
    inner: Arc<PoolInner>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            // Store-then-notify under the jobs lock: a worker re-checks
            // `shutdown` under the same lock before waiting, so the wakeup
            // cannot be lost.
            let _guard = self.inner.jobs.lock().unwrap();
            self.inner.cv.notify_all();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// The unified worker pool. Cheap to clone (all clones share the same
/// workers); the threads shut down when the last clone is dropped.
#[derive(Clone)]
pub struct WorkPool {
    handle: Arc<PoolHandle>,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.threads())
            .field("steals", &self.steals())
            .finish()
    }
}

impl WorkPool {
    /// A pool of `threads` persistent workers; `0` means one per available
    /// core. Submitting threads additionally help drain their own jobs, so
    /// a job sees up to `threads + 1` executing threads.
    pub fn new(threads: usize) -> WorkPool {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        WorkPool::with_exact_workers(threads)
    }

    /// A pool of exactly `workers` persistent workers — including zero
    /// (callers then drain their own jobs alone). Unlike [`WorkPool::new`],
    /// `0` is taken literally rather than meaning "auto".
    pub fn with_exact_workers(threads: usize) -> WorkPool {
        let inner = Arc::new(PoolInner {
            jobs: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            active: [AtomicUsize::new(0), AtomicUsize::new(0)],
            caps: [AtomicUsize::new(usize::MAX), AtomicUsize::new(usize::MAX)],
        });
        let handles = (0..threads)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, slot))
            })
            .collect();
        WorkPool {
            handle: Arc::new(PoolHandle {
                inner,
                threads,
                handles: Mutex::new(handles),
            }),
        }
    }

    /// A pool sized for `total` concurrently-working threads *including*
    /// the submitting thread (`0` = one per available core): spawns
    /// `total - 1` persistent workers. `total == 1` yields a pool with no
    /// persistent workers at all — every job runs entirely on its caller,
    /// which is exactly the serial execution order. This is the `--threads`
    /// knob's constructor.
    pub fn sized(total: usize) -> WorkPool {
        let total = if total == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            total
        };
        WorkPool::with_exact_workers(total - 1)
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.handle.threads
    }

    /// Cross-engine steals so far: how many times a persistent worker
    /// switched from one engine's job to the other's. Zero on a
    /// single-engine workload.
    pub fn steals(&self) -> u64 {
        self.handle.inner.steals.load(Ordering::Relaxed)
    }

    /// Bound how many persistent workers may serve `engine` concurrently
    /// (`None` lifts the bound). The submitting thread bypasses the cap —
    /// even `Some(0)` completes, just without pool help.
    pub fn set_cap(&self, engine: Engine, cap: Option<usize>) {
        self.handle.inner.caps[engine.idx()].store(cap.unwrap_or(usize::MAX), Ordering::Relaxed);
        let _guard = self.handle.inner.jobs.lock().unwrap();
        self.handle.inner.cv.notify_all();
    }

    /// The slot id [`WorkPool::run`] executes under when the submitting
    /// thread claims units of its own `engine` job. Persistent workers use
    /// slots `0..threads()`; caller slots sit above them so telemetry can
    /// tell the two apart.
    pub fn caller_slot(&self, engine: Engine) -> usize {
        self.handle.threads + engine.idx()
    }

    /// Execute `work(unit, slot)` exactly once for every `unit < n_units`
    /// across the pool (plus the calling thread), returning the results
    /// **in unit order** — bit-identical to a serial `(0..n_units).map`
    /// regardless of worker count, caps, or concurrent jobs. `slot` is the
    /// executing thread's identity (`0..threads()` for pool workers,
    /// [`WorkPool::caller_slot`] for the caller) for telemetry tracks.
    ///
    /// Blocks until the whole job is done. Concurrent `run` calls from
    /// different threads interleave freely at unit granularity.
    pub fn run<R, F>(&self, engine: Engine, n_units: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        if n_units == 0 {
            return Vec::new();
        }
        let slots: Vec<Slot<R>> = (0..n_units).map(|_| Slot(UnsafeCell::new(None))).collect();
        let slots_ref = &slots;
        let closure = move |unit: usize, slot: usize| {
            let r = work(unit, slot);
            // SAFETY: `unit` was claimed exactly once (fetch_add), so this
            // thread has exclusive access to its slot; the Vec outlives the
            // job because `run` waits for completion below.
            unsafe { *slots_ref[unit].0.get() = Some(r) };
        };
        let erased: &(dyn Fn(usize, usize) + Sync) = &closure;
        // SAFETY: lifetime erasure only. `run` does not return before
        // `wait_done` observes every unit complete, and exhausted claims
        // never dereference the pointer, so no use can outlive `closure`.
        let work_ptr = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                &'static (dyn Fn(usize, usize) + Sync),
            >(erased) as *const (dyn Fn(usize, usize) + Sync)
        };
        let job = Arc::new(Job {
            engine,
            n_units,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            work: work_ptr,
        });
        {
            let mut jobs = self.handle.inner.jobs.lock().unwrap();
            jobs.push(Arc::clone(&job));
            self.handle.inner.cv.notify_all();
        }
        // Help drain our own job (cap-exempt), then wait out any units
        // other threads are still finishing.
        job.work_on(self.caller_slot(engine));
        job.wait_done();
        {
            let mut jobs = self.handle.inner.jobs.lock().unwrap();
            jobs.retain(|j| !Arc::ptr_eq(j, &job));
        }
        slots
            .into_iter()
            .map(|s| s.0.into_inner().expect("every unit ran exactly once"))
            .collect()
    }
}

/// One result cell. Exclusive access per cell follows from the unique unit
/// claim, so sharing the Vec across workers is sound.
struct Slot<R>(UnsafeCell<Option<R>>);

// SAFETY: cells are written at most once, by the unique claimant of the
// matching unit, and read only after the job's completion barrier.
unsafe impl<R: Send> Sync for Slot<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn zero_threads_means_auto() {
        assert!(WorkPool::new(0).threads() >= 1);
        assert_eq!(WorkPool::new(3).threads(), 3);
    }

    #[test]
    fn sized_counts_the_caller() {
        assert_eq!(WorkPool::sized(4).threads(), 3);
        // `--threads 1` = serial: no persistent workers, caller-only jobs.
        let serial = WorkPool::sized(1);
        assert_eq!(serial.threads(), 0);
        let got = serial.run(Engine::Align, 40, |u, slot| (u, slot));
        assert_eq!(
            got,
            (0..40)
                .map(|u| (u, serial.caller_slot(Engine::Align)))
                .collect::<Vec<_>>()
        );
        assert!(WorkPool::sized(0).threads() + 1 >= 1);
    }

    #[test]
    fn results_come_back_in_unit_order() {
        let pool = WorkPool::new(4);
        let want: Vec<usize> = (0..257).map(|u| u * u).collect();
        for _ in 0..8 {
            let got = pool.run(Engine::Sparse, 257, |u, _slot| u * u);
            assert_eq!(got, want);
        }
        assert_eq!(pool.run::<usize, _>(Engine::Align, 0, |u, _| u), vec![]);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = WorkPool::new(2);
        std::thread::scope(|scope| {
            let p1 = pool.clone();
            let h = scope.spawn(move || p1.run(Engine::Sparse, 300, |u, _| 2 * u));
            let align: Vec<usize> = pool.run(Engine::Align, 300, |u, _| 3 * u);
            let sparse = h.join().unwrap();
            assert_eq!(sparse, (0..300).map(|u| 2 * u).collect::<Vec<_>>());
            assert_eq!(align, (0..300).map(|u| 3 * u).collect::<Vec<_>>());
        });
    }

    /// Force a persistent worker to take at least one unit: the caller's
    /// units spin until some pool slot (`slot < threads`) has executed one.
    fn run_with_forced_worker(pool: &WorkPool, engine: Engine) {
        let threads = pool.threads();
        let participated = AtomicBool::new(false);
        pool.run(engine, 2, |_u, slot| {
            if slot < threads {
                participated.store(true, Ordering::Release);
            } else {
                while !participated.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            }
        });
    }

    #[test]
    fn steals_count_engine_switches_only() {
        let pool = WorkPool::new(1);
        run_with_forced_worker(&pool, Engine::Sparse);
        run_with_forced_worker(&pool, Engine::Sparse);
        // Same engine throughout: no switch, no steal.
        assert_eq!(pool.steals(), 0);
        run_with_forced_worker(&pool, Engine::Align);
        // The worker moved from sparse units to align units: one steal.
        assert!(pool.steals() >= 1, "engine switch not counted");
    }

    #[test]
    fn capped_engine_still_completes_via_caller() {
        let pool = WorkPool::new(2);
        pool.set_cap(Engine::Sparse, Some(0));
        let got = pool.run(Engine::Sparse, 64, |u, _| u + 1);
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
        // The other engine is unaffected by the sparse cap.
        run_with_forced_worker(&pool, Engine::Align);
        pool.set_cap(Engine::Sparse, None);
        run_with_forced_worker(&pool, Engine::Sparse);
    }

    #[test]
    fn caller_slots_sit_above_worker_slots() {
        let pool = WorkPool::new(3);
        assert_eq!(pool.caller_slot(Engine::Sparse), 3);
        assert_eq!(pool.caller_slot(Engine::Align), 4);
        // With a fully-capped pool every unit runs on the caller slot.
        pool.set_cap(Engine::Align, Some(0));
        let slots = pool.run(Engine::Align, 16, |_u, slot| slot);
        assert!(slots.iter().all(|&s| s == pool.caller_slot(Engine::Align)));
    }

    #[test]
    fn clones_share_workers_and_shutdown_joins() {
        let pool = WorkPool::new(2);
        let clone = pool.clone();
        run_with_forced_worker(&clone, Engine::Sparse);
        drop(clone);
        // Original clone still works after the other is dropped.
        let got = pool.run(Engine::Sparse, 10, |u, _| u);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        drop(pool); // joins the workers; must not hang
    }
}
