//! Comparator search architectures (Section IV of the paper).
//!
//! The paper positions PASTIS against the two state-of-the-art distributed
//! protein search tools and criticizes their *architectures*:
//!
//! * **MMseqs2** replicates the index of one sequence set on every node
//!   ("the index data structures for at least one set of the sequences are
//!   replicated on each compute node, which limits the largest problems
//!   that can be solved") — rebuilt here as [`mmseqs_like`].
//! * **DIAMOND** splits both sets into chunks and processes the Cartesian
//!   product as work packages mediated by the shared filesystem, with
//!   per-chunk heuristics ("this [block size] parameter affects the
//!   algorithm and results will not be completely identical for different
//!   values of the block size") — rebuilt here as [`diamond_like`].
//!
//! The baselines run the same planted-family datasets as PASTIS-RS at
//! reduced scale, so the architectural comparisons of Section VIII-C —
//! replication memory blow-up, filesystem pressure, chunking-dependent
//! results vs. PASTIS's determinism — can be demonstrated directly.

#![warn(missing_docs)]

pub mod ckpt;
pub mod diamond_like;
pub mod mmseqs_like;

pub use ckpt::{BaselineCheckpoint, BASELINE_CKPT_SCHEMA_VERSION};
pub use diamond_like::{DiamondLikeConfig, DiamondLikeReport};
pub use mmseqs_like::{MmseqsLikeConfig, MmseqsLikeReport, SplitMode};
