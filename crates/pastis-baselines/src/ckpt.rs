//! Checkpoint/restart for the baseline searches.
//!
//! Both comparator architectures decompose into serially-executed *units*
//! (MMseqs2-style: one simulated rank; DIAMOND-style: one query chunk's
//! join), so both share one cumulative checkpoint format: after each
//! completed unit the cumulative pre-`normalize` edge list and the named
//! counters are persisted. A resumed run restores the newest valid
//! checkpoint and skips the restored units; the final `normalize` sorts
//! edges canonically, so the split point cannot influence the output —
//! the same bit-identity argument as the PASTIS pipeline's
//! `pastis_core::checkpoint`.
//!
//! The format mirrors the pipeline's schema (text, `to_bits()` hex floats,
//! CRC32 trailer, atomic `.tmp` + rename writes) with a distinct magic so
//! the two checkpoint kinds can never be confused for each other.

use std::fs;
use std::path::{Path, PathBuf};

use pastis_comm::fault::crc32;
use pastis_core::checkpoint::write_atomic;
use pastis_core::simgraph::SimilarityEdge;

/// Version stamp of the baseline checkpoint format.
pub const BASELINE_CKPT_SCHEMA_VERSION: u32 = 1;

/// Cumulative state after `units_done` of `units` serial work units.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCheckpoint {
    /// Run identity (config + input digest, baseline-specific).
    pub fingerprint: u64,
    /// Completed units (the cursor).
    pub units_done: usize,
    /// Total units of the run (resume requires the same decomposition).
    pub units: usize,
    /// Named cumulative counters, in a fixed baseline-defined order.
    pub counters: Vec<(String, u64)>,
    /// Edges in insertion order, pre-`normalize`.
    pub edges: Vec<SimilarityEdge>,
}

impl BaselineCheckpoint {
    /// Serialize to the schema-v1 text format (CRC trailer included).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + self.edges.len() * 48);
        let _ = writeln!(s, "PASTIS-BCKPT {BASELINE_CKPT_SCHEMA_VERSION}");
        let _ = writeln!(s, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(s, "units {} {}", self.units_done, self.units);
        for (name, v) in &self.counters {
            let _ = writeln!(s, "counter {name} {v}");
        }
        for e in &self.edges {
            let _ = writeln!(
                s,
                "edge {} {} {} {:08x} {:08x} {}",
                e.i,
                e.j,
                e.score,
                e.ani.to_bits(),
                e.coverage.to_bits(),
                e.common_kmers
            );
        }
        let crc = crc32(s.as_bytes());
        let _ = writeln!(s, "end {crc:08x}");
        s
    }

    /// Parse and CRC-check a schema-v1 baseline checkpoint.
    ///
    /// # Errors
    ///
    /// Bad magic, wrong schema version, CRC mismatch (torn write), or a
    /// malformed line — the caller treats any of these as "no checkpoint".
    pub fn parse(text: &str) -> Result<BaselineCheckpoint, String> {
        let body_end = text
            .rfind("end ")
            .ok_or_else(|| "baseline checkpoint missing end trailer".to_string())?;
        let trailer = text[body_end..].strip_prefix("end ").unwrap().trim();
        let want_crc = u32::from_str_radix(trailer, 16)
            .map_err(|_| format!("bad baseline checkpoint crc trailer: {trailer:?}"))?;
        let body = &text[..body_end];
        if crc32(body.as_bytes()) != want_crc {
            return Err("baseline checkpoint crc mismatch".into());
        }

        let mut lines = body.lines();
        let magic = lines.next().unwrap_or_default();
        let version: u32 = magic
            .strip_prefix("PASTIS-BCKPT ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad baseline checkpoint magic: {magic:?}"))?;
        if version != BASELINE_CKPT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported baseline checkpoint schema version {version}"
            ));
        }

        let fp_line = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .ok_or("baseline checkpoint missing fingerprint")?;
        let fingerprint = u64::from_str_radix(fp_line.trim(), 16)
            .map_err(|_| "bad fingerprint in baseline checkpoint".to_string())?;

        let units_line = lines
            .next()
            .and_then(|l| l.strip_prefix("units "))
            .ok_or("baseline checkpoint missing units")?;
        let mut it = units_line.split_whitespace();
        let parse_usize = |tok: Option<&str>, what: &str| -> Result<usize, String> {
            tok.ok_or_else(|| format!("missing {what}"))?
                .parse()
                .map_err(|_| format!("bad {what} in baseline checkpoint"))
        };
        let units_done = parse_usize(it.next(), "units_done")?;
        let units = parse_usize(it.next(), "units")?;

        let mut counters = Vec::new();
        let mut edges = Vec::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("counter ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or("counter line missing name")?.to_string();
                let v: u64 = it
                    .next()
                    .ok_or("counter line missing value")?
                    .parse()
                    .map_err(|_| "bad counter value in baseline checkpoint".to_string())?;
                counters.push((name, v));
            } else if let Some(rest) = line.strip_prefix("edge ") {
                let mut it = rest.split_whitespace();
                let num = |it: &mut std::str::SplitWhitespace<'_>, what: &str| {
                    it.next()
                        .ok_or_else(|| format!("edge line missing {what}"))
                        .map(str::to_string)
                };
                let i: u32 = num(&mut it, "i")?.parse().map_err(|_| "bad edge i")?;
                let j: u32 = num(&mut it, "j")?.parse().map_err(|_| "bad edge j")?;
                let score: i32 = num(&mut it, "score")?.parse().map_err(|_| "bad score")?;
                let ani = u32::from_str_radix(&num(&mut it, "ani")?, 16)
                    .map(f32::from_bits)
                    .map_err(|_| "bad ani bits")?;
                let coverage = u32::from_str_radix(&num(&mut it, "coverage")?, 16)
                    .map(f32::from_bits)
                    .map_err(|_| "bad coverage bits")?;
                let common_kmers: u32 = num(&mut it, "common_kmers")?
                    .parse()
                    .map_err(|_| "bad common_kmers")?;
                edges.push(SimilarityEdge {
                    i,
                    j,
                    score,
                    ani,
                    coverage,
                    common_kmers,
                });
            } else {
                return Err(format!("unexpected baseline checkpoint line: {line:?}"));
            }
        }
        Ok(BaselineCheckpoint {
            fingerprint,
            units_done,
            units,
            counters,
            edges,
        })
    }

    /// Look up a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// The file the checkpoint for `units_done` completed units lives in.
pub fn baseline_ckpt_path(dir: &Path, units_done: usize) -> PathBuf {
    dir.join(format!("unit{units_done:06}.bckpt"))
}

/// Atomically persist `ck` under `dir`.
///
/// # Errors
///
/// I/O failures, with the path in the message.
pub fn save(dir: &Path, ck: &BaselineCheckpoint) -> Result<PathBuf, String> {
    let path = baseline_ckpt_path(dir, ck.units_done);
    write_atomic(&path, &ck.to_text())?;
    Ok(path)
}

/// The newest valid checkpoint under `dir` matching `fingerprint` and the
/// run's unit decomposition. Corrupt, foreign, or torn files are skipped.
pub fn latest_valid(dir: &Path, units: usize, fingerprint: u64) -> Option<BaselineCheckpoint> {
    let mut counts: Vec<usize> = fs::read_dir(dir)
        .ok()?
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_prefix("unit")?
                .strip_suffix(".bckpt")?
                .parse()
                .ok()
        })
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    for count in counts {
        let path = baseline_ckpt_path(dir, count);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        match BaselineCheckpoint::parse(&text) {
            Ok(ck)
                if ck.fingerprint == fingerprint && ck.units == units && ck.units_done == count =>
            {
                return Some(ck);
            }
            _ => continue,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BaselineCheckpoint {
        BaselineCheckpoint {
            fingerprint: 0x1234_5678_9ABC_DEF0,
            units_done: 2,
            units: 4,
            counters: vec![
                ("prefilter_candidates".into(), 99),
                ("aligned_pairs".into(), 17),
            ],
            edges: vec![SimilarityEdge {
                i: 1,
                j: 3,
                score: 42,
                ani: 0.75,
                coverage: 0.5,
                common_kmers: 2,
            }],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let ck = sample();
        let parsed = BaselineCheckpoint::parse(&ck.to_text()).unwrap();
        assert_eq!(parsed, ck);
        assert_eq!(parsed.to_text(), ck.to_text());
        assert_eq!(parsed.counter("aligned_pairs"), 17);
        assert_eq!(parsed.counter("missing"), 0);
    }

    #[test]
    fn crc_rejects_tampering() {
        let text = sample().to_text().replacen("units 2 4", "units 3 4", 1);
        assert!(BaselineCheckpoint::parse(&text)
            .unwrap_err()
            .contains("crc"));
    }

    #[test]
    fn pipeline_checkpoints_are_not_confused_for_baseline_ones() {
        // A pastis-core pipeline checkpoint has a different magic; even a
        // structurally valid one must be rejected here.
        let text = sample()
            .to_text()
            .replacen("PASTIS-BCKPT", "PASTIS-CKPT", 1);
        assert!(BaselineCheckpoint::parse(&text).is_err());
    }

    #[test]
    fn latest_valid_skips_corrupt_and_foreign() {
        let dir = std::env::temp_dir().join(format!("pastis-bckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut ck = sample();
        ck.units_done = 1;
        save(&dir, &ck).unwrap();
        ck.units_done = 2;
        save(&dir, &ck).unwrap();
        fs::write(baseline_ckpt_path(&dir, 3), "garbage").unwrap();
        let got = latest_valid(&dir, ck.units, ck.fingerprint).unwrap();
        assert_eq!(got.units_done, 2);
        assert!(latest_valid(&dir, ck.units, 7).is_none(), "foreign fp");
        assert!(
            latest_valid(&dir, 9, ck.fingerprint).is_none(),
            "foreign decomposition"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
