//! DIAMOND-style chunked work-package distributed search.
//!
//! Architecture (Section IV): both sequence sets are split into chunks;
//! each element of the Cartesian product of chunk sets is a *work package*
//! processed independently by a worker, with intermediate results written
//! to the shared filesystem and joined per query chunk at the end. Memory
//! is bounded per package, which the real DIAMOND achieves with per-block
//! heuristics — and which is why its documentation warns that "results
//! will not be completely identical for different values of the block
//! size". This module reproduces that architecture, including:
//!
//! * per-package candidate *caps* (the memory-bounding heuristic) — so the
//!   chunking-dependence of results is reproducible and testable, in
//!   contrast to PASTIS's blocking-independent determinism;
//! * intermediate-spill byte accounting (the filesystem pressure the paper
//!   criticizes).

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use pastis_align::batch::{AlignTask, BatchAligner};
use pastis_align::matrices::Blosum62;
use pastis_align::sw::GapPenalties;
use pastis_comm::grid::BlockDist1D;
use pastis_core::checkpoint::{digest_bytes, digest_u64};
use pastis_core::filter::EdgeFilter;
use pastis_core::kmer::distinct_kmers;
use pastis_core::simgraph::{SimilarityEdge, SimilarityGraph};
use pastis_seqio::{ReducedAlphabet, SeqStore};
use pastis_sparse::run_units;
use pastis_trace::{names, span, Component, Recorder, TraceSession};

use crate::ckpt::{self, BaselineCheckpoint};

/// Configuration of the DIAMOND-style search.
#[derive(Debug, Clone)]
pub struct DiamondLikeConfig {
    /// k-mer (seed) length.
    pub k: usize,
    /// Alphabet for seeding.
    pub alphabet: ReducedAlphabet,
    /// Minimum shared seeds to consider a pair.
    pub min_shared_kmers: u32,
    /// Number of query chunks.
    pub query_chunks: usize,
    /// Number of reference chunks (the "block size" knob).
    pub ref_chunks: usize,
    /// Per-package cap on candidates kept per query — the memory-bounding
    /// heuristic that makes results chunking-dependent. `usize::MAX`
    /// disables the cap (and restores determinism).
    pub max_candidates_per_query: usize,
    /// Gap model.
    pub gaps: GapPenalties,
    /// Identity threshold.
    pub ani_threshold: f64,
    /// Coverage threshold.
    pub coverage_threshold: f64,
    /// Intra-package alignment worker threads (1 = serial, 0 = one per
    /// core). Results are identical for every value.
    pub align_threads: usize,
    /// Intra-package seed-join worker threads: each package's query scan
    /// runs as atomically-claimed units stitched back in query order
    /// (1 = serial, 0 = one per core). Results are identical for every
    /// value.
    pub seed_threads: usize,
    /// Directory for per-query-chunk join checkpoints (`None` disables).
    /// The seed/package phase is recomputed on resume — it is deterministic
    /// and cheap next to alignment, which is what the checkpoints cover.
    /// Robustness knob — never affects the output.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the newest valid checkpoint in `checkpoint_dir`,
    /// skipping the already-joined query chunks; the final graph is
    /// bit-identical to an uninterrupted run.
    pub resume: bool,
}

impl Default for DiamondLikeConfig {
    fn default() -> DiamondLikeConfig {
        DiamondLikeConfig {
            k: 6,
            alphabet: ReducedAlphabet::Full20,
            min_shared_kmers: 2,
            query_chunks: 2,
            ref_chunks: 2,
            max_candidates_per_query: 64,
            gaps: GapPenalties::pastis_defaults(),
            ani_threshold: 0.30,
            coverage_threshold: 0.70,
            align_threads: 1,
            seed_threads: 1,
            checkpoint_dir: None,
            resume: false,
        }
    }
}

/// Outcome of a DIAMOND-style run.
#[derive(Debug, Clone)]
pub struct DiamondLikeReport {
    /// Similarity graph after the final join.
    pub graph: SimilarityGraph,
    /// Work packages processed (`query_chunks × ref_chunks`).
    pub packages: usize,
    /// Seed-join candidates before capping.
    pub seed_candidates: u64,
    /// Candidates dropped by the per-package cap (the source of
    /// chunking-dependence).
    pub capped_out: u64,
    /// Pairs aligned.
    pub aligned_pairs: u64,
    /// Intermediate bytes written to (and re-read from) the shared
    /// filesystem by the package/join protocol.
    pub spilled_bytes: u64,
    /// Measured wall seconds.
    pub wall_seconds: f64,
    /// When resuming: how many query-chunk joins were restored from the
    /// checkpoint instead of re-aligned.
    pub resumed_chunks: Option<usize>,
}

/// One intermediate record a package writes for the join phase.
#[derive(Debug, Clone, Copy)]
struct Intermediate {
    query: u32,
    target: u32,
    shared: u32,
}

const INTERMEDIATE_BYTES: u64 = 12;

/// Run the many-against-many search with the work-package architecture.
pub fn run_diamond_like(store: &SeqStore, cfg: &DiamondLikeConfig) -> DiamondLikeReport {
    run_inner(store, cfg, None)
}

/// Like [`run_diamond_like`], recording phase spans into `session` — one
/// recorder per query chunk (the unit that owns a spill file), with a
/// `package.seed_join` span per work package and a `join.align` span per
/// join. Observation-only: the report is identical to the untraced run's.
pub fn run_diamond_like_traced(
    store: &SeqStore,
    cfg: &DiamondLikeConfig,
    session: &TraceSession,
) -> DiamondLikeReport {
    run_inner(store, cfg, Some(session))
}

fn run_inner(
    store: &SeqStore,
    cfg: &DiamondLikeConfig,
    session: Option<&TraceSession>,
) -> DiamondLikeReport {
    assert!(
        cfg.query_chunks > 0 && cfg.ref_chunks > 0,
        "chunk counts must be positive"
    );
    let start = Instant::now();
    let n = store.len();
    let qdist = BlockDist1D::new(n, cfg.query_chunks.min(n.max(1)));
    let rdist = BlockDist1D::new(n, cfg.ref_chunks.min(n.max(1)));

    let mut seed_candidates = 0u64;
    let mut capped_out = 0u64;
    let mut spilled_bytes = 0u64;
    // Per query chunk: the spilled intermediates awaiting the final join.
    let mut spill: Vec<Vec<Intermediate>> = (0..qdist.parts).map(|_| Vec::new()).collect();

    // --- Package phase: every (query chunk, ref chunk) pair.
    for (qc, spill_qc) in spill.iter_mut().enumerate() {
        let rec = session.map_or_else(Recorder::disabled, |s| s.recorder(qc));
        let (q0, q1) = (
            qdist.part_offset(qc),
            qdist.part_offset(qc) + qdist.part_len(qc),
        );
        for rc in 0..rdist.parts {
            let spilled_before = spill_qc.len() as u64;
            let mut pkg_span = span!(rec, Component::SparseOther, names::SPAN_PACKAGE_SEED_JOIN, {
                rc: rc as u64,
            });
            let (r0, r1) = (
                rdist.part_offset(rc),
                rdist.part_offset(rc) + rdist.part_len(rc),
            );
            // Index the reference chunk.
            let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
            for t in r0..r1 {
                for (kmer, _) in distinct_kmers(store.seq(t), cfg.k, cfg.alphabet) {
                    index.entry(kmer).or_default().push(t as u32);
                }
            }
            // Seed-join each query of the chunk against the index — one
            // pool unit per query, stitched back in query order, so the
            // spill stream (and the cap's victims) are identical for
            // every worker count.
            let per_query = run_units(cfg.seed_threads, q1 - q0, |_w, u| {
                let q = q0 + u;
                let mut hits: HashMap<u32, u32> = HashMap::new();
                for (kmer, _) in distinct_kmers(store.seq(q), cfg.k, cfg.alphabet) {
                    if let Some(ts) = index.get(&kmer) {
                        for &t in ts {
                            if (t as usize) != q {
                                *hits.entry(t).or_insert(0) += 1;
                            }
                        }
                    }
                }
                let mut cands: Vec<(u32, u32)> = hits
                    .into_iter()
                    .filter(|&(_, s)| s >= cfg.min_shared_kmers)
                    .collect();
                // The memory-bounding heuristic: keep the best
                // `max_candidates_per_query` by shared-seed count within
                // *this package*. A pair near the cap can survive one
                // chunking and be evicted under another — the
                // non-determinism the paper quotes DIAMOND's docs on.
                cands.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let uncapped = cands.len();
                if cands.len() > cfg.max_candidates_per_query {
                    cands.truncate(cfg.max_candidates_per_query);
                }
                (uncapped, cands)
            });
            for (u, (uncapped, cands)) in per_query.into_iter().enumerate() {
                let q = q0 + u;
                seed_candidates += uncapped as u64;
                capped_out += (uncapped - cands.len()) as u64;
                for (t, shared) in cands {
                    spill_qc.push(Intermediate {
                        query: q as u32,
                        target: t,
                        shared,
                    });
                    spilled_bytes += INTERMEDIATE_BYTES;
                }
            }
            pkg_span.push_arg("spilled", spill_qc.len() as u64 - spilled_before);
            drop(pkg_span);
        }
    }

    // --- Join phase: per query chunk, read back intermediates, merge
    // duplicates across packages, align, filter.
    let aligner = BatchAligner::new(Blosum62, cfg.gaps);
    let filter = EdgeFilter {
        ani_threshold: cfg.ani_threshold,
        coverage_threshold: cfg.coverage_threshold,
    };
    let mut graph = SimilarityGraph::new(n);
    let mut aligned_pairs = 0u64;

    // One checkpoint unit = one query chunk's join (the alignment phase —
    // the dominant cost). The package phase above is deterministic and was
    // recomputed wholesale; a resumed run restores the joined chunks.
    let ckpt_dir = cfg.checkpoint_dir.as_deref();
    let fp = if ckpt_dir.is_some() {
        fingerprint(store, cfg)
    } else {
        0
    };
    let mut start_chunk = 0usize;
    let mut resumed_chunks = None;
    if cfg.resume {
        let dir = ckpt_dir.expect("resume requires checkpoint_dir");
        if let Some(ck) = ckpt::latest_valid(dir, qdist.parts, fp) {
            for e in &ck.edges {
                graph.add(*e);
            }
            aligned_pairs = ck.counter(names::CTR_ALIGNED_PAIRS);
            start_chunk = ck.units_done;
            resumed_chunks = Some(ck.units_done);
        }
    }

    for (chunk_idx, chunk) in spill.iter().enumerate() {
        if chunk_idx < start_chunk {
            // Restored from the checkpoint — only the join's filesystem
            // re-read accounting still applies (the spill itself was
            // recomputed above), keeping the report identical to an
            // uninterrupted run's.
            spilled_bytes += chunk.len() as u64 * INTERMEDIATE_BYTES;
            continue;
        }
        let rec = session.map_or_else(Recorder::disabled, |s| s.recorder(chunk_idx));
        let mut join_span = span!(rec, Component::Align, names::SPAN_JOIN_ALIGN, {
            records: chunk.len() as u64,
        });
        spilled_bytes += chunk.len() as u64 * INTERMEDIATE_BYTES; // re-read
        let mut merged: HashMap<(u32, u32), u32> = HashMap::new();
        for rec in chunk {
            let key = if rec.query < rec.target {
                (rec.query, rec.target)
            } else {
                (rec.target, rec.query)
            };
            let e = merged.entry(key).or_insert(0);
            *e = (*e).max(rec.shared);
        }
        let mut pairs: Vec<((u32, u32), u32)> = merged.into_iter().collect();
        pairs.sort_unstable();
        // Each unordered pair may surface in up to two query chunks; the
        // canonical owner (the chunk of the smaller id) aligns it. Rescore
        // the chunk's surviving pairs as one batch on the worker pool.
        pairs.retain(|&((i, _), _)| qdist.owner(i as usize) == chunk_idx);
        let tasks: Vec<AlignTask> = pairs
            .iter()
            .map(|&((i, j), _)| AlignTask {
                query: i,
                reference: j,
                seed_q: 0,
                seed_r: 0,
            })
            .collect();
        let (results, _stats) =
            aligner.run_batch_parallel(&tasks, |id| store.seq(id as usize), cfg.align_threads);
        aligned_pairs += tasks.len() as u64;
        for (((i, j), shared), res) in pairs.iter().zip(&results) {
            let (qs, rs) = (store.seq(*i as usize), store.seq(*j as usize));
            if filter.passes(res, qs.len(), rs.len()) {
                graph.add(SimilarityEdge {
                    i: *i,
                    j: *j,
                    score: res.score,
                    ani: res.identity() as f32,
                    coverage: res.coverage_min(qs.len(), rs.len()) as f32,
                    common_kmers: *shared,
                });
            }
        }
        join_span.push_arg("pairs", tasks.len() as u64);
        drop(join_span);
        rec.add_counter(names::CTR_ALIGNED_PAIRS, tasks.len() as f64);
        if let Some(dir) = ckpt_dir {
            let ck = BaselineCheckpoint {
                fingerprint: fp,
                units_done: chunk_idx + 1,
                units: qdist.parts,
                counters: vec![(names::CTR_ALIGNED_PAIRS.into(), aligned_pairs)],
                edges: graph.edges().to_vec(),
            };
            if let Err(e) = ckpt::save(dir, &ck) {
                // Best-effort: losing a restart point must not fail the
                // run. The fault family mirror puts a warning in the
                // end-of-run report.
                rec.add_counter(names::CTR_CHECKPOINT_WRITE_FAILED, 1.0);
                rec.add_counter(names::CTR_FAULT_CKPT_SAVE_FAILED, 1.0);
                eprintln!("warning: baseline checkpoint save failed (chunk {chunk_idx}): {e}");
            } else {
                rec.add_counter(names::CTR_CHECKPOINT_UNITS_WRITTEN, 1.0);
            }
        }
    }
    graph.normalize();
    DiamondLikeReport {
        graph,
        packages: qdist.parts * rdist.parts,
        seed_candidates,
        capped_out,
        aligned_pairs,
        spilled_bytes,
        wall_seconds: start.elapsed().as_secs_f64(),
        resumed_chunks,
    }
}

/// Digest of everything that determines this baseline's output: the
/// output-relevant config (the chunking *does* affect results once the
/// candidate cap engages, so it is included) and the input residues.
/// `align_threads` and the checkpoint knobs are deliberately excluded.
fn fingerprint(store: &SeqStore, cfg: &DiamondLikeConfig) -> u64 {
    let mut h = 0x4449_414d_4f4e_444cu64; // "DIAMONDL"
    h = digest_u64(h, cfg.k as u64);
    h = digest_bytes(h, format!("{:?}", cfg.alphabet).as_bytes());
    h = digest_u64(h, cfg.min_shared_kmers as u64);
    h = digest_u64(h, cfg.query_chunks as u64);
    h = digest_u64(h, cfg.ref_chunks as u64);
    h = digest_u64(h, cfg.max_candidates_per_query as u64);
    h = digest_u64(h, cfg.gaps.open as u64);
    h = digest_u64(h, cfg.gaps.extend as u64);
    h = digest_u64(h, cfg.ani_threshold.to_bits());
    h = digest_u64(h, cfg.coverage_threshold.to_bits());
    h = digest_u64(h, store.len() as u64);
    for i in 0..store.len() {
        h = digest_bytes(h, store.seq(i));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::encode;
    use pastis_seqio::{SyntheticConfig, SyntheticDataset};

    fn cfg() -> DiamondLikeConfig {
        DiamondLikeConfig {
            k: 4,
            min_shared_kmers: 1,
            ani_threshold: 0.3,
            coverage_threshold: 0.3,
            max_candidates_per_query: usize::MAX,
            ..DiamondLikeConfig::default()
        }
    }

    fn tiny_store() -> SeqStore {
        let mut s = SeqStore::new();
        for (i, q) in [
            "MKVLAWYHEEMKVLAWYHEE",
            "MKVLAWYHEEMKVLAWYHEA",
            "GGSTPNQRCDGGSTPNQRCD",
            "GGSTPNQRCDGGSTPNQRCE",
            "WPWPWPWPWPWPWPWPWPWP",
        ]
        .iter()
        .enumerate()
        {
            s.push(format!("s{i}"), encode(q).unwrap());
        }
        s
    }

    #[test]
    fn finds_planted_families() {
        let r = run_diamond_like(&tiny_store(), &cfg());
        let keys: Vec<_> = r.graph.edges().iter().map(|e| e.key()).collect();
        assert!(keys.contains(&(0, 1)));
        assert!(keys.contains(&(2, 3)));
        assert_eq!(r.packages, 4);
    }

    #[test]
    fn uncapped_results_are_chunking_independent() {
        let store = tiny_store();
        let base = run_diamond_like(&store, &cfg());
        for (qc, rc) in [(1usize, 1usize), (3, 2), (5, 5)] {
            let r = run_diamond_like(
                &store,
                &DiamondLikeConfig {
                    query_chunks: qc,
                    ref_chunks: rc,
                    ..cfg()
                },
            );
            assert_eq!(r.graph.edges(), base.graph.edges(), "{qc}x{rc}");
        }
    }

    #[test]
    fn capped_results_depend_on_chunking() {
        // The headline architectural contrast with PASTIS: with the
        // memory-bounding cap active, changing the block size changes
        // which candidates survive.
        let ds = SyntheticDataset::generate(&SyntheticConfig {
            n_sequences: 120,
            mean_len: 60.0,
            mean_family_size: 20.0,
            singleton_fraction: 0.0,
            divergence: 0.08,
            seed: 42,
            ..SyntheticConfig::small(120, 42)
        });
        let capped = |rc: usize| {
            run_diamond_like(
                &ds.store,
                &DiamondLikeConfig {
                    ref_chunks: rc,
                    max_candidates_per_query: 3,
                    ..cfg()
                },
            )
        };
        let one = capped(1);
        let four = capped(4);
        assert!(one.capped_out > 0, "cap never engaged; test is vacuous");
        // More packages -> more survivors slip past the per-package cap.
        assert_ne!(
            one.graph.n_edges(),
            four.graph.n_edges(),
            "expected chunking-dependent results under capping"
        );
    }

    #[test]
    fn align_thread_count_does_not_change_results() {
        let store = tiny_store();
        let base = run_diamond_like(&store, &cfg());
        for threads in [2usize, 4, 0] {
            let r = run_diamond_like(
                &store,
                &DiamondLikeConfig {
                    align_threads: threads,
                    ..cfg()
                },
            );
            assert_eq!(r.graph.edges(), base.graph.edges(), "threads={threads}");
            assert_eq!(r.aligned_pairs, base.aligned_pairs);
        }
    }

    #[test]
    fn seed_thread_count_does_not_change_results() {
        let store = tiny_store();
        // Include a tight per-query cap: the capped spill stream is the
        // part that would expose any stitch-order slip.
        for cap in [usize::MAX, 2] {
            let capped = DiamondLikeConfig {
                max_candidates_per_query: cap,
                ..cfg()
            };
            let base = run_diamond_like(&store, &capped);
            for threads in [2usize, 4, 0] {
                let r = run_diamond_like(
                    &store,
                    &DiamondLikeConfig {
                        seed_threads: threads,
                        ..capped.clone()
                    },
                );
                assert_eq!(
                    r.graph.edges(),
                    base.graph.edges(),
                    "cap={cap} threads={threads}"
                );
                assert_eq!(r.seed_candidates, base.seed_candidates);
                assert_eq!(r.capped_out, base.capped_out);
                assert_eq!(r.spilled_bytes, base.spilled_bytes);
            }
        }
    }

    #[test]
    fn spill_grows_with_ref_chunks() {
        let store = tiny_store();
        let few = run_diamond_like(
            &store,
            &DiamondLikeConfig {
                ref_chunks: 1,
                query_chunks: 1,
                ..cfg()
            },
        );
        let many = run_diamond_like(
            &store,
            &DiamondLikeConfig {
                ref_chunks: 5,
                query_chunks: 5,
                ..cfg()
            },
        );
        // Same candidates, same spill per candidate — but the join sees
        // duplicates across packages only when pairs straddle chunks, so
        // spill is at least as large.
        assert!(many.spilled_bytes >= few.spilled_bytes);
        assert!(many.packages > few.packages);
    }

    #[test]
    fn counters_coherent() {
        let r = run_diamond_like(&tiny_store(), &cfg());
        assert!(r.seed_candidates >= r.aligned_pairs);
        assert!(r.aligned_pairs >= r.graph.n_edges() as u64);
        assert_eq!(r.capped_out, 0);
    }

    #[test]
    fn traced_run_emits_package_and_join_spans() {
        let store = tiny_store();
        let base = run_diamond_like(&store, &cfg());
        let session = TraceSession::new();
        let traced = run_diamond_like_traced(&store, &cfg(), &session);
        // Observation-only.
        assert_eq!(traced.graph.edges(), base.graph.edges());
        assert_eq!(traced.spilled_bytes, base.spilled_bytes);
        let recs = session.recorders();
        assert_eq!(recs.len(), 2); // one per query chunk
        let mut packages = 0;
        let mut total_aligned = 0.0;
        for rec in &recs {
            let spans = rec.snapshot_spans();
            packages += spans
                .iter()
                .filter(|s| s.name == names::SPAN_PACKAGE_SEED_JOIN)
                .count();
            assert!(spans.iter().any(|s| s.name == names::SPAN_JOIN_ALIGN));
            total_aligned += rec.counters()[names::CTR_ALIGNED_PAIRS];
        }
        assert_eq!(packages, base.packages);
        assert_eq!(total_aligned as u64, base.aligned_pairs);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let store = tiny_store();
        let dir = std::env::temp_dir().join(format!("pastis-diamond-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let chunked = DiamondLikeConfig {
            query_chunks: 3,
            ..cfg()
        };
        let base = run_diamond_like(&store, &chunked);
        let ccfg = DiamondLikeConfig {
            checkpoint_dir: Some(dir.clone()),
            ..chunked.clone()
        };
        let checkpointed = run_diamond_like(&store, &ccfg);
        assert_eq!(checkpointed.graph.edges(), base.graph.edges());
        assert!(checkpointed.resumed_chunks.is_none());
        // "Killed after join 2": drop the newest checkpoint and resume.
        std::fs::remove_file(crate::ckpt::baseline_ckpt_path(&dir, 3)).unwrap();
        let resumed = run_diamond_like(
            &store,
            &DiamondLikeConfig {
                resume: true,
                ..ccfg
            },
        );
        assert_eq!(resumed.resumed_chunks, Some(2));
        assert_eq!(resumed.graph.edges(), base.graph.edges());
        assert_eq!(resumed.aligned_pairs, base.aligned_pairs);
        assert_eq!(resumed.spilled_bytes, base.spilled_bytes);
        assert_eq!(resumed.seed_candidates, base.seed_candidates);
        // A different chunking is a different run — its checkpoints are
        // foreign (chunking can change capped results, so the fingerprint
        // includes it).
        let foreign = run_diamond_like(
            &store,
            &DiamondLikeConfig {
                query_chunks: 2,
                checkpoint_dir: Some(dir.clone()),
                resume: true,
                ..cfg()
            },
        );
        assert!(foreign.resumed_chunks.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store() {
        let r = run_diamond_like(&SeqStore::new(), &cfg());
        assert_eq!(r.graph.n_edges(), 0);
        assert_eq!(r.aligned_pairs, 0);
    }
}
