//! MMseqs2-style replicated-index distributed search.
//!
//! Architecture (Section IV): hybrid distribution where either the
//! reference set is chunked across ranks and **every rank searches all
//! queries against its chunk** (target split), or the query set is chunked
//! and **every rank searches its queries against all references** (query
//! split). Either way, one full set's k-mer index lives on *every* rank —
//! the memory-scaling weakness the paper calls out. This module implements
//! that architecture faithfully at reduced scale, including per-rank index
//! memory accounting, so the blow-up is measurable.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use pastis_align::batch::{AlignTask, BatchAligner};
use pastis_align::matrices::Blosum62;
use pastis_align::sw::GapPenalties;
use pastis_comm::grid::BlockDist1D;
use pastis_core::checkpoint::{digest_bytes, digest_u64, write_atomic};
use pastis_core::filter::EdgeFilter;
use pastis_core::kmer::distinct_kmers;
use pastis_core::simgraph::{SimilarityEdge, SimilarityGraph};
use pastis_seqio::{ReducedAlphabet, SeqStore};
use pastis_sparse::run_units;
use pastis_trace::{names, span, Component, Recorder, TraceSession};

use crate::ckpt::{self, BaselineCheckpoint};

/// Which sequence set is chunked across ranks (the other is replicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMode {
    /// References chunked; queries (and their index) replicated.
    TargetSplit,
    /// Queries chunked; references (and their index) replicated.
    QuerySplit,
}

/// Configuration of the MMseqs2-style search.
#[derive(Debug, Clone)]
pub struct MmseqsLikeConfig {
    /// k-mer length of the prefilter index.
    pub k: usize,
    /// Alphabet for the index.
    pub alphabet: ReducedAlphabet,
    /// Minimum shared k-mers to trigger an alignment (the double-hit
    /// prefilter).
    pub min_shared_kmers: u32,
    /// Gap model of the rescoring alignment.
    pub gaps: GapPenalties,
    /// Post-alignment identity threshold.
    pub ani_threshold: f64,
    /// Post-alignment coverage threshold.
    pub coverage_threshold: f64,
    /// Split mode.
    pub mode: SplitMode,
    /// Intra-rank alignment worker threads (1 = serial on the calling
    /// thread, 0 = one per core). Results are identical for every value.
    pub align_threads: usize,
    /// Intra-rank prefilter worker threads: each rank's query scan runs
    /// as atomically-claimed units stitched back in query order (1 =
    /// serial, 0 = one per core). Results are identical for every value.
    pub prefilter_threads: usize,
    /// Directory for per-simulated-rank checkpoints (`None` disables).
    /// Robustness knob — never affects the output.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the newest valid checkpoint in `checkpoint_dir`,
    /// skipping already-searched ranks; the final graph is bit-identical
    /// to an uninterrupted run.
    pub resume: bool,
    /// Directory holding persisted per-rank prefilter indexes. When set,
    /// each simulated rank loads its CRC-framed, fingerprint-bound
    /// postings file instead of rebuilding the index — and writes one
    /// (best-effort) after building when none is valid. Real MMseqs2
    /// persists its prefilter index the same way; rebuilding it every run
    /// was this module's historical behavior. Never affects the output:
    /// a loaded index is bit-identical to a rebuilt one.
    pub index_dir: Option<PathBuf>,
}

impl Default for MmseqsLikeConfig {
    fn default() -> MmseqsLikeConfig {
        MmseqsLikeConfig {
            k: 6,
            alphabet: ReducedAlphabet::Full20,
            min_shared_kmers: 2,
            gaps: GapPenalties::pastis_defaults(),
            ani_threshold: 0.30,
            coverage_threshold: 0.70,
            mode: SplitMode::TargetSplit,
            align_threads: 1,
            prefilter_threads: 1,
            checkpoint_dir: None,
            resume: false,
            index_dir: None,
        }
    }
}

/// Outcome of an MMseqs2-style many-against-many run.
#[derive(Debug, Clone)]
pub struct MmseqsLikeReport {
    /// The similarity graph found (union over ranks, normalized).
    pub graph: SimilarityGraph,
    /// Prefilter candidates examined (sum over ranks).
    pub prefilter_candidates: u64,
    /// Pairs aligned.
    pub aligned_pairs: u64,
    /// Bytes of the replicated k-mer index **per rank** — constant in the
    /// rank count: the architecture's scaling wall.
    pub index_bytes_per_rank: u64,
    /// Ranks simulated.
    pub ranks: usize,
    /// Measured wall seconds (all ranks executed serially).
    pub wall_seconds: f64,
    /// When resuming: how many simulated ranks were restored from the
    /// checkpoint instead of recomputed.
    pub resumed_ranks: Option<usize>,
}

/// The replicated inverted index: k-mer id → (sequence, position) list.
#[derive(Debug)]
struct KmerIndex {
    map: HashMap<u32, Vec<(u32, u32)>>,
    bytes: u64,
}

impl KmerIndex {
    fn build(
        store: &SeqStore,
        ids: impl Iterator<Item = usize>,
        cfg: &MmseqsLikeConfig,
    ) -> KmerIndex {
        let mut map: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        let mut postings = 0u64;
        for id in ids {
            for (kmer, pos) in distinct_kmers(store.seq(id), cfg.k, cfg.alphabet) {
                map.entry(kmer).or_default().push((id as u32, pos));
                postings += 1;
            }
        }
        // 8 bytes per posting + 16 per distinct k-mer bucket, the rough
        // footprint of MMseqs2's index tables.
        let bytes = postings * 8 + map.len() as u64 * 16;
        KmerIndex { map, bytes }
    }

    /// Serialize as the versioned, CRC-framed `PASTIS-PFIDX 1` text:
    /// fingerprint-bound, one sorted postings line per k-mer, posting
    /// order preserved so a reload is bit-identical to the build.
    fn to_text(&self, fingerprint: u64, rank: usize) -> String {
        let mut postings = 0u64;
        let mut kmers: Vec<&u32> = self.map.keys().collect();
        kmers.sort_unstable();
        let mut body = format!("PASTIS-PFIDX {PFIDX_SCHEMA_VERSION}\n");
        body.push_str(&format!("fingerprint {fingerprint:016x}\n"));
        body.push_str(&format!("rank {rank}\n"));
        let mut lines = String::new();
        for k in kmers {
            let posting = &self.map[k];
            postings += posting.len() as u64;
            lines.push_str(&k.to_string());
            for (id, pos) in posting {
                lines.push_str(&format!(" {id},{pos}"));
            }
            lines.push('\n');
        }
        body.push_str(&format!("dims {} {postings}\n", self.map.len()));
        body.push_str(&lines);
        let crc = pastis_comm::fault::crc32(body.as_bytes());
        body.push_str(&format!("end {crc:08x}\n"));
        body
    }

    /// Parse a persisted postings file, validating the CRC frame, schema
    /// version, fingerprint, and rank binding, and the declared counts.
    fn parse(text: &str, fingerprint: u64, rank: usize) -> Result<KmerIndex, String> {
        let body = text
            .strip_suffix('\n')
            .and_then(|t| t.rsplit_once('\n'))
            .map(|(body, _)| &text[..body.len() + 1])
            .ok_or("prefilter index: truncated file")?;
        let end_line = text[body.len()..]
            .trim_end()
            .strip_prefix("end ")
            .ok_or("prefilter index: missing end frame")?;
        let want = u32::from_str_radix(end_line, 16)
            .map_err(|_| "prefilter index: malformed end crc".to_owned())?;
        let got = pastis_comm::fault::crc32(body.as_bytes());
        if got != want {
            return Err(format!(
                "prefilter index: crc mismatch (stored {want:08x}, computed {got:08x})"
            ));
        }
        let mut lines = body.lines();
        let header = lines.next().ok_or("prefilter index: empty file")?;
        let version = header
            .strip_prefix("PASTIS-PFIDX ")
            .ok_or("prefilter index: bad magic")?;
        if version != PFIDX_SCHEMA_VERSION.to_string() {
            return Err(format!("prefilter index: unknown schema version {version}"));
        }
        let keyed = |line: Option<&str>, key: &str| -> Result<String, String> {
            line.and_then(|l| l.strip_prefix(key))
                .and_then(|l| l.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| format!("prefilter index: missing '{key}' line"))
        };
        let fp = u64::from_str_radix(&keyed(lines.next(), "fingerprint")?, 16)
            .map_err(|_| "prefilter index: malformed fingerprint".to_owned())?;
        if fp != fingerprint {
            return Err("prefilter index: fingerprint mismatch (stale index)".into());
        }
        let r: usize = keyed(lines.next(), "rank")?
            .parse()
            .map_err(|_| "prefilter index: malformed rank".to_owned())?;
        if r != rank {
            return Err(format!("prefilter index: file is for rank {r}, not {rank}"));
        }
        let dims = keyed(lines.next(), "dims")?;
        let (nk, np) = dims
            .split_once(' ')
            .ok_or("prefilter index: malformed dims")?;
        let n_kmers: usize = nk
            .parse()
            .map_err(|_| "prefilter index: malformed dims".to_owned())?;
        let n_postings: u64 = np
            .parse()
            .map_err(|_| "prefilter index: malformed dims".to_owned())?;
        let mut map: HashMap<u32, Vec<(u32, u32)>> = HashMap::with_capacity(n_kmers);
        let mut postings = 0u64;
        let mut prev: Option<u32> = None;
        for line in lines {
            let mut parts = line.split(' ');
            let kmer: u32 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("prefilter index: malformed postings line")?;
            if prev.is_some_and(|p| p >= kmer) {
                return Err("prefilter index: k-mers out of order".into());
            }
            prev = Some(kmer);
            let mut posting = Vec::new();
            for p in parts {
                let (id, pos) = p
                    .split_once(',')
                    .ok_or("prefilter index: malformed posting")?;
                let id: u32 = id
                    .parse()
                    .map_err(|_| "prefilter index: malformed posting".to_owned())?;
                let pos: u32 = pos
                    .parse()
                    .map_err(|_| "prefilter index: malformed posting".to_owned())?;
                posting.push((id, pos));
            }
            if posting.is_empty() {
                return Err("prefilter index: empty postings line".into());
            }
            postings += posting.len() as u64;
            map.insert(kmer, posting);
        }
        if map.len() != n_kmers || postings != n_postings {
            return Err(format!(
                "prefilter index: dims mismatch (declared {n_kmers} k-mers/{n_postings} \
                 postings, found {}/{postings})",
                map.len()
            ));
        }
        let bytes = postings * 8 + map.len() as u64 * 16;
        Ok(KmerIndex { map, bytes })
    }
}

/// Schema version of the persisted prefilter-index format.
const PFIDX_SCHEMA_VERSION: u32 = 1;

/// Per-rank postings file under the configured index directory.
fn pfidx_path(dir: &std::path::Path, rank: usize) -> PathBuf {
    dir.join(format!("pfidx_r{rank:04}.idx"))
}

/// Run the many-against-many search over `nranks` simulated ranks
/// (executed one after another on this host; the work and memory
/// partitioning is exactly the distributed architecture's).
pub fn run_mmseqs_like(
    store: &SeqStore,
    cfg: &MmseqsLikeConfig,
    nranks: usize,
) -> MmseqsLikeReport {
    run_inner(store, cfg, nranks, None)
}

/// Like [`run_mmseqs_like`], recording each simulated rank's phase spans
/// (`index.build`, `prefilter`, `align.batch`) and work counters into
/// `session` — one recorder per rank, so the baseline's trace is directly
/// comparable to the PASTIS pipeline's. Observation-only: the report is
/// identical to the untraced run's.
pub fn run_mmseqs_like_traced(
    store: &SeqStore,
    cfg: &MmseqsLikeConfig,
    nranks: usize,
    session: &TraceSession,
) -> MmseqsLikeReport {
    run_inner(store, cfg, nranks, Some(session))
}

fn run_inner(
    store: &SeqStore,
    cfg: &MmseqsLikeConfig,
    nranks: usize,
    session: Option<&TraceSession>,
) -> MmseqsLikeReport {
    assert!(nranks > 0, "need at least one rank");
    let start = Instant::now();
    let n = store.len();
    let chunks = BlockDist1D::new(n, nranks);
    let aligner = BatchAligner::new(Blosum62, cfg.gaps);
    let filter = EdgeFilter {
        ani_threshold: cfg.ani_threshold,
        coverage_threshold: cfg.coverage_threshold,
    };

    let mut graph = SimilarityGraph::new(n);
    let mut prefilter_candidates = 0u64;
    let mut aligned_pairs = 0u64;
    let mut index_bytes_per_rank = 0u64;

    // One checkpoint unit = one simulated rank (they execute serially).
    let ckpt_dir = cfg.checkpoint_dir.as_deref();
    let fp = if ckpt_dir.is_some() || cfg.index_dir.is_some() {
        fingerprint(store, cfg, nranks)
    } else {
        0
    };
    let mut start_rank = 0usize;
    let mut resumed_ranks = None;
    if cfg.resume {
        let dir = ckpt_dir.expect("resume requires checkpoint_dir");
        if let Some(ck) = ckpt::latest_valid(dir, nranks, fp) {
            for e in &ck.edges {
                graph.add(*e);
            }
            prefilter_candidates = ck.counter(names::CTR_PREFILTER_CANDIDATES);
            aligned_pairs = ck.counter(names::CTR_ALIGNED_PAIRS);
            index_bytes_per_rank = ck.counter("index_bytes_per_rank");
            start_rank = ck.units_done;
            resumed_ranks = Some(ck.units_done);
        }
    }

    for rank in start_rank..nranks {
        let rec = session.map_or_else(Recorder::disabled, |s| s.recorder(rank));
        let c0 = chunks.part_offset(rank);
        let c1 = c0 + chunks.part_len(rank);
        // In target-split mode the rank indexes its *chunk* and scans all
        // queries; in query-split mode it indexes the *whole* reference
        // set and scans its chunk. Either way one side of the pairing is
        // all `n` sequences; the replicated structure differs.
        let mut build_span = span!(rec, Component::SparseOther, names::SPAN_INDEX_BUILD);
        // With an index directory, load the rank's persisted postings
        // (fingerprint- and rank-bound, CRC-checked) instead of
        // rebuilding; on a miss or any validation failure, rebuild and
        // persist best-effort. A loaded index is bit-identical to a
        // rebuilt one, so the output never depends on this path.
        let obtain = |ids: std::ops::Range<usize>| -> KmerIndex {
            let Some(dir) = cfg.index_dir.as_deref() else {
                return KmerIndex::build(store, ids, cfg);
            };
            let path = pfidx_path(dir, rank);
            if let Ok(text) = std::fs::read_to_string(&path) {
                match KmerIndex::parse(&text, fp, rank) {
                    Ok(idx) => {
                        rec.add_counter(names::CTR_INDEX_PREFILTER_REUSED, 1.0);
                        return idx;
                    }
                    Err(e) => {
                        eprintln!("warning: rebuilding prefilter index (unit {rank}): {e}");
                    }
                }
            }
            let idx = KmerIndex::build(store, ids, cfg);
            let _ = std::fs::create_dir_all(dir);
            if let Err(e) = write_atomic(&path, &idx.to_text(fp, rank)) {
                // Best-effort, like checkpoints: a full disk degrades to
                // "rebuild next run", never to a failed search.
                eprintln!("warning: prefilter index save failed (unit {rank}): {e}");
            }
            idx
        };
        let (index, scan): (KmerIndex, Box<dyn Iterator<Item = usize>>) = match cfg.mode {
            SplitMode::TargetSplit => (obtain(c0..c1), Box::new(0..n)),
            SplitMode::QuerySplit => (obtain(0..n), Box::new(c0..c1)),
        };
        build_span.push_arg("bytes", index.bytes);
        drop(build_span);
        // The replicated payload per rank: in target-split the full
        // *query set* (here: all sequences) is replicated; its index is
        // built once per rank in MMseqs2's prefilter. We account the
        // replicated side's index size.
        let replicated_bytes = match cfg.mode {
            SplitMode::TargetSplit => {
                // Queries replicated: every rank holds all residues.
                store.total_residues() as u64
            }
            SplitMode::QuerySplit => index.bytes,
        };
        index_bytes_per_rank = index_bytes_per_rank.max(match cfg.mode {
            SplitMode::TargetSplit => index.bytes + replicated_bytes,
            SplitMode::QuerySplit => replicated_bytes + store.total_residues() as u64,
        });

        // Prefilter the whole rank first, then rescore the surviving
        // pairs as one batch on the worker pool — MMseqs2's own
        // prefilter/alignment phase split, which is what lets the
        // alignment phase parallelize freely.
        let mut tasks: Vec<AlignTask> = Vec::new();
        let mut shared_counts: Vec<u32> = Vec::new();
        let rank_candidates_before = prefilter_candidates;
        let mut prefilter_span = span!(rec, Component::SparseOther, names::SPAN_PREFILTER);
        // Scan queries on the prefilter pool: one unit per query, claimed
        // atomically and stitched back in query order, so the candidate
        // list — and everything downstream — is identical for every
        // worker count.
        let queries: Vec<usize> = scan.collect();
        let per_query = run_units(cfg.prefilter_threads, queries.len(), |_w, u| {
            let q = queries[u];
            // Count shared k-mers per target via the index.
            let mut hits: HashMap<u32, u32> = HashMap::new();
            for (kmer, _pos) in distinct_kmers(store.seq(q), cfg.k, cfg.alphabet) {
                if let Some(posting) = index.map.get(&kmer) {
                    for &(target, _) in posting {
                        *hits.entry(target).or_insert(0) += 1;
                    }
                }
            }
            let mut targets: Vec<(u32, u32)> = hits
                .into_iter()
                .filter(|&(t, shared)| (t as usize) != q && shared >= cfg.min_shared_kmers)
                .collect();
            targets.sort_unstable();
            targets
        });
        for (q, targets) in queries.iter().zip(per_query) {
            prefilter_candidates += targets.len() as u64;
            for (t, shared) in targets {
                // Each unordered pair is seen from both sides (and, in
                // target-split, by exactly one rank per side); align only
                // the canonical orientation to mirror PASTIS accounting.
                if (*q as u32) < t {
                    tasks.push(AlignTask {
                        query: *q as u32,
                        reference: t,
                        seed_q: 0,
                        seed_r: 0,
                    });
                    shared_counts.push(shared);
                }
            }
        }
        prefilter_span.push_arg("candidates", prefilter_candidates - rank_candidates_before);
        drop(prefilter_span);
        let (results, _stats) = {
            let _s = span!(rec, Component::Align, names::SPAN_ALIGN_BATCH, {
                pairs: tasks.len() as u64,
            });
            aligner.run_batch_parallel(&tasks, |id| store.seq(id as usize), cfg.align_threads)
        };
        rec.add_counter(
            names::CTR_PREFILTER_CANDIDATES,
            (prefilter_candidates - rank_candidates_before) as f64,
        );
        rec.add_counter(names::CTR_ALIGNED_PAIRS, tasks.len() as f64);
        aligned_pairs += tasks.len() as u64;
        for ((task, res), &shared) in tasks.iter().zip(&results).zip(&shared_counts) {
            let qs = store.seq(task.query as usize);
            let rs = store.seq(task.reference as usize);
            if filter.passes(res, qs.len(), rs.len()) {
                graph.add(SimilarityEdge {
                    i: task.query,
                    j: task.reference,
                    score: res.score,
                    ani: res.identity() as f32,
                    coverage: res.coverage_min(qs.len(), rs.len()) as f32,
                    common_kmers: shared,
                });
            }
        }
        if let Some(dir) = ckpt_dir {
            let ck = BaselineCheckpoint {
                fingerprint: fp,
                units_done: rank + 1,
                units: nranks,
                counters: vec![
                    (names::CTR_PREFILTER_CANDIDATES.into(), prefilter_candidates),
                    (names::CTR_ALIGNED_PAIRS.into(), aligned_pairs),
                    ("index_bytes_per_rank".into(), index_bytes_per_rank),
                ],
                edges: graph.edges().to_vec(),
            };
            if let Err(e) = ckpt::save(dir, &ck) {
                // Checkpointing is best-effort: a full disk degrades to
                // "no restart point", never to a failed search. The fault
                // family mirror puts a warning in the end-of-run report.
                rec.add_counter(names::CTR_CHECKPOINT_WRITE_FAILED, 1.0);
                rec.add_counter(names::CTR_FAULT_CKPT_SAVE_FAILED, 1.0);
                eprintln!("warning: baseline checkpoint save failed (unit {rank}): {e}");
            } else {
                rec.add_counter(names::CTR_CHECKPOINT_UNITS_WRITTEN, 1.0);
            }
        }
    }
    graph.normalize();
    MmseqsLikeReport {
        graph,
        prefilter_candidates,
        aligned_pairs,
        index_bytes_per_rank,
        ranks: nranks,
        wall_seconds: start.elapsed().as_secs_f64(),
        resumed_ranks,
    }
}

/// Digest of everything that determines this baseline's output: the
/// output-relevant config, the rank decomposition, and the input residues.
/// `align_threads` and the checkpoint knobs are deliberately excluded.
fn fingerprint(store: &SeqStore, cfg: &MmseqsLikeConfig, nranks: usize) -> u64 {
    let mut h = 0x4d4d_5345_5153_4c4bu64; // "MMSEQSLK"
    h = digest_u64(h, cfg.k as u64);
    h = digest_bytes(h, format!("{:?}", cfg.alphabet).as_bytes());
    h = digest_u64(h, cfg.min_shared_kmers as u64);
    h = digest_u64(h, cfg.gaps.open as u64);
    h = digest_u64(h, cfg.gaps.extend as u64);
    h = digest_u64(h, cfg.ani_threshold.to_bits());
    h = digest_u64(h, cfg.coverage_threshold.to_bits());
    h = digest_bytes(h, format!("{:?}", cfg.mode).as_bytes());
    h = digest_u64(h, nranks as u64);
    h = digest_u64(h, store.len() as u64);
    for i in 0..store.len() {
        h = digest_bytes(h, store.seq(i));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastis_align::matrices::encode;

    fn cfg() -> MmseqsLikeConfig {
        MmseqsLikeConfig {
            k: 4,
            min_shared_kmers: 1,
            ani_threshold: 0.3,
            coverage_threshold: 0.3,
            ..MmseqsLikeConfig::default()
        }
    }

    fn tiny_store() -> SeqStore {
        let mut s = SeqStore::new();
        for (i, q) in [
            "MKVLAWYHEEMKVLAWYHEE",
            "MKVLAWYHEEMKVLAWYHEA",
            "GGSTPNQRCDGGSTPNQRCD",
            "GGSTPNQRCDGGSTPNQRCE",
            "WPWPWPWPWPWPWPWPWPWP",
        ]
        .iter()
        .enumerate()
        {
            s.push(format!("s{i}"), encode(q).unwrap());
        }
        s
    }

    #[test]
    fn finds_planted_families() {
        let r = run_mmseqs_like(&tiny_store(), &cfg(), 1);
        let keys: Vec<_> = r.graph.edges().iter().map(|e| e.key()).collect();
        assert!(keys.contains(&(0, 1)));
        assert!(keys.contains(&(2, 3)));
        assert!(!keys.contains(&(0, 2)));
    }

    #[test]
    fn rank_count_does_not_change_results() {
        let store = tiny_store();
        let base = run_mmseqs_like(&store, &cfg(), 1);
        for nranks in [2usize, 3, 5] {
            let r = run_mmseqs_like(&store, &cfg(), nranks);
            assert_eq!(r.graph.edges(), base.graph.edges(), "nranks={nranks}");
        }
    }

    #[test]
    fn replicated_memory_never_shrinks_with_ranks() {
        // The architectural weakness: per-rank memory is bounded below by
        // the replicated set, no matter how many ranks are added — the
        // chunked side shrinks, the replicated side cannot.
        let store = tiny_store();
        let replicated_floor = store.total_residues() as u64;
        for nranks in [1usize, 2, 4, 8] {
            let t = run_mmseqs_like(&store, &cfg(), nranks);
            assert!(
                t.index_bytes_per_rank >= replicated_floor,
                "target-split nranks={nranks}"
            );
        }
        // Query-split replicates the whole reference *index*: per-rank
        // bytes are essentially constant in the rank count.
        let qcfg = MmseqsLikeConfig {
            mode: SplitMode::QuerySplit,
            ..cfg()
        };
        let q1 = run_mmseqs_like(&store, &qcfg, 1);
        let q8 = run_mmseqs_like(&store, &qcfg, 8);
        assert_eq!(q8.index_bytes_per_rank, q1.index_bytes_per_rank);
    }

    #[test]
    fn align_thread_count_does_not_change_results() {
        let store = tiny_store();
        let base = run_mmseqs_like(&store, &cfg(), 2);
        for threads in [2usize, 4, 0] {
            let r = run_mmseqs_like(
                &store,
                &MmseqsLikeConfig {
                    align_threads: threads,
                    ..cfg()
                },
                2,
            );
            assert_eq!(r.graph.edges(), base.graph.edges(), "threads={threads}");
            assert_eq!(r.aligned_pairs, base.aligned_pairs);
        }
    }

    #[test]
    fn prefilter_thread_count_does_not_change_results() {
        let store = tiny_store();
        let base = run_mmseqs_like(&store, &cfg(), 2);
        for threads in [2usize, 4, 0] {
            let r = run_mmseqs_like(
                &store,
                &MmseqsLikeConfig {
                    prefilter_threads: threads,
                    ..cfg()
                },
                2,
            );
            assert_eq!(r.graph.edges(), base.graph.edges(), "threads={threads}");
            assert_eq!(r.prefilter_candidates, base.prefilter_candidates);
            assert_eq!(r.aligned_pairs, base.aligned_pairs);
        }
    }

    #[test]
    fn modes_agree_on_edges() {
        let store = tiny_store();
        let t = run_mmseqs_like(&store, &cfg(), 3);
        let q = run_mmseqs_like(
            &store,
            &MmseqsLikeConfig {
                mode: SplitMode::QuerySplit,
                ..cfg()
            },
            3,
        );
        assert_eq!(t.graph.edges(), q.graph.edges());
    }

    #[test]
    fn prefilter_threshold_prunes() {
        let store = tiny_store();
        let loose = run_mmseqs_like(&store, &cfg(), 1);
        // Identical 20-mers share 17 4-mers; the closest family pairs
        // (one substitution) share 13. A threshold of 16 excludes all
        // cross-sequence candidates.
        let strict = run_mmseqs_like(
            &store,
            &MmseqsLikeConfig {
                min_shared_kmers: 16,
                ..cfg()
            },
            1,
        );
        assert!(strict.prefilter_candidates < loose.prefilter_candidates);
        assert!(strict.aligned_pairs <= loose.aligned_pairs);
    }

    #[test]
    fn traced_run_emits_per_rank_phase_spans() {
        let store = tiny_store();
        let base = run_mmseqs_like(&store, &cfg(), 3);
        let session = TraceSession::new();
        let traced = run_mmseqs_like_traced(&store, &cfg(), 3, &session);
        // Observation-only.
        assert_eq!(traced.graph.edges(), base.graph.edges());
        assert_eq!(traced.aligned_pairs, base.aligned_pairs);
        let recs = session.recorders();
        assert_eq!(recs.len(), 3);
        let mut total_aligned = 0.0;
        for rec in &recs {
            let spans = rec.snapshot_spans();
            for name in [
                names::SPAN_INDEX_BUILD,
                names::SPAN_PREFILTER,
                names::SPAN_ALIGN_BATCH,
            ] {
                assert!(
                    spans.iter().any(|s| s.name == name),
                    "rank {} missing {name}",
                    rec.rank()
                );
            }
            total_aligned += rec.counters()[names::CTR_ALIGNED_PAIRS];
        }
        assert_eq!(total_aligned as u64, base.aligned_pairs);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let store = tiny_store();
        let dir = std::env::temp_dir().join(format!("pastis-mmseqs-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = run_mmseqs_like(&store, &cfg(), 3);
        let ccfg = MmseqsLikeConfig {
            checkpoint_dir: Some(dir.clone()),
            ..cfg()
        };
        // A checkpointing run changes nothing about the output.
        let checkpointed = run_mmseqs_like(&store, &ccfg, 3);
        assert_eq!(checkpointed.graph.edges(), base.graph.edges());
        assert!(checkpointed.resumed_ranks.is_none());
        // Simulate "killed after rank 2": drop the newest checkpoint, then
        // resume — ranks 0..2 restored, rank 2 recomputed, same output.
        std::fs::remove_file(crate::ckpt::baseline_ckpt_path(&dir, 3)).unwrap();
        let resumed = run_mmseqs_like(
            &store,
            &MmseqsLikeConfig {
                resume: true,
                ..ccfg.clone()
            },
            3,
        );
        assert_eq!(resumed.resumed_ranks, Some(2));
        assert_eq!(resumed.graph.edges(), base.graph.edges());
        assert_eq!(resumed.prefilter_candidates, base.prefilter_candidates);
        assert_eq!(resumed.aligned_pairs, base.aligned_pairs);
        // A config change (different k) invalidates the fingerprint: the
        // stale checkpoints are ignored, not resumed into the wrong run.
        let foreign = run_mmseqs_like(
            &store,
            &MmseqsLikeConfig {
                k: 5,
                resume: true,
                ..ccfg
            },
            3,
        );
        assert!(foreign.resumed_ranks.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persisted_prefilter_index_is_reused_and_output_invariant() {
        let store = tiny_store();
        let dir = std::env::temp_dir().join(format!("pastis-mmseqs-pfidx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = run_mmseqs_like(&store, &cfg(), 3);
        let icfg = MmseqsLikeConfig {
            index_dir: Some(dir.clone()),
            ..cfg()
        };
        // First run builds and persists — nothing to reuse yet.
        let session = TraceSession::new();
        let built = run_mmseqs_like_traced(&store, &icfg, 3, &session);
        assert_eq!(built.graph.edges(), base.graph.edges());
        let reused: f64 = session
            .recorders()
            .iter()
            .map(|r| {
                r.counters()
                    .get(names::CTR_INDEX_PREFILTER_REUSED)
                    .copied()
                    .unwrap_or(0.0)
            })
            .sum();
        assert_eq!(reused as u64, 0);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 3);
        // Second run loads every rank's postings; output identical.
        let session = TraceSession::new();
        let loaded = run_mmseqs_like_traced(&store, &icfg, 3, &session);
        assert_eq!(loaded.graph.edges(), base.graph.edges());
        assert_eq!(loaded.prefilter_candidates, base.prefilter_candidates);
        assert_eq!(loaded.aligned_pairs, base.aligned_pairs);
        assert_eq!(loaded.index_bytes_per_rank, base.index_bytes_per_rank);
        let reused: f64 = session
            .recorders()
            .iter()
            .map(|r| {
                r.counters()
                    .get(names::CTR_INDEX_PREFILTER_REUSED)
                    .copied()
                    .unwrap_or(0.0)
            })
            .sum();
        assert_eq!(reused as u64, 3);
        // A config change (different k) invalidates the fingerprint: the
        // stale files are rebuilt, not served, and the output still
        // matches a from-scratch run at the new k.
        let k5 = MmseqsLikeConfig { k: 5, ..icfg };
        let session = TraceSession::new();
        let fresh_k5 = run_mmseqs_like_traced(&store, &k5, 3, &session);
        assert_eq!(
            fresh_k5.graph.edges(),
            run_mmseqs_like(&store, &MmseqsLikeConfig { k: 5, ..cfg() }, 3)
                .graph
                .edges()
        );
        let reused: f64 = session
            .recorders()
            .iter()
            .map(|r| {
                r.counters()
                    .get(names::CTR_INDEX_PREFILTER_REUSED)
                    .copied()
                    .unwrap_or(0.0)
            })
            .sum();
        assert_eq!(reused as u64, 0);
        // A corrupted postings file is rejected and rebuilt, never parsed
        // into a wrong index.
        let path = pfidx_path(&dir, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("dims", "dIms")).unwrap();
        let recovered = run_mmseqs_like(&store, &k5, 3);
        assert_eq!(recovered.graph.edges(), fresh_k5.graph.edges());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefilter_index_round_trips_and_rejects_mutations() {
        let store = tiny_store();
        let idx = KmerIndex::build(&store, 0..store.len(), &cfg());
        let text = idx.to_text(0xDEAD_BEEF, 2);
        let back = KmerIndex::parse(&text, 0xDEAD_BEEF, 2).unwrap();
        assert_eq!(back.bytes, idx.bytes);
        assert_eq!(back.map.len(), idx.map.len());
        for (k, v) in &idx.map {
            assert_eq!(back.map.get(k), Some(v), "postings for k-mer {k}");
        }
        // Reserialization is bit-identical (deterministic ordering).
        assert_eq!(back.to_text(0xDEAD_BEEF, 2), text);
        // Wrong binding, truncation, and bit flips are all typed errors.
        assert!(KmerIndex::parse(&text, 0xDEAD_BEE0, 2)
            .unwrap_err()
            .contains("stale"));
        assert!(KmerIndex::parse(&text, 0xDEAD_BEEF, 1)
            .unwrap_err()
            .contains("rank"));
        assert!(KmerIndex::parse(&text[..text.len() / 2], 0xDEAD_BEEF, 2).is_err());
        let mut flipped = text.clone().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] = flipped[mid].wrapping_add(1);
        assert!(KmerIndex::parse(&String::from_utf8_lossy(&flipped), 0xDEAD_BEEF, 2).is_err());
    }

    #[test]
    fn failed_checkpoint_saves_are_counted_and_warned_not_fatal() {
        let store = tiny_store();
        let base = run_mmseqs_like(&store, &cfg(), 3);
        // A regular file where the checkpoint directory should be makes
        // every save fail; the search must still complete identically.
        let dir =
            std::env::temp_dir().join(format!("pastis-mmseqs-badckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::write(&dir, b"not a directory").unwrap();
        let session = TraceSession::new();
        let broken = run_mmseqs_like_traced(
            &store,
            &MmseqsLikeConfig {
                checkpoint_dir: Some(dir.clone()),
                ..cfg()
            },
            3,
            &session,
        );
        assert_eq!(broken.graph.edges(), base.graph.edges());
        let failed: f64 = session
            .recorders()
            .iter()
            .map(|r| {
                r.counters()
                    .get(names::CTR_FAULT_CKPT_SAVE_FAILED)
                    .copied()
                    .unwrap_or(0.0)
            })
            .sum();
        assert!(failed >= 3.0, "every unit's save should fail: {failed}");
        // The end-of-run report surfaces it as a warning line.
        let text =
            pastis_trace::render_report(&pastis_trace::MetricsReport::from_session(&session));
        assert!(text.contains("-- warnings --"), "{text}");
        assert!(text.contains("checkpoint save(s) failed"), "{text}");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn counters_are_coherent() {
        let r = run_mmseqs_like(&tiny_store(), &cfg(), 2);
        assert!(r.prefilter_candidates >= r.aligned_pairs);
        assert!(r.aligned_pairs >= r.graph.n_edges() as u64);
        assert!(r.index_bytes_per_rank > 0);
    }
}
