//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing this workspace's `rand` traits. Seeding expands the `u64`
//! seed through SplitMix64 into the 256-bit key, so streams are
//! deterministic per seed but do not match upstream `rand_chacha` (no
//! consumer relies on upstream streams).

use rand::{splitmix64, RngCore, SeedableRng};

/// ChaCha with 8 rounds (4 double-rounds), as in the real crate.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 ⇒ refill.
    word: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = w[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.word == 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        let mut rng = ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn counter_advances_across_blocks() {
        // 16 words per block; draw three blocks and check non-repetition.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..48 {
            seen.insert(r.next_u32());
        }
        assert!(seen.len() > 40, "keystream repeating: {}", seen.len());
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let v = r.gen_range(0usize..=9);
        assert!(v <= 9);
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
