//! Offline stand-in for `criterion`: a wall-clock micro-benchmark harness
//! with the API subset the workspace's benches use — `benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput::Elements`, `criterion_group!` /
//! `criterion_main!`, and `black_box`.
//!
//! Reporting: mean and best wall-clock per iteration, plus elements/s
//! when a throughput was declared. No baselines, no HTML, no statistics
//! beyond mean/min — enough to compare kernels on the same machine in
//! one run.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the compiler fence preventing dead-code elimination.
pub use std::hint::black_box;

/// Declared per-iteration work, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many abstract elements (e.g. DP cells).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Labels a benchmark `name` with a parameter rendered via `Display`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: format!("{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen iteration count, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.2} s ")
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:7.3} Gelem/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:7.3} Melem/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:7.3} Kelem/s", per_sec / 1e3)
    } else {
        format!("{per_sec:7.1}  elem/s")
    }
}

/// Top-level harness state; one per benchmark binary.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo-bench invokes the binary as `<bin> --bench [FILTER]`;
        // treat the first non-flag argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark (implicit group named after the id).
    pub fn bench_function<D: fmt::Display>(
        &mut self,
        id: D,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{id}");
        run_benchmark(&label, self.filter.as_deref(), 10, None, f);
        self
    }
}

/// A set of benchmarks sharing a name prefix, sample size and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`, labelling it `group/id`.
    pub fn bench_function<D: fmt::Display>(
        &mut self,
        id: D,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(
            &label,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input, labelling it `group/id`.
    pub fn bench_with_input<I: ?Sized, D: fmt::Display>(
        &mut self,
        id: D,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

fn run_benchmark(
    label: &str,
    filter: Option<&str>,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !label.contains(pat) {
            return;
        }
    }
    // Calibrate: grow the iteration count until one batch costs ≥ ~2 ms,
    // so per-sample timer overhead is negligible.
    let mut iters: u64 = 1;
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    loop {
        bencher.iters = iters;
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    // Sample.
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let samples = sample_size.max(2);
    for _ in 0..samples {
        bencher.iters = iters;
        f(&mut bencher);
        total += bencher.elapsed;
        if bencher.elapsed < best {
            best = bencher.elapsed;
        }
    }
    let mean = total.as_secs_f64() / (samples as u64 * iters) as f64;
    let best = best.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {}", format_rate(n as f64 / mean))
        }
        None => String::new(),
    };
    println!(
        "{label:<48} time: [mean {} | best {}]{rate}",
        format_time(mean),
        format_time(best),
    );
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(2);
        g.throughput(Throughput::Elements(64));
        g.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { filter: None };
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz-no-match".into()),
        };
        // Would run forever if not filtered: the closure panics.
        let mut g = c.benchmark_group("skipped");
        g.bench_function("panics", |_b| panic!("must be filtered out"));
        g.finish();
    }
}
