//! Offline stand-in for `proptest`: the subset this workspace uses —
//! the `proptest!` macro with `#![proptest_config(...)]`, integer/float
//! range strategies, tuples, `collection::{vec, btree_map}`, `Just`, and
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering; it is not minimized.
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name, so failures reproduce exactly across runs.

pub mod test_runner {
    //! Runner configuration and the deterministic case RNG.

    /// Subset of the real `ProptestConfig`: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// xoshiro256++ used to drive generation (independent of the `rand`
    /// stand-in so the two crates stay decoupled).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary byte string (the
        /// test name) via FNV-1a + SplitMix64 expansion.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % n
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_map`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u128 + 1) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with per-element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap`s. Key collisions collapse, so the
    /// generated length may be below the drawn target (never above).
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` strategy with key/value strategies and size range.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(binder in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal recursive muncher for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($binder:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $binder = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __debug_inputs = format!(
                    concat!("case {} of ", stringify!($name), ":", $(" ", stringify!($binder), " = {:?}",)+),
                    __case, $(&$binder,)+
                );
                let __guard = $crate::__CaseReporter(Some(__debug_inputs));
                $body
                ::std::mem::forget(__guard);
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Prints the failing case's inputs when a property body panics — not
/// public API.
#[doc(hidden)]
pub struct __CaseReporter(pub Option<String>);

impl Drop for __CaseReporter {
    fn drop(&mut self) {
        if let Some(desc) = self.0.take() {
            eprintln!("proptest failure: {desc}");
        }
    }
}

/// Asserts a condition inside a property; panics with the formatted
/// message (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..21, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 21));
        }

        #[test]
        fn btree_map_bounded(m in crate::collection::btree_map(0u32..10, -3i64..4, 0..10)) {
            prop_assert!(m.len() < 10);
        }

        #[test]
        fn tuples_compose(v in crate::collection::vec((0u32..9, 0u32..7, -3i32..4), 0..40)) {
            for (a, b, c) in v {
                prop_assert!(a < 9 && b < 7);
                prop_assert!((-3..4).contains(&c));
            }
        }

        #[test]
        fn just_yields_value(x in Just(41)) {
            prop_assert_eq!(x + 1, 42);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u8..21, 0..30);
        let mut r1 = crate::test_runner::TestRng::from_name("same");
        let mut r2 = crate::test_runner::TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
