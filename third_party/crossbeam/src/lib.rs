//! Offline stand-in for `crossbeam`: the `channel::unbounded` MPMC channel
//! subset used by the workspace's threaded communicator. Senders and
//! receivers are cloneable handles over a `Mutex<VecDeque>` + `Condvar`;
//! `recv` blocks until a message arrives or every sender is dropped.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel. Cloneable; `send` never
    /// blocks.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable; `recv`
    /// blocks until a message or disconnection.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver. Fails only if all
        /// receivers have been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared.queue.lock().unwrap().push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all receivers so they observe the
                // disconnection instead of sleeping forever.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Blocks until a message is available, every sender is dropped, or
        /// `timeout` elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                queue = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap()
                    .0;
            }
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Creates an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn disconnect_on_last_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        h.join().unwrap();
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
