//! Offline stand-in for `serde`: marker traits plus the derive-macro
//! re-export. The workspace only ever *derives* these traits to document
//! serializability of config/report types; nothing in the dependency set
//! performs serialization, so no methods are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that could be serialized (no-op subset).
pub trait Serialize {}

/// Marker for types that could be deserialized (no-op subset).
pub trait Deserialize<'de>: Sized {}
