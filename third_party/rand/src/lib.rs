//! Offline stand-in for `rand`: the trait surface the workspace uses
//! (`RngCore`, `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::
//! seed_from_u64`) plus `rngs::StdRng`, a xoshiro256++ generator seeded
//! via SplitMix64.
//!
//! Streams do **not** match the real `rand` crate; every consumer in the
//! workspace compares run-vs-run determinism, never upstream golden
//! values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types samplable uniformly from their "standard" distribution:
/// `[0, 1)` for floats, full range for integers, fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that support uniform range sampling.
pub trait UniformInt: Copy {
    /// Widens to `i128` for overflow-free span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back after offsetting into the range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: i128, span: u128) -> i128 {
    debug_assert!(span > 0);
    // Modulo bias is ≤ 2⁻⁶⁴ for the spans used in this workspace
    // (synthetic data and tests), which is far below observable.
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    lo + (wide % span) as i128
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range: empty range");
        T::from_i128(sample_span(rng, lo, (hi - lo) as u128))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range: empty range");
        T::from_i128(sample_span(rng, lo, (hi - lo) as u128 + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience sampling, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed-expansion PRNG.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's default generator: xoshiro256++ (Blackman/Vigna),
    /// seeded by SplitMix64 expansion. Fast, full 64-bit output, passes
    /// BigCrush; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-4i32..5);
            assert!((-4..5).contains(&w));
            let x = r.gen_range(0usize..=3);
            assert!(x <= 3);
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
