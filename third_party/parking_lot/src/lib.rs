//! Offline stand-in for `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! wrappers over `std::sync`. Lock acquisition ignores poisoning (a
//! panicking holder does not wedge other threads), matching the real
//! crate's most load-bearing semantic difference from `std`.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
