//! Offline stand-in for `serde_derive`: the workspace derives
//! `Serialize`/`Deserialize` on config/report structs but never actually
//! serializes (no serializer crate is in the dependency set), so the
//! derives expand to nothing. This keeps `#[derive(Serialize,
//! Deserialize)]` attributes compiling unchanged.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
