//! Chaos harness: fault injection, timeouts, and checkpoint-resume must
//! never change the similarity graph.
//!
//! The determinism suite (`tests/determinism.rs`) pins the paper's claim
//! that the output is identical for every process count, blocking factor,
//! and load-balancing scheme. This suite extends the same claim to hostile
//! execution: seeded [`FaultPlan`]s injecting delays, drops, corrupted
//! frames, and transient stalls all converge to the fault-free graph
//! (the fault layer retries until the good frame lands), and a run killed
//! mid-SUMMA resumes from its checkpoints into the bit-identical result.

use pastis::comm::{
    run_threaded, run_threaded_with, CommConfig, Communicator, FaultPlan, FaultyComm, ProcessGrid,
    SelfComm, TracedComm,
};
use pastis::core::pipeline::{run_search_serial, run_search_traced, SearchResult};
use pastis::core::SearchParams;
use pastis::seqio::{SyntheticConfig, SyntheticDataset};
use pastis::trace::{MetricsReport, TraceSession};
use proptest::prelude::*;
use std::sync::Arc;

fn dataset(seed: u64, n: usize) -> SyntheticDataset {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: n,
        mean_len: 60.0,
        singleton_fraction: 0.3,
        divergence: 0.08,
        seed,
        ..SyntheticConfig::small(n, seed)
    })
}

/// Bit-level identity of a similarity graph: every field of every edge,
/// floats by their exact bit patterns.
type EdgeBits = Vec<(u32, u32, i32, u32, u32, u32)>;

fn graph_bits(res: &SearchResult) -> EdgeBits {
    res.graph
        .edges()
        .iter()
        .map(|e| {
            (
                e.i,
                e.j,
                e.score,
                e.ani.to_bits(),
                e.coverage.to_bits(),
                e.common_kmers,
            )
        })
        .collect()
}

/// Timing-normalized projection of a whole trace session: span order,
/// names, tracks, and structured args; comm ops with traffic and peers;
/// every counter that is not a wall-time measurement. Two runs whose
/// projections are string-equal took the identical execution path.
fn trace_projection(session: &TraceSession) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for rec in session.recorders() {
        let _ = writeln!(out, "rank {}", rec.rank());
        for s in rec.snapshot_spans() {
            let _ = writeln!(
                out,
                "span {} {} t{} {:?}",
                s.component.label(),
                s.name,
                s.track.tid(),
                s.args
            );
        }
        for c in rec.snapshot_comms() {
            let _ = writeln!(out, "comm {:?} {} {}", c.op, c.bytes, c.peers);
        }
        for (name, v) in rec.counters() {
            if !name.contains("seconds") {
                let _ = writeln!(out, "counter {name} {v}");
            }
        }
    }
    out
}

/// Serial traced run over an explicit fault layer (the CLI's exact comm
/// stack: trace outside, faults inside).
fn run_serial_faulted(
    store: &pastis::seqio::SeqStore,
    params: &SearchParams,
    plan: Option<FaultPlan>,
) -> (SearchResult, TraceSession) {
    let session = TraceSession::new();
    let rec = session.recorder(0);
    let res = match plan {
        Some(plan) => {
            let faulty = FaultyComm::new(SelfComm::new(), plan).with_recorder(rec.clone());
            let grid = ProcessGrid::square(TracedComm::new(faulty, rec.clone()));
            run_search_traced(&grid, store, params, &rec).unwrap()
        }
        None => {
            let grid = ProcessGrid::square(TracedComm::new(SelfComm::new(), rec.clone()));
            run_search_traced(&grid, store, params, &rec).unwrap()
        }
    };
    (res, session)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An empty [`FaultPlan`] is a *strict* no-op: wrapping the
    /// communicator changes neither the output (bit-identical edges) nor
    /// the execution path (identical timing-normalized trace — same spans,
    /// same comm ops, same traffic, same counters, no `fault.*` entries).
    #[test]
    fn empty_fault_plan_is_a_strict_noop(
        seed in 1u64..50,
        br in 1usize..4,
        bc in 1usize..4,
    ) {
        let ds = dataset(seed, 25);
        let params = SearchParams::test_defaults().with_blocking(br, bc);
        let (base, base_trace) = run_serial_faulted(&ds.store, &params, None);
        let (wrapped, wrapped_trace) =
            run_serial_faulted(&ds.store, &params, Some(FaultPlan::none()));
        prop_assert_eq!(graph_bits(&base), graph_bits(&wrapped));
        let (bp, wp) = (trace_projection(&base_trace), trace_projection(&wrapped_trace));
        prop_assert!(!wp.contains("fault."), "no-op plan bumped fault counters");
        prop_assert_eq!(bp, wp);
    }
}

/// Distributed chaos run: every rank's communicator is wrapped in the
/// seeded fault layer; returns rank 0's gathered graph bits plus the
/// session (for counter assertions).
fn run_chaos(
    store: &pastis::seqio::SeqStore,
    params: &SearchParams,
    p: usize,
    plan: FaultPlan,
) -> (EdgeBits, Arc<TraceSession>) {
    let session = Arc::new(TraceSession::new());
    let store = Arc::new(store.clone());
    let params = Arc::new(params.clone());
    let sess = Arc::clone(&session);
    let outs = run_threaded_with(
        p,
        CommConfig::bounded(std::time::Duration::from_secs(60)),
        move |c| {
            let rec = sess.recorder(c.rank());
            let faulty =
                FaultyComm::new(c.split(0, c.rank()), plan.clone()).with_recorder(rec.clone());
            let grid = ProcessGrid::square(TracedComm::new(faulty, rec.clone()));
            let mut res = run_search_traced(&grid, &store, &params, &rec).unwrap();
            res.graph = res.gather_graph(grid.world());
            (grid.world().rank(), res)
        },
    );
    let res = outs
        .into_iter()
        .find(|(r, _)| *r == 0)
        .map(|(_, res)| res)
        .expect("rank 0 result");
    (graph_bits(&res), session)
}

#[test]
fn seeded_chaos_plans_converge_to_the_fault_free_graph() {
    let ds = dataset(42, 36);
    let params = SearchParams::test_defaults().with_blocking(3, 3);
    let p = 4;

    // Fault-free reference (same world size, same stack minus the faults).
    let (want, _clean) = run_chaos(&ds.store, &params, p, FaultPlan::none());
    assert!(
        !want.is_empty(),
        "reference graph is empty; test is vacuous"
    );

    // Three seeded plans per the acceptance criteria: pure delays, heavy
    // drop/corrupt pressure, and one with a transient rank stall.
    let plans = [
        ("delays", FaultPlan::parse("seed=3,delay=0.6:1500").unwrap()),
        (
            "drops+corrupts",
            FaultPlan::parse("seed=7,delay=0.2:400,drop=0.3,corrupt=0.3").unwrap(),
        ),
        (
            "stall",
            FaultPlan::parse("seed=11,delay=0.2:400,drop=0.2,corrupt=0.2,stall=1@9:40").unwrap(),
        ),
    ];
    for (label, plan) in plans {
        let expect_recovery = plan.drop_p > 0.0 || plan.corrupt_p > 0.0;
        let (got, session) = run_chaos(&ds.store, &params, p, plan);
        assert_eq!(got, want, "plan '{label}' changed the graph");

        // Retry/recovery counters surface in the metrics JSON.
        let json = MetricsReport::from_session(&session).to_json();
        assert!(
            json.contains("fault."),
            "plan '{label}': no fault counters in metrics JSON"
        );
        if expect_recovery {
            let retries: f64 = session
                .recorders()
                .iter()
                .map(|r| r.counters().get("fault.retries").copied().unwrap_or(0.0))
                .sum();
            assert!(retries > 0.0, "plan '{label}': no retries recorded");
        }
    }
}

#[test]
fn kill_and_resume_is_bit_identical_and_reported() {
    let ds = dataset(9, 36);
    let params = SearchParams::test_defaults().with_blocking(3, 3);
    let p = 4;
    let dir = std::env::temp_dir().join(format!("pastis-chaos-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Fault-free, uninterrupted reference.
    let (want, _s) = run_chaos(&ds.store, &params, p, FaultPlan::none());
    assert!(!want.is_empty());

    // Phase 1: a *chaos* run killed after block 2 (halt-after-blocks is the
    // deterministic kill), checkpointing as it goes. All in-memory state is
    // dropped when run_threaded returns — only the checkpoint dir survives.
    {
        let params = params
            .clone()
            .with_checkpoint_dir(&dir)
            .with_halt_after_blocks(2);
        let store = Arc::new(ds.store.clone());
        let plan = FaultPlan::parse("seed=5,delay=0.3:400,drop=0.2,corrupt=0.2").unwrap();
        run_threaded(p, move |c| {
            let faulty = FaultyComm::new(c.split(0, c.rank()), plan.clone());
            let grid = ProcessGrid::square(faulty);
            pastis::core::run_search(&grid, &store, &params)
                .unwrap()
                .per_block
                .len()
        });
    }

    // Phase 2: resume fault-free (the fingerprint ignores robustness knobs,
    // so a chaos run restarts cleanly into a fault-free one). The final
    // gathered graph is bit-identical and telemetry reports the resumed
    // block range.
    let session = Arc::new(TraceSession::new());
    let resumed = {
        let params = Arc::new(params.clone().with_checkpoint_dir(&dir).with_resume(true));
        let store = Arc::new(ds.store.clone());
        let sess = Arc::clone(&session);
        let outs = run_threaded(p, move |c| {
            let rec = sess.recorder(c.rank());
            let grid = ProcessGrid::square(TracedComm::new(c.split(0, c.rank()), rec.clone()));
            let mut res = run_search_traced(&grid, &store, &params, &rec).unwrap();
            res.graph = res.gather_graph(grid.world());
            (grid.world().rank(), res)
        });
        outs.into_iter()
            .find(|(r, _)| *r == 0)
            .map(|(_, res)| res)
            .unwrap()
    };
    assert_eq!(resumed.resumed_from_block, Some(2));
    assert_eq!(graph_bits(&resumed), want);
    for rec in session.recorders() {
        assert_eq!(
            rec.counters().get("resume.from_block").copied(),
            Some(2.0),
            "rank {} did not report the resumed range",
            rec.rank()
        );
    }
    let json = MetricsReport::from_session(&session).to_json();
    assert!(
        json.contains("resume.from_block"),
        "resume missing from metrics JSON"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_checkpoint_shards_are_rejected_and_recomputed_bit_identically() {
    // Truncation and bit flips on checkpoint shards: the CRC check must
    // reject the damaged file, the resume point must fall back only as far
    // as the newest *valid* checkpoint (recomputing just the affected
    // blocks), and the final graph must stay bit-identical.
    let ds = dataset(9, 36);
    let params = SearchParams::test_defaults().with_blocking(3, 3);
    let p = 4;
    let dir = std::env::temp_dir().join(format!("pastis-chaos-tamper-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (want, _s) = run_chaos(&ds.store, &params, p, FaultPlan::none());
    assert!(!want.is_empty());

    // Phase 1: checkpoint two blocks, then halt.
    {
        let params = Arc::new(
            params
                .clone()
                .with_checkpoint_dir(&dir)
                .with_halt_after_blocks(2),
        );
        let store = Arc::new(ds.store.clone());
        run_threaded(p, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            pastis::core::run_search(&grid, &store, &params).unwrap();
        });
    }

    // Phase 2: damage the newest shard of two ranks — rank 0 truncated
    // (torn write), rank 1 bit-flipped (media corruption). Both must fail
    // the CRC check and push those ranks back to their blocks_done=1
    // shard; the collective Min then resumes the whole world from 1.
    let victim0 = pastis::core::checkpoint::checkpoint_path(&dir, 0, 2);
    let text = std::fs::read_to_string(&victim0).expect("rank 0 checkpoint exists");
    std::fs::write(&victim0, &text[..text.len() * 3 / 5]).unwrap();
    let victim1 = pastis::core::checkpoint::checkpoint_path(&dir, 1, 2);
    let mut bytes = std::fs::read(&victim1).expect("rank 1 checkpoint exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01; // ASCII stays ASCII: still valid UTF-8
    std::fs::write(&victim1, &bytes).unwrap();

    let resumed = {
        let params = Arc::new(params.clone().with_checkpoint_dir(&dir).with_resume(true));
        let store = Arc::new(ds.store.clone());
        let outs = run_threaded(p, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let mut res = pastis::core::run_search(&grid, &store, &params).unwrap();
            res.graph = res.gather_graph(grid.world());
            (grid.world().rank(), res)
        });
        outs.into_iter()
            .find(|(r, _)| *r == 0)
            .map(|(_, res)| res)
            .unwrap()
    };
    assert_eq!(
        resumed.resumed_from_block,
        Some(1),
        "damaged shards must push the resume point back to the newest valid checkpoint"
    );
    assert_eq!(graph_bits(&resumed), want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_fault_plans_keep_budgeted_runs_bit_identical() {
    // The spill mirror of the chaos contract: a 4-rank run under a hard
    // memory budget, with seeded faults injected into every spill write
    // (corruption, disk-full, short writes), must either converge to the
    // bit-identical unbudgeted graph or fail with the typed OOM — never
    // silently diverge. Corrupt/short shards are caught by the readback
    // CRC and the affected blocks recomputed; disk-full evictions retry
    // other victims.
    let ds = dataset(42, 36);
    let params = SearchParams::test_defaults().with_blocking(3, 3);
    let p = 4;
    let (want, _s) = run_chaos(&ds.store, &params, p, FaultPlan::none());
    assert!(!want.is_empty());

    let tmp = std::env::temp_dir();
    let run_budgeted = |budget: u64, plan: Option<&str>, tag: &str| {
        let spill = tmp.join(format!("pastis-chaos-spill-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&spill);
        let mut prm = params
            .clone()
            .with_mem_budget(budget)
            .with_spill_dir(&spill);
        if let Some(spec) = plan {
            prm.spill_faults = Some(FaultPlan::parse(spec).unwrap());
        }
        let session = Arc::new(TraceSession::new());
        let prm = Arc::new(prm);
        let store = Arc::new(ds.store.clone());
        let sess = Arc::clone(&session);
        let outs = run_threaded_with(
            p,
            CommConfig::bounded(std::time::Duration::from_secs(120)),
            move |c| {
                let rec = sess.recorder(c.rank());
                let grid = ProcessGrid::square(TracedComm::new(c.split(0, c.rank()), rec.clone()));
                let res = run_search_traced(&grid, &store, &prm, &rec);
                let res = res.map(|mut r| {
                    r.graph = r.gather_graph(grid.world());
                    r
                });
                (grid.world().rank(), res)
            },
        );
        let _ = std::fs::remove_dir_all(&spill);
        let rank0 = outs
            .into_iter()
            .find(|(r, _)| *r == 0)
            .map(|(_, res)| res)
            .expect("rank 0 result");
        (rank0, session)
    };

    // Measure the per-rank peak with a loose budget (nothing spills).
    let (loose, _) = run_budgeted(1 << 30, None, "loose");
    let loose = loose.expect("loose budget cannot fail");
    assert_eq!(graph_bits(&loose), want);
    let budget = loose
        .mem_high_water
        .expect("budgeted runs report high water")
        * 7
        / 8;

    let counter_total = |session: &TraceSession, name: &str| -> f64 {
        session
            .recorders()
            .iter()
            .map(|r| r.counters().get(name).copied().unwrap_or(0.0))
            .sum()
    };
    for (tag, spec) in [
        ("corrupt", "seed=7,spill_corrupt=0.4"),
        ("diskfull", "seed=9,spill_disk_full=0.5"),
        ("short", "seed=13,spill_short=0.5"),
    ] {
        let (res, session) = run_budgeted(budget, Some(spec), tag);
        match res {
            Ok(res) => {
                assert_eq!(
                    graph_bits(&res),
                    want,
                    "spill plan '{tag}' changed the graph"
                );
                let hw = res.mem_high_water.expect("high water reported");
                assert!(hw <= budget, "plan '{tag}' overshot: {hw} > {budget}");
            }
            Err(e) => assert!(
                e.contains("out of memory in phase"),
                "plan '{tag}' failed outside the typed OOM path: {e}"
            ),
        }
        // Whatever the outcome, injected spill faults must be mirrored as
        // fault.spill.* counters whenever any spill writes happened.
        let spilled = counter_total(&session, "spill.blocks_out")
            + counter_total(&session, "fault.spill.disk_full");
        if spilled > 0.0 {
            let injected = counter_total(&session, "fault.spill.corrupts")
                + counter_total(&session, "fault.spill.disk_full")
                + counter_total(&session, "fault.spill.short_writes");
            assert!(
                injected > 0.0,
                "plan '{tag}' spilled {spilled} shards but injected nothing"
            );
        }
    }
}

#[test]
fn chaos_with_checkpoints_still_converges() {
    // Checkpointing during a faulted run must not perturb the output
    // either: the full matrix — faults × checkpoints — converges.
    let ds = dataset(21, 30);
    let dir = std::env::temp_dir().join(format!("pastis-chaos-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base_params = SearchParams::test_defaults().with_blocking(2, 2);
    let serial = run_search_serial(&ds.store, &base_params).unwrap();
    let want: Vec<(u32, u32)> = serial.graph.edges().iter().map(|e| e.key()).collect();

    let params = base_params.with_checkpoint_dir(&dir);
    let plan = FaultPlan::chaos(77);
    let (got, _session) = run_chaos(&ds.store, &params, 4, plan);
    let got_keys: Vec<(u32, u32)> = got.iter().map(|&(i, j, ..)| (i, j)).collect();
    assert_eq!(got_keys, want);
    let _ = std::fs::remove_dir_all(&dir);
}
