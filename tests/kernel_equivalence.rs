//! Differential kernel-equivalence harness: every compiled SIMD backend of
//! the score-only multilane kernel must be **bit-identical** to the scalar
//! i32 kernel — scores and batch counters alike.
//!
//! The paper's headline determinism claim ("the output is identical for
//! every process count / blocking factor") only survives a vectorized
//! kernel if the vector arithmetic is provably score-preserving, so this
//! suite attacks it differentially: seeded generators produce biased
//! protein sequences (real amino-acid frequencies), homologous pairs via
//! point mutation + indels, adversarial all-max/all-min score pairs, and
//! the degenerate lengths (0, 1, and scores beyond i16 saturation), then
//! every backend in [`SimdBackend::available`] — which always includes the
//! portable scalar-array lanes, so the whole dispatch surface runs even on
//! hosts without AVX2 — is compared against [`sw_score_only`].

use pastis::align::matrices::AA_COUNT;
use pastis::align::parallel::AlignPool;
use pastis::align::sw::{sw_score_only, GapPenalties};
use pastis::align::{sw_score_batch_simd, AlignTask, Blosum62, Scoring, SimdBackend};
use pastis::core::pipeline::{run_search_serial, SearchResult};
use pastis::core::SearchParams;
use pastis::seqio::{SyntheticConfig, SyntheticDataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Residue codes (alphabet `ARNDCQEGHILKMFPSTWYVX`).
const W: u8 = 17; // BLOSUM62 self-score 11 (the maximum)
const A: u8 = 0; // BLOSUM62 self-score 4

/// Swiss-Prot amino-acid frequencies in per-mille, in the order of the
/// canonical alphabet `ARNDCQEGHILKMFPSTWYV` plus a trace of `X`.
const AA_FREQ_PER_MILLE: [u32; 21] = [
    83, 55, 41, 55, 14, 39, 67, 71, 23, 59, 97, 58, 24, 39, 47, 66, 53, 11, 29, 69, 1,
];

fn biased_residue(rng: &mut StdRng) -> u8 {
    let total: u32 = AA_FREQ_PER_MILLE.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (code, &w) in AA_FREQ_PER_MILLE.iter().enumerate() {
        if roll < w {
            return code as u8;
        }
        roll -= w;
    }
    unreachable!("frequency table exhausted");
}

fn biased_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| biased_residue(rng)).collect()
}

/// Homolog of `parent`: seeded point mutations plus occasional 1–3-residue
/// indels, the generator's stand-in for divergent family members.
fn mutate(rng: &mut StdRng, parent: &[u8], rate: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(parent.len() + 4);
    for &c in parent {
        let roll: f64 = rng.gen();
        if roll < rate / 4.0 {
            continue; // deletion
        } else if roll < rate / 2.0 {
            out.push(biased_residue(rng)); // insertion
            out.push(c);
        } else if roll < rate {
            out.push(biased_residue(rng)); // substitution
        } else {
            out.push(c);
        }
    }
    out
}

/// One generated batch: biased random pairs, homologous pairs, and the
/// degenerate lengths 0 and 1 mixed in.
fn gen_pairs(seed: u64, n_pairs: usize, max_len: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(n_pairs);
    for k in 0..n_pairs {
        let pair = match k % 4 {
            // Unrelated biased sequences.
            0 => {
                let la = rng.gen_range(0..=max_len);
                let lb = rng.gen_range(0..=max_len);
                (biased_seq(&mut rng, la), biased_seq(&mut rng, lb))
            }
            // Homologous pair (seeded mutation of a common parent).
            1 => {
                let len = rng.gen_range(1..=max_len);
                let rate = rng.gen_range(0.02..0.4);
                let parent = biased_seq(&mut rng, len);
                let child = mutate(&mut rng, &parent, rate);
                (parent, child)
            }
            // Adversarial composition: runs of the max-scoring residue
            // against runs of itself or of a uniform random residue.
            2 => {
                let la = rng.gen_range(0..=max_len);
                let lb = rng.gen_range(0..=max_len);
                let other = rng.gen_range(0..AA_COUNT as u8);
                (vec![W; la], vec![other; lb])
            }
            // Degenerate lengths 0 / 1 on either side.
            _ => {
                let tiny = rng.gen_range(0..=1);
                let l = rng.gen_range(0..=max_len);
                if k % 8 < 4 {
                    (biased_seq(&mut rng, tiny), biased_seq(&mut rng, l))
                } else {
                    (biased_seq(&mut rng, l), biased_seq(&mut rng, tiny))
                }
            }
        };
        pairs.push(pair);
    }
    pairs
}

fn scalar_reference(pairs: &[(Vec<u8>, Vec<u8>)], g: GapPenalties) -> Vec<i32> {
    pairs
        .iter()
        .map(|(q, r)| sw_score_only(q, r, &Blosum62, g).0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 generated batches, each checked against every available
    /// backend (so ≥256 cases per backend pair on any host — scalar vs
    /// SSE2 and scalar vs AVX2 on x86_64).
    #[test]
    fn every_backend_is_bit_identical_to_scalar(
        seed in 0u64..1_000_000_000,
        n_pairs in 1usize..32,
        max_len in 1usize..72,
    ) {
        let g = GapPenalties::pastis_defaults();
        let pairs = gen_pairs(seed, n_pairs, max_len);
        let borrowed: Vec<(&[u8], &[u8])> =
            pairs.iter().map(|(q, r)| (q.as_slice(), r.as_slice())).collect();
        let want = scalar_reference(&pairs, g);
        for backend in SimdBackend::available() {
            let got = sw_score_batch_simd(&borrowed, &Blosum62, g, backend);
            prop_assert_eq!(&got.scores, &want, "backend {}", backend);
            // Short pairs cannot reach i16 saturation.
            prop_assert_eq!(got.promotions, 0, "backend {}", backend);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pool dispatch path (lane packing + worker scheduling) holds the
    /// same contract, including bit-identical `BatchStats` counters across
    /// backends *and* thread counts. Fewer cases than the raw-kernel
    /// proptest above — each case runs seven full pools.
    #[test]
    fn pool_stats_are_identical_across_backends(
        seed in 0u64..1_000_000_000,
        n_pairs in 1usize..48,
    ) {
        let g = GapPenalties::pastis_defaults();
        let pairs = gen_pairs(seed, n_pairs, 80);
        let mut store: Vec<Vec<u8>> = Vec::with_capacity(pairs.len() * 2);
        let mut tasks = Vec::with_capacity(pairs.len());
        for (q, r) in pairs {
            tasks.push(AlignTask {
                query: store.len() as u32,
                reference: store.len() as u32 + 1,
                seed_q: 0,
                seed_r: 0,
            });
            store.push(q);
            store.push(r);
        }
        let lookup = |id: u32| -> &[u8] { &store[id as usize] };
        let (want, want_stats) = AlignPool::new(1)
            .with_simd(SimdBackend::Scalar)
            .run_score_only(&tasks, lookup, &Blosum62, g);
        for backend in SimdBackend::available() {
            for threads in [1usize, 3] {
                let (got, stats) = AlignPool::new(threads)
                    .with_simd(backend)
                    .run_score_only(&tasks, lookup, &Blosum62, g);
                prop_assert_eq!(&got, &want, "backend {} t{}", backend, threads);
                prop_assert_eq!(stats.pairs, want_stats.pairs);
                prop_assert_eq!(stats.cells, want_stats.cells);
                prop_assert_eq!(stats.max_cells, want_stats.max_cells);
                prop_assert_eq!(stats.lane_promotions, want_stats.lane_promotions);
                prop_assert_eq!(stats.simd, backend);
            }
        }
    }
}

/// All 21×21 single-residue pairings — including the most negative BLOSUM62
/// entries — at assorted lengths, on every backend. Catches sign/saturation
/// slips that biased sampling might miss.
#[test]
fn exhaustive_residue_pairings_match_scalar() {
    let g = GapPenalties::pastis_defaults();
    let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for a in 0..AA_COUNT as u8 {
        for b in 0..AA_COUNT as u8 {
            pairs.push((vec![a; 7], vec![b; 13]));
            pairs.push((vec![a; 1], vec![b; 1]));
        }
    }
    let borrowed: Vec<(&[u8], &[u8])> = pairs
        .iter()
        .map(|(q, r)| (q.as_slice(), r.as_slice()))
        .collect();
    let want = scalar_reference(&pairs, g);
    for backend in SimdBackend::available() {
        let got = sw_score_batch_simd(&borrowed, &Blosum62, g, backend);
        assert_eq!(got.scores, want, "{backend}");
        assert_eq!(got.promotions, 0, "{backend}");
    }
}

/// Self-alignments whose optimal score lands exactly at i16 saturation ±1:
/// 32766 must stay on the fast path, 32767 and 32768 must take the
/// promote-to-i32 rescue — and all three must match the scalar kernel
/// exactly on every backend.
#[test]
fn overflow_boundary_promotes_exactly_at_saturation() {
    let g = GapPenalties::pastis_defaults();
    // The construction relies on these BLOSUM62 diagonal entries.
    assert_eq!(Blosum62.score(W, W), 11);
    assert_eq!(Blosum62.score(A, A), 4);
    // 11·w + 4·a self-alignment scores, straddling i16::MAX = 32767.
    let compose = |w: usize, a: usize| -> Vec<u8> {
        let mut s = vec![W; w];
        s.extend(std::iter::repeat_n(A, a));
        s
    };
    let cases = [
        (compose(2978, 2), 32766i32, 0u64), // MAX−1: no promotion
        (compose(2977, 5), 32767i32, 1u64), // exactly MAX: promoted (rescue is exact)
        (compose(2976, 8), 32768i32, 1u64), // MAX+1: saturates, promoted
    ];
    for (seq, want_score, want_promotions) in &cases {
        let (scalar_score, _, _, _) = sw_score_only(seq, seq, &Blosum62, g);
        assert_eq!(scalar_score, *want_score, "construction is off");
        for backend in SimdBackend::available() {
            let got = sw_score_batch_simd(&[(seq, seq)], &Blosum62, g, backend);
            assert_eq!(got.scores[0], *want_score, "{backend} score");
            assert_eq!(
                got.promotions, *want_promotions,
                "{backend} promotions at score {want_score}"
            );
        }
    }
}

/// Promotions are pair-intrinsic: packing a saturating pair next to small
/// pairs in the same batch promotes exactly that pair, on every backend
/// and thread count, and the `align.lane_promotions` telemetry counter
/// reports it.
#[test]
fn lane_promotions_surface_in_stats_and_telemetry() {
    use pastis::trace::TraceSession;
    let g = GapPenalties::pastis_defaults();
    let big = {
        let mut s = vec![W; 2976];
        s.extend(std::iter::repeat_n(A, 8));
        s
    };
    let mut rng = StdRng::seed_from_u64(99);
    // Two saturating self-alignments buried among 30 ordinary pairs.
    let mut store: Vec<Vec<u8>> = vec![big.clone(), big];
    for _ in 0..30 {
        let len = rng.gen_range(10..60);
        store.push(biased_seq(&mut rng, len));
    }
    let mut tasks = vec![
        AlignTask {
            query: 0,
            reference: 0,
            seed_q: 0,
            seed_r: 0,
        },
        AlignTask {
            query: 1,
            reference: 1,
            seed_q: 0,
            seed_r: 0,
        },
    ];
    for i in 2..store.len() as u32 {
        tasks.push(AlignTask {
            query: i,
            reference: (i % 30) + 2,
            seed_q: 0,
            seed_r: 0,
        });
    }
    let lookup = |id: u32| -> &[u8] { &store[id as usize] };
    for backend in SimdBackend::available() {
        for threads in [1usize, 4] {
            let session = TraceSession::new();
            let rec = session.recorder(0);
            let pool = AlignPool::new(threads)
                .with_simd(backend)
                .with_recorder(rec.clone());
            let (results, stats) = pool.run_score_only(&tasks, lookup, &Blosum62, g);
            assert_eq!(results[0].score, 32768, "{backend} t{threads}");
            assert_eq!(results[1].score, 32768, "{backend} t{threads}");
            assert_eq!(stats.lane_promotions, 2, "{backend} t{threads}");
            assert_eq!(
                rec.counters().get("align.lane_promotions").copied(),
                Some(2.0),
                "{backend} t{threads}: counter missing or wrong"
            );
        }
    }
}

/// Bit-level identity of a similarity graph (the `tests/chaos.rs` pattern):
/// every field of every edge, floats by their exact bit patterns.
fn graph_bits(res: &SearchResult) -> Vec<(u32, u32, i32, u32, u32, u32)> {
    res.graph
        .edges()
        .iter()
        .map(|e| {
            (
                e.i,
                e.j,
                e.score,
                e.ani.to_bits(),
                e.coverage.to_bits(),
                e.common_kmers,
            )
        })
        .collect()
}

/// Whole-pipeline face of the contract on the chaos-test corpus: a
/// score-only search run under every backend (forced scalar, forced each
/// available backend, and auto) produces the bit-identical similarity
/// graph.
#[test]
fn pipeline_graph_is_bit_identical_across_backends() {
    use pastis::align::SimdPolicy;
    use pastis::core::params::AlignKind;
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 40,
        mean_len: 60.0,
        singleton_fraction: 0.3,
        divergence: 0.08,
        seed: 42,
        ..SyntheticConfig::small(40, 42)
    });
    let base = SearchParams {
        align_kind: AlignKind::ScoreOnly,
        ..SearchParams::test_defaults()
    }
    .with_blocking(2, 2)
    .with_align_threads(2);
    let want = {
        let params = base
            .clone()
            .with_simd(SimdPolicy::Force(SimdBackend::Scalar));
        graph_bits(&run_search_serial(&ds.store, &params).unwrap())
    };
    assert!(
        !want.is_empty(),
        "reference graph is empty; test is vacuous"
    );
    let mut policies = vec![SimdPolicy::Auto];
    policies.extend(SimdBackend::available().into_iter().map(SimdPolicy::Force));
    for policy in policies {
        let params = base.clone().with_simd(policy);
        let got = graph_bits(&run_search_serial(&ds.store, &params).unwrap());
        assert_eq!(got, want, "policy {policy:?} changed the graph");
    }
}
