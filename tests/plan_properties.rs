//! Property tests for the block-schedule invariants of Section VI-B.
//!
//! The correctness core of both load-balancing schemes is a covering
//! property: across all scheduled blocks, every unordered off-diagonal
//! pair `(i, j)` must be *alignable exactly once* — kept by the scheme's
//! pruning rule in exactly one of its two mirror positions, inside exactly
//! one block, and never inside a skipped (avoidable) block. These tests
//! check that exhaustively over randomized matrix sizes, blocking factors,
//! and grid geometries.

use pastis::comm::grid::BlockDist1D;
use pastis::core::{BlockClass, BlockPlan, LoadBalance};
use proptest::prelude::*;

fn ranges(n: usize, parts: usize) -> impl Fn(usize) -> (usize, usize) {
    let d = BlockDist1D::new(n, parts);
    move |i| {
        let s = d.part_offset(i);
        (s, s + d.part_len(i))
    }
}

/// For global position (i, j), which block contains it?
fn block_of(n: usize, br: usize, bc: usize, i: usize, j: usize) -> (usize, usize) {
    (
        BlockDist1D::new(n, br).owner(i),
        BlockDist1D::new(n, bc).owner(j),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_pair_alignable_exactly_once(
        n in 2usize..40,
        br in 1usize..8,
        bc in 1usize..8,
        scheme_idx in 0usize..2,
    ) {
        let br = br.min(n);
        let bc = bc.min(n);
        let scheme = if scheme_idx == 0 {
            LoadBalance::Triangular
        } else {
            LoadBalance::IndexBased
        };
        let plan = BlockPlan::new(scheme, br, bc, ranges(n, br), ranges(n, bc));
        let scheduled: std::collections::HashSet<(usize, usize)> =
            plan.tasks.iter().map(|t| (t.r, t.c)).collect();
        for i in 0..n {
            for j in 0..n {
                let kept = plan.keeps(i as u32, j as u32);
                if i == j {
                    prop_assert!(!kept, "diagonal ({i},{i}) kept");
                    continue;
                }
                // The position is *alignable* iff its block is scheduled
                // and the rule keeps it there.
                let in_scheduled = scheduled.contains(&block_of(n, br, bc, i, j));
                let alignable = kept && in_scheduled;
                let mirror_in_scheduled = scheduled.contains(&block_of(n, br, bc, j, i));
                let mirror_alignable =
                    plan.keeps(j as u32, i as u32) && mirror_in_scheduled;
                prop_assert!(
                    alignable ^ mirror_alignable,
                    "{scheme:?} n={n} br={br} bc={bc}: pair ({i},{j}) alignable {} times",
                    u8::from(alignable) + u8::from(mirror_alignable)
                );
            }
        }
    }

    #[test]
    fn avoidable_blocks_contain_no_kept_positions(
        n in 2usize..40,
        b in 1usize..8,
    ) {
        // Triangular scheme, square blocking: skipped blocks must be
        // genuinely avoidable — no strictly-upper element inside them.
        let b = b.min(n);
        let plan = BlockPlan::new(LoadBalance::Triangular, b, b, ranges(n, b), ranges(n, b));
        let scheduled: std::collections::HashSet<(usize, usize)> =
            plan.tasks.iter().map(|t| (t.r, t.c)).collect();
        let rd = BlockDist1D::new(n, b);
        for r in 0..b {
            for c in 0..b {
                if scheduled.contains(&(r, c)) {
                    continue;
                }
                let (r0, r1) = (rd.part_offset(r), rd.part_offset(r) + rd.part_len(r));
                let (c0, c1) = (rd.part_offset(c), rd.part_offset(c) + rd.part_len(c));
                for i in r0..r1 {
                    for j in c0..c1 {
                        prop_assert!(
                            j <= i,
                            "skipped block ({r},{c}) contains upper element ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_blocks_are_entirely_upper(
        n in 2usize..40,
        br in 1usize..8,
        bc in 1usize..8,
    ) {
        let br = br.min(n);
        let bc = bc.min(n);
        let plan = BlockPlan::new(LoadBalance::Triangular, br, bc, ranges(n, br), ranges(n, bc));
        let rd = BlockDist1D::new(n, br);
        let cd = BlockDist1D::new(n, bc);
        for t in &plan.tasks {
            if t.class != BlockClass::Full {
                continue;
            }
            let (r0, r1) = (rd.part_offset(t.r), rd.part_offset(t.r) + rd.part_len(t.r));
            let (c0, c1) = (cd.part_offset(t.c), cd.part_offset(t.c) + cd.part_len(t.c));
            for i in r0..r1 {
                for j in c0..c1 {
                    prop_assert!(j > i, "full block ({},{}) has ({i},{j})", t.r, t.c);
                }
            }
        }
    }

    #[test]
    fn class_counts_are_consistent(
        n in 2usize..60,
        br in 1usize..10,
        bc in 1usize..10,
    ) {
        let br = br.min(n);
        let bc = bc.min(n);
        let tri = BlockPlan::new(LoadBalance::Triangular, br, bc, ranges(n, br), ranges(n, bc));
        let idx = BlockPlan::new(LoadBalance::IndexBased, br, bc, ranges(n, br), ranges(n, bc));
        // Index-based computes everything.
        prop_assert_eq!(idx.tasks.len(), br * bc);
        prop_assert_eq!(idx.skipped_blocks(), 0);
        // Triangular partitions the grid into scheduled + skipped.
        prop_assert_eq!(tri.tasks.len() + tri.skipped_blocks(), br * bc);
        // Triangular never schedules more than index.
        prop_assert!(tri.tasks.len() <= idx.tasks.len());
        let (full, partial) = tri.class_counts();
        prop_assert_eq!(full + partial, tri.tasks.len());
    }
}
