//! Service conformance suite: `pastis serve` against a persisted index
//! must be **byte-identical** to the batch `pastis search` whenever the
//! query stream is the reference set itself — for every admission batch
//! split, thread count, SIMD backend, alignment kernel, and cache
//! setting. This is the contract that makes the serving mode a drop-in
//! face of the same search, not a second implementation with its own
//! answers.

use pastis::core::pipeline::run_search_serial;
use pastis::core::{
    build_index, serve_queries, IndexBuildConfig, PersistedIndex, SearchParams, ServeConfig,
};
use pastis::seqio::fasta::SeqStore;
use pastis::seqio::{SyntheticConfig, SyntheticDataset};
use std::path::PathBuf;

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 80,
        divergence: 0.06,
        indel_prob: 0.01,
        mean_len: 90.0,
        singleton_fraction: 0.3,
        seed: 99,
        ..SyntheticConfig::small(80, 99)
    })
}

fn params() -> SearchParams {
    SearchParams {
        k: 5,
        common_kmer_threshold: 2,
        ani_threshold: 0.4,
        coverage_threshold: 0.5,
        ..SearchParams::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pastis-serve-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build(store: &SeqStore, p: &SearchParams, stripe_cols: usize, tag: &str) -> PersistedIndex {
    let dir = tmpdir(tag);
    let cfg = IndexBuildConfig {
        k: p.k,
        alphabet: p.alphabet,
        substitute_kmers: p.substitute_kmers,
        stripe_cols,
        mem_budget: None,
    };
    build_index(store, &cfg, &dir, &pastis::trace::Recorder::disabled()).unwrap();
    PersistedIndex::open(&dir).unwrap()
}

#[test]
fn self_serve_is_byte_identical_across_splits_threads_and_cache() {
    let ds = dataset();
    let p = params();
    let want = run_search_serial(&ds.store, &p)
        .unwrap()
        .graph
        .to_tsv_lines();
    assert!(
        want.len() > 10,
        "dataset too easy/hard: {} edges",
        want.len()
    );

    // Two stripe decompositions of the same index, to prove shard layout
    // is invisible too.
    for (stripe_cols, tag) in [(17usize, "s17"), (4096, "s4096")] {
        let idx = build(&ds.store, &p, stripe_cols, tag);
        for max_batch in [3usize, 64] {
            for threads in [1usize, 3] {
                for cache_entries in [0usize, 32] {
                    let mut sp = p.clone();
                    sp.align_threads = threads;
                    let cfg = ServeConfig {
                        params: sp,
                        max_batch,
                        max_wait_us: 1_000_000,
                        cache_entries,
                    };
                    let out = serve_queries(&idx, &ds.store, &cfg).unwrap();
                    assert!(out.stats.self_mode);
                    assert_eq!(
                        out.lines, want,
                        "stripe_cols={stripe_cols} max_batch={max_batch} \
                         threads={threads} cache={cache_entries}"
                    );
                }
            }
        }
        // The unified work pool is just another thread configuration.
        let mut sp = p.clone();
        sp.threads = Some(2);
        let cfg = ServeConfig {
            params: sp,
            max_batch: 16,
            max_wait_us: 1_000_000,
            cache_entries: 8,
        };
        assert_eq!(serve_queries(&idx, &ds.store, &cfg).unwrap().lines, want);
    }
}

#[test]
fn self_serve_score_only_matches_batch_for_scalar_and_auto_simd() {
    use pastis::align::SimdPolicy;
    use pastis::core::params::AlignKind;

    let ds = dataset();
    let mut p = params();
    p.align_kind = AlignKind::ScoreOnly;
    let idx = build(&ds.store, &p, 64, "simd");
    for simd in ["scalar", "auto"] {
        let mut sp = p.clone();
        sp.simd = SimdPolicy::parse(simd).unwrap();
        let want = run_search_serial(&ds.store, &sp)
            .unwrap()
            .graph
            .to_tsv_lines();
        assert!(!want.is_empty());
        for cache_entries in [0usize, 16] {
            let cfg = ServeConfig {
                params: sp.clone(),
                max_batch: 10,
                max_wait_us: 1_000_000,
                cache_entries,
            };
            let out = serve_queries(&idx, &ds.store, &cfg).unwrap();
            assert_eq!(out.lines, want, "simd={simd} cache={cache_entries}");
        }
    }
}

#[test]
fn general_mode_duplicated_stream_caches_and_matches_cold_run() {
    let ds = dataset();
    let p = params();
    let idx = build(&ds.store, &p, 32, "dup");
    // A duplicated subset stream: not the reference set → general mode.
    let mut queries = SeqStore::new();
    for pick in [0usize, 5, 0, 9, 5, 0, 17] {
        queries.push(format!("q{pick}"), ds.store.seq(pick).to_vec());
    }
    let mk = |cache: usize, max_batch: usize| ServeConfig {
        params: p.clone(),
        max_batch,
        max_wait_us: 1_000_000,
        cache_entries: cache,
    };
    let cold = serve_queries(&idx, &queries, &mk(0, 2)).unwrap();
    assert!(!cold.stats.self_mode);
    assert_eq!(cold.stats.cache_hits, 0);
    for (cache, max_batch) in [(16usize, 2usize), (16, 7), (2, 3)] {
        let out = serve_queries(&idx, &queries, &mk(cache, max_batch)).unwrap();
        assert_eq!(out.lines, cold.lines, "cache={cache} max_batch={max_batch}");
        assert!(
            out.stats.cache_hits > 0,
            "duplicated stream must hit: {:?}",
            out.stats
        );
    }
}

#[test]
fn reopened_index_serves_identically_and_stale_params_refuse() {
    let ds = dataset();
    let p = params();
    let idx = build(&ds.store, &p, 23, "reopen");
    let cfg = ServeConfig {
        params: p.clone(),
        max_batch: 16,
        max_wait_us: 1_000_000,
        cache_entries: 0,
    };
    let first = serve_queries(&idx, &ds.store, &cfg).unwrap();
    // A fresh open of the same directory — fully from disk — serves the
    // same bytes.
    let reopened = PersistedIndex::open(&idx.dir).unwrap();
    assert_eq!(
        serve_queries(&reopened, &ds.store, &cfg).unwrap().lines,
        first.lines
    );
    // Mismatched k-mer parameters refuse with the stale-index message.
    let mut stale = cfg.clone();
    stale.params.k = p.k + 1;
    let err = serve_queries(&reopened, &ds.store, &stale).unwrap_err();
    assert!(err.contains("stale index"), "{err}");
}
