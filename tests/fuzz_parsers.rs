//! Structure-aware fuzzing of every strict parser in the workspace
//! (ROADMAP #4, the rusteomics dedicated-fuzz-target pattern).
//!
//! The robustness contract for each text format — FASTA, the `FaultPlan`
//! CLI spec, and the CRC-framed checkpoint / spill / index-shard headers —
//! is the same: arbitrary bytes must yield `Err`, never a panic, and a
//! mutated (truncated or byte-flipped) valid document must either fail
//! parsing or decode to the exact original value. The CRC trailer makes
//! the second half a hard guarantee rather than a hope: any accepted
//! mutant must re-render byte-identically.
//!
//! Two input regimes per parser:
//! * **unstructured** — arbitrary bytes/text, asserting totality;
//! * **structured** — a valid document generated from an arbitrary value,
//!   round-tripped, then mutated one byte (or cut) at a time.

use proptest::prelude::*;

use pastis::baselines::BaselineCheckpoint;
use pastis::comm::FaultPlan;
use pastis::core::checkpoint::{Checkpoint, IndexShard, SpillShard};
use pastis::core::pipeline::BlockTiming;
use pastis::core::{IndexManifest, SearchStats, SimilarityEdge};
use pastis::seqio::fasta::{parse_fasta, FastaStream, SeqStore};
use pastis::seqio::ReducedAlphabet;

// --- Builders from primitive draws (the vendored proptest generates
// --- primitives; structure is assembled here). ---

type EdgeRaw = (u32, u32, i32, u32, u32, u32);

fn edges_from(raw: &[EdgeRaw]) -> Vec<SimilarityEdge> {
    raw.iter()
        .map(|&(i, j, score, ani, cov, common_kmers)| SimilarityEdge {
            i,
            j,
            score,
            ani: ani as f32 / 1000.0,
            coverage: cov as f32 / 1000.0,
            common_kmers,
        })
        .collect()
}

fn name_from(raw: &[u8]) -> String {
    raw.iter().map(|&b| (b'a' + b % 26) as char).collect()
}

/// Truncate a (pure-ASCII) document at `cut % len` bytes.
fn truncated(doc: &str, cut: usize) -> &str {
    &doc[..cut % doc.len()]
}

/// Overwrite one byte of a (pure-ASCII) document with a printable char.
fn flipped(doc: &str, idx: usize, ch: u8) -> String {
    let mut bytes = doc.as_bytes().to_vec();
    let idx = idx % bytes.len();
    bytes[idx] = ch;
    String::from_utf8(bytes).expect("printable-ASCII flip keeps UTF-8")
}

/// The mutation contract for a CRC-framed format: a mutant either fails to
/// parse, or re-renders byte-identically to the original document.
macro_rules! assert_mutation_safe {
    ($parse:path, $doc:expr, $cut:expr, $idx:expr, $ch:expr) => {{
        let doc: &str = $doc;
        if let Ok(p) = $parse(truncated(doc, $cut)) {
            prop_assert_eq!(p.to_text(), doc);
        }
        if let Ok(p) = $parse(&flipped(doc, $idx, $ch)) {
            prop_assert_eq!(p.to_text(), doc);
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- Unstructured: totality over arbitrary input. ---

    #[test]
    fn fasta_parsers_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let _ = parse_fasta(&bytes[..]);
        // The streaming reader must agree and also never panic, including
        // with a tiny per-record bound engaged.
        let _ = FastaStream::new(&bytes[..]).collect::<Result<Vec<_>, _>>();
        let _ = FastaStream::new(&bytes[..]).with_record_bound(16).collect::<Result<Vec<_>, _>>();
        let _ = SeqStore::from_fasta_stream(FastaStream::new(&bytes[..]));
    }

    #[test]
    fn header_parsers_never_panic_on_arbitrary_text(bytes in proptest::collection::vec(9u8..127, 0..300)) {
        let s = String::from_utf8(bytes).expect("ASCII bytes");
        let _ = FaultPlan::parse(&s);
        let _ = Checkpoint::parse(&s);
        let _ = SpillShard::parse(&s);
        let _ = IndexShard::parse(&s);
        let _ = IndexManifest::parse(&s);
        let _ = BaselineCheckpoint::parse(&s);
    }

    #[test]
    fn header_parsers_never_panic_on_structured_noise(
        prefix_idx in 0usize..8, key_raw in proptest::collection::vec(0u8..26, 0..14),
        val_raw in proptest::collection::vec(0u8..16, 0..24),
    ) {
        // Noise biased toward the grammars: magic lines, key=value
        // fields, hex digits, and trailers, in arbitrary combination.
        const PREFIXES: [&str; 8] = [
            "", "PASTIS-CKPT 1\n", "PASTIS-SPILL 1\n", "PASTIS-IDX 1\n",
            "PASTIS-IDXMAN 1\n", "PASTIS-PFIDX 1\n", "end ", "chaos",
        ];
        let key = name_from(&key_raw);
        let val: String = val_raw.iter().map(|&b| char::from_digit(b as u32, 16).unwrap()).collect();
        let s = format!("{}{key}={val}\nend {val}", PREFIXES[prefix_idx]);
        let _ = FaultPlan::parse(&s);
        let _ = Checkpoint::parse(&s);
        let _ = SpillShard::parse(&s);
        let _ = IndexShard::parse(&s);
        let _ = IndexManifest::parse(&s);
        let _ = BaselineCheckpoint::parse(&s);
    }

    // --- Structured: round-trip + one-byte mutations. ---

    #[test]
    fn checkpoint_mutations_err_or_decode_identically(
        fingerprint in 0u64..=u64::MAX, rank in 0usize..8, nranks in 1usize..8,
        blocks_raw in proptest::collection::vec(
            (0usize..8, 0usize..8, 0.0f64..100.0, 0.0f64..100.0, 0u64..=u64::MAX, 0u64..=u64::MAX),
            0..4,
        ),
        edges_raw in proptest::collection::vec((0u32..500, 500u32..1000, -1000i32..1000, 0u32..1000, 0u32..1000, 0u32..=u32::MAX), 0..6),
        counters in (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
        secs in (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0),
        cut in 0usize..1_000_000, idx in 0usize..1_000_000, ch in 0x20u8..0x7f,
    ) {
        let per_block: Vec<BlockTiming> = blocks_raw
            .iter()
            .map(|&(r, c, sparse_seconds, align_seconds, candidates, aligned_pairs)| BlockTiming {
                r, c, sparse_seconds, align_seconds, candidates, aligned_pairs,
            })
            .collect();
        let stats = SearchStats {
            candidates: counters.0,
            aligned_pairs: counters.1,
            cells: counters.2,
            similar_pairs: counters.3,
            spgemm_products: counters.4,
            total_seconds: secs.0,
            align_kernel_seconds: secs.1,
            align_cpu_seconds: secs.2,
        };
        let ck = Checkpoint {
            fingerprint,
            rank,
            nranks,
            n_vertices: 1000,
            blocks_done: per_block.len(),
            stats,
            times: Default::default(),
            per_block,
            edges: edges_from(&edges_raw),
        };
        let doc = ck.to_text();
        prop_assert_eq!(Checkpoint::parse(&doc).expect("valid doc").to_text(), doc.clone());
        assert_mutation_safe!(Checkpoint::parse, &doc, cut, idx, ch);
    }

    #[test]
    fn spill_shard_mutations_err_or_decode_identically(
        fingerprint in 0u64..=u64::MAX, rank in 0usize..8, block in 0usize..64,
        edges_raw in proptest::collection::vec((0u32..500, 500u32..1000, -1000i32..1000, 0u32..1000, 0u32..1000, 0u32..=u32::MAX), 0..6),
        cut in 0usize..1_000_000, idx in 0usize..1_000_000, ch in 0x20u8..0x7f,
    ) {
        let sh = SpillShard { fingerprint, rank, block, edges: edges_from(&edges_raw) };
        let doc = sh.to_text();
        prop_assert_eq!(SpillShard::parse(&doc).expect("valid doc").to_text(), doc.clone());
        assert_mutation_safe!(SpillShard::parse, &doc, cut, idx, ch);
    }

    #[test]
    fn index_shard_mutations_err_or_decode_identically(
        fingerprint in 0u64..=u64::MAX, rank in 0usize..6, side in 0u8..2, stripe in 0usize..6,
        nrows in 0usize..4, ncols in 1u32..8,
        row_masks in proptest::collection::vec(0u64..=u64::MAX, 4),
        vals_raw in proptest::collection::vec(0u32..=u32::MAX, 1..32),
        cut in 0usize..1_000_000, idx in 0usize..1_000_000, ch in 0x20u8..0x7f,
    ) {
        // Assemble a CSR that satisfies the invariants IndexShard::parse
        // enforces: sorted unique in-bounds columns per row.
        let mut rowptr = vec![0usize];
        let mut cols: Vec<u32> = Vec::new();
        for mask in row_masks.iter().take(nrows) {
            cols.extend((0..ncols).filter(|c| mask & (1u64 << c) != 0));
            rowptr.push(cols.len());
        }
        let vals: Vec<u32> = (0..cols.len()).map(|k| vals_raw[k % vals_raw.len()]).collect();
        let sh = IndexShard {
            fingerprint,
            rank,
            is_a: side == 0,
            stripe,
            nrows,
            ncols: ncols as usize,
            rowptr,
            cols,
            vals,
        };
        let doc = sh.to_text();
        prop_assert_eq!(IndexShard::parse(&doc).expect("valid doc").to_text(), doc.clone());
        assert_mutation_safe!(IndexShard::parse, &doc, cut, idx, ch);
    }

    #[test]
    fn index_manifest_mutations_err_or_decode_identically(
        fingerprint in 0u64..=u64::MAX, refs_digest in 0u64..=u64::MAX,
        k in 1usize..=12, alphabet_idx in 0u8..3, substitute_kmers in 0usize..3,
        n_refs in 1usize..2000, stripe_cols in 1usize..300,
        col_steps in proptest::collection::vec(1u32..5000, 0..24),
        cut in 0usize..1_000_000, idx in 0usize..1_000_000, ch in 0x20u8..0x7f,
    ) {
        // Strictly-increasing column map from positive increments; stripe
        // arithmetic derived so the document satisfies parse's invariants.
        let mut acc = 0u32;
        let col_map: Vec<u32> = col_steps.iter().map(|&s| { acc += s; acc - 1 }).collect();
        let alphabet = [
            ReducedAlphabet::Full20,
            ReducedAlphabet::Murphy10,
            ReducedAlphabet::Dayhoff6,
        ][alphabet_idx as usize];
        let m = IndexManifest {
            fingerprint,
            k,
            alphabet,
            substitute_kmers,
            n_refs,
            refs_digest,
            stripe_cols,
            n_stripes: n_refs.div_ceil(stripe_cols),
            col_map,
        };
        let doc = m.to_text();
        prop_assert_eq!(IndexManifest::parse(&doc).expect("valid doc").to_text(), doc.clone());
        assert_mutation_safe!(IndexManifest::parse, &doc, cut, idx, ch);
    }

    #[test]
    fn baseline_ckpt_mutations_err_or_decode_identically(
        fingerprint in 0u64..=u64::MAX, units in 1usize..10, done_raw in 0usize..10,
        counters_raw in proptest::collection::vec((proptest::collection::vec(0u8..26, 1..12), 0u64..=u64::MAX), 0..4),
        edges_raw in proptest::collection::vec((0u32..500, 500u32..1000, -1000i32..1000, 0u32..1000, 0u32..1000, 0u32..=u32::MAX), 0..6),
        cut in 0usize..1_000_000, idx in 0usize..1_000_000, ch in 0x20u8..0x7f,
    ) {
        let ck = BaselineCheckpoint {
            fingerprint,
            units_done: done_raw % (units + 1),
            units,
            counters: counters_raw.iter().map(|(n, v)| (name_from(n), *v)).collect(),
            edges: edges_from(&edges_raw),
        };
        let doc = ck.to_text();
        prop_assert_eq!(BaselineCheckpoint::parse(&doc).expect("valid doc").to_text(), doc.clone());
        assert_mutation_safe!(BaselineCheckpoint::parse, &doc, cut, idx, ch);
    }

    #[test]
    fn fault_plan_valid_specs_parse_and_mutants_never_panic(
        seed in 0u64..=u64::MAX, p1 in 0.0f64..1.0, p2 in 0.0f64..1.0, us in 0u64..5000,
        idx in 0usize..1_000_000, ch in 0x20u8..0x7f,
    ) {
        let spec = format!(
            "seed={seed},drop={p1:.3},spill_corrupt={p2:.3},spill_disk_full={p1:.3},spill_stall={p2:.3}:{us}"
        );
        let plan = FaultPlan::parse(&spec).expect("valid spec");
        prop_assert_eq!(plan.seed, seed);
        // A one-char mutant must parse or fail cleanly, never panic.
        let _ = FaultPlan::parse(&flipped(&spec, idx, ch));
        let _ = FaultPlan::parse(truncated(&spec, idx));
    }

    #[test]
    fn fasta_valid_docs_roundtrip_and_mutants_never_panic(
        records_raw in proptest::collection::vec(
            (proptest::collection::vec(0u8..26, 1..10), 0u8..2, proptest::collection::vec(0u8..20, 1..40)),
            1..5,
        ),
        idx in 0usize..1_000_000, ch in 0u8..=255,
    ) {
        const RESIDUES: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
        let records: Vec<(String, bool, String)> = records_raw
            .iter()
            .map(|(id, desc, seq)| {
                (
                    name_from(id),
                    *desc == 1,
                    seq.iter().map(|&b| RESIDUES[b as usize] as char).collect(),
                )
            })
            .collect();
        let mut doc = String::new();
        for (id, with_desc, seq) in &records {
            if *with_desc {
                doc.push_str(&format!(">{id} some description\n{seq}\n"));
            } else {
                doc.push_str(&format!(">{id}\n{seq}\n"));
            }
        }
        let parsed = parse_fasta(doc.as_bytes()).expect("valid FASTA");
        prop_assert_eq!(parsed.len(), records.len());
        for (rec, (id, _, seq)) in parsed.iter().zip(&records) {
            prop_assert_eq!(&rec.id, id);
            prop_assert_eq!(&rec.seq, seq);
        }
        // Streaming parser sees the same records.
        let streamed: Vec<_> = FastaStream::new(doc.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .expect("valid FASTA streams");
        prop_assert_eq!(streamed, parsed);
        // One flipped byte: any outcome but a panic.
        let mut bytes = doc.into_bytes();
        let i = idx % bytes.len();
        bytes[i] = ch;
        let _ = parse_fasta(&bytes[..]);
        let _ = FastaStream::new(&bytes[..]).collect::<Result<Vec<_>, _>>();
    }
}
