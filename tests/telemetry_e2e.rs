//! End-to-end contract of the run-telemetry layer (referenced from
//! `pastis_core::pipeline`): tracing is *observation-only* — the similarity
//! graph and the work counters are bit-identical with telemetry on or off,
//! at any parallelism — and a traced multi-rank session is *complete*: every
//! rank contributes every pipeline phase, the alignment pool emits worker
//! occupancy sub-tracks, the instrumented communicator records traffic, and
//! both exporters round-trip the session.

use std::sync::Arc;

use pastis::comm::{run_threaded, Communicator, ProcessGrid, TracedComm};
use pastis::core::pipeline::{run_search_serial, run_search_serial_traced, run_search_traced};
use pastis::core::SearchParams;
use pastis::seqio::{SyntheticConfig, SyntheticDataset};
use pastis::trace::{chrome_trace_json, MetricsReport, Recorder, TraceSession, Track};

fn dataset() -> pastis::seqio::SeqStore {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 60,
        mean_len: 70.0,
        singleton_fraction: 0.35,
        divergence: 0.10,
        seed: 321,
        ..SyntheticConfig::small(60, 321)
    })
    .store
}

fn fingerprint(graph: &pastis::core::SimilarityGraph) -> Vec<(u32, u32, i32, u32)> {
    graph
        .edges()
        .iter()
        .map(|e| (e.i, e.j, e.score, e.common_kmers))
        .collect()
}

#[test]
fn telemetry_is_observation_only_at_any_align_thread_count() {
    // The determinism guarantee (tests/determinism.rs) extends to the
    // telemetry switch: turning the recorder on must not perturb the graph
    // or the work accounting, whether each rank aligns serially or on a
    // worker pool.
    let store = dataset();
    for threads in [1usize, 2, 4] {
        let params = SearchParams::test_defaults().with_align_threads(threads);
        let off = run_search_serial(&store, &params).unwrap();
        let session = TraceSession::new();
        let on = run_search_serial_traced(&store, &params, &session.recorder(0)).unwrap();
        assert!(off.graph.n_edges() > 5, "run found almost nothing");
        assert_eq!(
            fingerprint(&on.graph),
            fingerprint(&off.graph),
            "align_threads={threads}: telemetry changed the graph"
        );
        assert_eq!(on.stats.aligned_pairs, off.stats.aligned_pairs);
        assert_eq!(on.stats.cells, off.stats.cells);
        assert_eq!(on.stats.similar_pairs, off.stats.similar_pairs);
        // ...and the traced run actually recorded something.
        assert!(!session.recorder(0).snapshot_spans().is_empty());
    }
}

#[test]
fn four_rank_traced_session_is_complete() {
    let p = 4usize;
    let store = Arc::new(dataset());
    let params = Arc::new(SearchParams::test_defaults().with_align_threads(2));
    let session = Arc::new(TraceSession::new());
    let want = {
        let res = run_search_serial(&store, &params).unwrap();
        fingerprint(&res.graph)
    };

    let sess = Arc::clone(&session);
    let outs = run_threaded(p, move |c| {
        let rec = sess.recorder(c.rank());
        let comm = TracedComm::new(c.split(0, c.rank()), rec.clone());
        let grid = ProcessGrid::square(comm);
        let res = run_search_traced(&grid, &store, &params, &rec).unwrap();
        fingerprint(&res.gather_graph(grid.world()))
    });
    for fp in outs {
        assert_eq!(fp, want, "traced 4-rank run changed the graph");
    }

    // Every rank's timeline carries every pipeline phase, plus at least one
    // alignment-worker occupancy span on a sub-track.
    for rank in 0..p {
        let rec = session.recorder(rank);
        let spans = rec.snapshot_spans();
        for phase in [
            "kmer_matrix",
            "summa.block",
            "align.batch",
            "output.assembly",
        ] {
            assert!(
                spans.iter().any(|s| s.name == phase),
                "rank {rank} missing {phase} span"
            );
        }
        assert!(
            spans
                .iter()
                .any(|s| matches!(s.track, Track::AlignWorker(_))),
            "rank {rank} has no align-worker sub-track span"
        );
        // The instrumented communicator saw traffic on this rank.
        let comms = rec.snapshot_comms();
        assert!(!comms.is_empty(), "rank {rank} recorded no comm events");
        assert!(
            comms.iter().map(|e| e.bytes).sum::<u64>() > 0,
            "rank {rank} recorded zero comm bytes"
        );
    }

    // Both exporters round-trip the live session.
    let trace = chrome_trace_json(&session);
    let parsed = pastis::trace::json::parse(&trace).expect("chrome trace is valid JSON");
    assert!(parsed.get("traceEvents").is_some());
    let metrics = MetricsReport::from_session(&session);
    let parsed = MetricsReport::parse_json(&metrics.to_json()).expect("metrics round-trip");
    assert_eq!(parsed.nranks, p);
    assert!(parsed.phase_names.iter().any(|s| s == "align"));
    assert!(parsed.phase_names.iter().any(|s| s == "spgemm"));
}

#[test]
fn overlapped_run_telemetry_proves_interleaving() {
    // The overlap tentpole's observable contract: with `--overlap` and the
    // unified pool on, the timeline must show (a) a SUMMA broadcast
    // prefetch running *inside* a stage's local SpGEMM compute span,
    // (b) a pre-blocked sparse block running concurrently with the
    // previous block's alignment, and (c) the pool's steal counter
    // published on every rank — while the graph stays bit-identical to
    // the serial reference.
    let p = 4usize;
    let store = Arc::new(dataset());
    let params = Arc::new(
        SearchParams::test_defaults()
            .with_blocking(2, 2)
            .with_pre_blocking(true)
            .with_threads(2)
            .with_overlap(true),
    );
    let session = Arc::new(TraceSession::new());
    let want = {
        let serial = SearchParams::test_defaults().with_blocking(2, 2);
        fingerprint(&run_search_serial(&store, &serial).unwrap().graph)
    };

    let sess = Arc::clone(&session);
    let outs = run_threaded(p, move |c| {
        let rec = sess.recorder(c.rank());
        let comm = TracedComm::new(c.split(0, c.rank()), rec.clone());
        let grid = ProcessGrid::square(comm);
        let res = run_search_traced(&grid, &store, &params, &rec).unwrap();
        fingerprint(&res.gather_graph(grid.world()))
    });
    for fp in outs {
        assert_eq!(fp, want, "overlapped pooled run changed the graph");
    }

    // (a) Broadcast prefetch inside SpGEMM compute. The stage span opens
    // on the issuing thread before the compute thread is spawned, so
    // `prefetch.start >= stage.start` is guaranteed; a prefetch that also
    // starts before the stage ends was truly concurrent with compute.
    let mut bcast_overlaps = 0usize;
    // (b) Pre-blocking: block k+1's SUMMA runs while block k aligns.
    let mut block_overlaps = 0usize;
    for rank in 0..p {
        let rec = session.recorder(rank);
        let spans = rec.snapshot_spans();
        let stages: Vec<_> = spans.iter().filter(|s| s.name == "spgemm.stage").collect();
        let prefetches: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "summa.bcast.prefetch")
            .collect();
        assert!(
            !stages.is_empty() && !prefetches.is_empty(),
            "rank {rank}: overlapped run emitted no stage/prefetch spans"
        );
        bcast_overlaps += prefetches
            .iter()
            .filter(|f| {
                stages
                    .iter()
                    .any(|s| f.start_us >= s.start_us && f.start_us < s.end_us())
            })
            .count();
        let aligns: Vec<_> = spans.iter().filter(|s| s.name == "align.batch").collect();
        let sparse: Vec<_> = spans.iter().filter(|s| s.name == "summa.block").collect();
        block_overlaps += sparse
            .iter()
            .filter(|b| {
                aligns
                    .iter()
                    .any(|a| b.start_us < a.end_us() && a.start_us < b.end_us())
            })
            .count();
        // The pooled kernels ran on shared pool worker tracks.
        assert!(
            spans
                .iter()
                .any(|s| matches!(s.track, Track::PoolWorker(_))),
            "rank {rank}: no span landed on a unified-pool worker track"
        );
        // (c) The steal counter is published (stealing itself depends on
        // timing; the counter existing with a sane value is the contract).
        let steals = rec.counters()["pool.steals"];
        assert!(
            steals.is_finite() && steals >= 0.0,
            "rank {rank}: bad pool.steals counter {steals}"
        );
    }
    assert!(
        bcast_overlaps > 0,
        "no SUMMA broadcast prefetch overlapped a stage's SpGEMM compute"
    );
    assert!(
        block_overlaps > 0,
        "no pre-blocked sparse block overlapped the previous block's alignment"
    );
}

#[test]
fn disabled_recorder_pipeline_records_nothing() {
    // The `--no-telemetry` path: a disabled recorder flows through the whole
    // pipeline (including the align pool and the traced communicator) and
    // stays empty, while still producing the right answer.
    let store = Arc::new(dataset());
    let params = Arc::new(SearchParams::test_defaults().with_align_threads(2));
    let want = fingerprint(&run_search_serial(&store, &params).unwrap().graph);
    let outs = run_threaded(4, move |c| {
        let rec = Recorder::disabled();
        let comm = TracedComm::new(c.split(0, c.rank()), rec.clone());
        let grid = ProcessGrid::square(comm);
        let res = run_search_traced(&grid, &store, &params, &rec).unwrap();
        assert!(rec.snapshot_spans().is_empty());
        assert!(rec.snapshot_comms().is_empty());
        assert!(rec.counters().is_empty());
        fingerprint(&res.gather_graph(grid.world()))
    });
    for fp in outs {
        assert_eq!(fp, want);
    }
}
