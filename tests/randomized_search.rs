//! Randomized end-to-end invariants: many seeds, many configurations, one
//! truth — the functional pipeline must agree with itself under every
//! execution strategy, and its counters must stay coherent.

use pastis::comm::{run_threaded, Communicator, ProcessGrid};
use pastis::core::pipeline::run_search_serial;
use pastis::core::{run_search, LoadBalance, SearchParams};
use pastis::seqio::{SyntheticConfig, SyntheticDataset};

fn dataset(seed: u64, n: usize) -> SyntheticDataset {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: n,
        mean_len: 50.0 + (seed % 5) as f64 * 15.0,
        singleton_fraction: 0.2 + (seed % 3) as f64 * 0.15,
        divergence: 0.05 + (seed % 4) as f64 * 0.04,
        seed,
        ..SyntheticConfig::small(n, seed)
    })
}

#[test]
fn counters_are_coherent_across_seeds() {
    for seed in [1u64, 7, 23, 99, 1234] {
        let ds = dataset(seed, 50);
        let res = run_search_serial(&ds.store, &SearchParams::test_defaults()).unwrap();
        let s = &res.stats;
        assert!(s.candidates >= s.aligned_pairs, "seed {seed}");
        assert!(s.aligned_pairs >= s.similar_pairs, "seed {seed}");
        assert_eq!(s.similar_pairs as usize, res.graph.n_edges(), "seed {seed}");
        // Every aligned pair contributes its full DP matrix.
        if s.aligned_pairs > 0 {
            assert!(s.cells > 0, "seed {seed}");
        }
        // Edges reference valid vertices with sane metrics.
        for e in res.graph.edges() {
            assert!(e.i < e.j, "seed {seed}");
            assert!((e.j as usize) < ds.store.len(), "seed {seed}");
            assert!((0.0..=1.0).contains(&(e.ani as f64)), "seed {seed}");
            assert!((0.0..=1.0).contains(&(e.coverage as f64)), "seed {seed}");
            assert!(e.score > 0, "seed {seed}");
            assert!(e.common_kmers >= 1, "seed {seed}");
        }
    }
}

#[test]
fn randomized_configs_agree_with_serial_reference() {
    // A matrix of (seed, p, blocking, scheme, pre-blocking) combinations;
    // all must produce the serial reference's edge set.
    let cases = [
        (
            11u64,
            4usize,
            (2usize, 3usize),
            LoadBalance::IndexBased,
            false,
        ),
        (11, 9, (3, 3), LoadBalance::Triangular, true),
        (42, 4, (5, 1), LoadBalance::Triangular, false),
        (42, 4, (1, 5), LoadBalance::IndexBased, true),
        (77, 9, (4, 4), LoadBalance::IndexBased, true),
    ];
    for (seed, p, (br, bc), lb, pb) in cases {
        let ds = dataset(seed, 45);
        let reference = run_search_serial(&ds.store, &SearchParams::test_defaults())
            .unwrap()
            .graph;
        let want: Vec<(u32, u32)> = reference.edges().iter().map(|e| e.key()).collect();
        let params = SearchParams::test_defaults()
            .with_blocking(br, bc)
            .with_load_balance(lb)
            .with_pre_blocking(pb);
        let store = ds.store.clone();
        let out = run_threaded(p, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let res = run_search(&grid, &store, &params).unwrap();
            res.gather_graph(grid.world())
                .edges()
                .iter()
                .map(|e| e.key())
                .collect::<Vec<_>>()
        });
        for got in out {
            assert_eq!(
                got, want,
                "seed={seed} p={p} blocks={br}x{bc} {lb:?} pb={pb}"
            );
        }
    }
}

#[test]
fn graph_analyses_agree_between_backends() {
    // Connected components: serial union-find vs distributed label
    // propagation on the rank-local edge fragments.
    for seed in [3u64, 17] {
        let ds = dataset(seed, 40);
        let serial = run_search_serial(&ds.store, &SearchParams::test_defaults()).unwrap();
        let want = serial.graph.connected_components();
        let store = ds.store.clone();
        let out = run_threaded(4, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let res = run_search(&grid, &store, &SearchParams::test_defaults()).unwrap();
            pastis::core::distributed_components(grid.world(), &res.graph)
        });
        for labels in out {
            assert_eq!(labels, want, "seed {seed}");
        }
    }
}

#[test]
fn mcl_refines_connected_components() {
    // Every MCL cluster must sit inside one connected component (MCL can
    // split components, never join them).
    let ds = dataset(5, 60);
    let res = run_search_serial(&ds.store, &SearchParams::test_defaults()).unwrap();
    let cc = res.graph.connected_components();
    let m = pastis::core::mcl(&res.graph, &pastis::core::MclParams::default());
    let mut label_to_cc: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (v, &comp) in cc.iter().enumerate() {
        let entry = label_to_cc.entry(m.labels[v]).or_insert(comp);
        assert_eq!(
            *entry, comp,
            "MCL cluster {} spans components {} and {}",
            m.labels[v], entry, comp
        );
    }
}
