//! Search sensitivity against planted ground truth.
//!
//! The synthetic generator plants homolog families; these tests measure
//! recall/precision of the end-to-end search and exercise the paper's
//! sensitivity options (Section V): reduced alphabets and substitute
//! k-mers "enable PASTIS to reach out different regions of the overall
//! search space and increase the effectiveness of the search".

use pastis::core::pipeline::run_search_serial;
use pastis::core::SearchParams;
use pastis::seqio::{ReducedAlphabet, SyntheticConfig, SyntheticDataset};

fn recall_and_precision(ds: &SyntheticDataset, params: &SearchParams) -> (f64, f64, usize) {
    let res = run_search_serial(&ds.store, params).unwrap();
    let truth: std::collections::HashSet<(u32, u32)> = ds
        .true_pairs()
        .into_iter()
        .map(|(a, b)| (a as u32, b as u32))
        .collect();
    let found: std::collections::HashSet<(u32, u32)> =
        res.graph.edges().iter().map(|e| e.key()).collect();
    let hits = found.intersection(&truth).count();
    let recall = hits as f64 / truth.len().max(1) as f64;
    let precision = if found.is_empty() {
        1.0
    } else {
        hits as f64 / found.len() as f64
    };
    (recall, precision, found.len())
}

#[test]
fn low_divergence_families_are_recovered_with_high_recall() {
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 120,
        divergence: 0.05,
        indel_prob: 0.01,
        mean_len: 100.0,
        singleton_fraction: 0.3,
        seed: 31,
        ..SyntheticConfig::small(120, 31)
    });
    let params = SearchParams {
        k: 5,
        common_kmer_threshold: 2,
        ani_threshold: 0.5,
        coverage_threshold: 0.6,
        ..SearchParams::default()
    };
    let (recall, precision, _) = recall_and_precision(&ds, &params);
    assert!(recall > 0.8, "recall {recall}");
    assert!(precision > 0.9, "precision {precision}");
}

#[test]
fn singletons_produce_no_false_edges_at_strict_thresholds() {
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 100,
        singleton_fraction: 1.0,
        mean_len: 120.0,
        seed: 77,
        ..SyntheticConfig::small(100, 77)
    });
    let params = SearchParams {
        k: 5,
        common_kmer_threshold: 2,
        ..SearchParams::default()
    };
    let res = run_search_serial(&ds.store, &params).unwrap();
    assert_eq!(
        res.graph.n_edges(),
        0,
        "unrelated random proteins matched at ANI 0.3 / cov 0.7"
    );
}

#[test]
fn reduced_alphabet_discovers_more_candidates_on_diverged_families() {
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 80,
        divergence: 0.25, // heavily diverged: exact 6-mers are rare
        indel_prob: 0.0,
        mean_len: 150.0,
        singleton_fraction: 0.2,
        seed: 13,
        ..SyntheticConfig::small(80, 13)
    });
    let full = SearchParams {
        k: 6,
        common_kmer_threshold: 1,
        ani_threshold: 0.2,
        coverage_threshold: 0.3,
        ..SearchParams::default()
    };
    let reduced = SearchParams {
        alphabet: ReducedAlphabet::Murphy10,
        ..full.clone()
    };
    let full_run = run_search_serial(&ds.store, &full).unwrap();
    let reduced_run = run_search_serial(&ds.store, &reduced).unwrap();
    assert!(
        reduced_run.stats.candidates > full_run.stats.candidates,
        "Murphy-10 candidates {} vs Full20 {}",
        reduced_run.stats.candidates,
        full_run.stats.candidates
    );
    assert!(
        reduced_run.stats.aligned_pairs >= full_run.stats.aligned_pairs,
        "reduced alphabet should not lose candidate pairs"
    );
}

#[test]
fn substitute_kmers_improve_recall_on_diverged_families() {
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 60,
        divergence: 0.20,
        indel_prob: 0.0,
        mean_len: 120.0,
        singleton_fraction: 0.2,
        seed: 8,
        ..SyntheticConfig::small(60, 8)
    });
    let base = SearchParams {
        k: 6,
        common_kmer_threshold: 2,
        ani_threshold: 0.2,
        coverage_threshold: 0.3,
        ..SearchParams::default()
    };
    let boosted = SearchParams {
        substitute_kmers: 8,
        ..base.clone()
    };
    let (r_base, _, _) = recall_and_precision(&ds, &base);
    let (r_boost, _, _) = recall_and_precision(&ds, &boosted);
    assert!(
        r_boost >= r_base,
        "substitute k-mers reduced recall: {r_boost} < {r_base}"
    );
    // And they must add discovery work (more candidates).
    let base_run = run_search_serial(&ds.store, &base).unwrap();
    let boost_run = run_search_serial(&ds.store, &boosted).unwrap();
    assert!(boost_run.stats.candidates > base_run.stats.candidates);
}

#[test]
fn common_kmer_threshold_trades_alignments_for_sensitivity() {
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 100,
        divergence: 0.12,
        seed: 50,
        mean_len: 100.0,
        ..SyntheticConfig::small(100, 50)
    });
    let mut aligned = Vec::new();
    for t in [1u32, 2, 4, 8] {
        let params = SearchParams {
            k: 5,
            common_kmer_threshold: t,
            ani_threshold: 0.3,
            coverage_threshold: 0.3,
            ..SearchParams::default()
        };
        let res = run_search_serial(&ds.store, &params).unwrap();
        aligned.push(res.stats.aligned_pairs);
    }
    assert!(
        aligned.windows(2).all(|w| w[0] >= w[1]),
        "aligned pairs not monotone in threshold: {aligned:?}"
    );
    assert!(aligned[0] > aligned[3], "threshold had no effect");
}

#[test]
fn coverage_threshold_excludes_fragment_matches() {
    use pastis::align::matrices::encode;
    let mut store = pastis::seqio::SeqStore::new();
    // A long sequence and a short perfect fragment of it.
    let long = "MKVLAWYHEEGASTPNQRCDMKVLAWYHEEGASTPNQRCD";
    let frag = &long[..12];
    store.push("long".into(), encode(long).unwrap());
    store.push("frag".into(), encode(frag).unwrap());
    let strict = SearchParams {
        k: 4,
        common_kmer_threshold: 1,
        ani_threshold: 0.3,
        coverage_threshold: 0.7,
        ..SearchParams::default()
    };
    let res = run_search_serial(&store, &strict).unwrap();
    assert_eq!(res.graph.n_edges(), 0, "fragment passed 0.7 coverage");
    let loose = SearchParams {
        coverage_threshold: 0.2,
        ..strict
    };
    let res = run_search_serial(&store, &loose).unwrap();
    assert_eq!(res.graph.n_edges(), 1, "fragment missed at 0.2 coverage");
}
