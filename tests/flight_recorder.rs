//! Flight-recorder end-to-end: a run killed by a seeded [`FaultPlan`]
//! crash must leave a crash dump behind, and a healthy run with
//! `--flight-dump` must leave a "completed" dump.
//!
//! Drives the real `pastis` binary (not in-process calls) because the
//! crash dump is written by a process-global panic hook: the test's
//! contract is "when a rank dies, the dump file exists on disk with the
//! last events of every rank", which only the binary exercises.

use std::path::{Path, PathBuf};
use std::process::Command;

fn pastis() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pastis"))
}

/// Per-test scratch directory (unique per test name, cleaned on entry).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pastis_flight_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_input(dir: &Path) -> PathBuf {
    let fasta = dir.join("in.fasta");
    let out = pastis()
        .args(["generate"])
        .arg(&fasta)
        .args(["--n", "150", "--seed", "9"])
        .output()
        .expect("spawn pastis generate");
    assert!(out.status.success(), "generate failed: {out:?}");
    fasta
}

fn dump_json(path: &Path) -> pastis::trace::json::JsonValue {
    let text = std::fs::read_to_string(path).expect("dump file must exist");
    pastis::trace::json::parse(&text).expect("dump must be valid JSON")
}

fn str_field<'a>(v: &'a pastis::trace::json::JsonValue, k: &str) -> &'a str {
    v.get(k)
        .and_then(pastis::trace::json::JsonValue::as_str)
        .unwrap_or_else(|| panic!("dump missing string field {k}"))
}

#[test]
fn injected_crash_writes_a_flight_dump() {
    let dir = scratch("crash");
    let fasta = generate_input(&dir);
    let dump = dir.join("crash_dump.json");

    // Rank 2 dies at its 5th comm op, mid-pipeline, on a 4-rank run.
    let out = pastis()
        .arg("search")
        .arg(&fasta)
        .arg(dir.join("out.tsv"))
        .args(["--k", "5", "--ranks", "4", "--blocks", "2x2"])
        .args(["--fault-plan", "crash=2@5"])
        .arg("--flight-dump")
        .arg(&dump)
        .output()
        .expect("spawn pastis search");
    assert!(
        !out.status.success(),
        "a crashed rank must fail the run: {out:?}"
    );

    let v = dump_json(&dump);
    assert_eq!(
        v.get("schema")
            .and_then(pastis::trace::json::JsonValue::as_u64),
        Some(pastis::trace::FLIGHT_DUMP_SCHEMA_VERSION as u64)
    );
    let reason = str_field(&v, "reason");
    assert!(
        reason.starts_with("panic:") && reason.contains("injected crash: rank 2"),
        "unexpected dump reason: {reason}"
    );
    // The dump samples every rank's recent telemetry, not just the dead one.
    let ranks = v
        .get("ranks")
        .and_then(pastis::trace::json::JsonValue::as_array)
        .expect("dump must carry per-rank sections");
    assert_eq!(ranks.len(), 4);
    for r in ranks {
        assert!(r.get("recent_spans").is_some());
        assert!(r.get("counters").is_some());
    }
    // The bounded ring holds the panic note as its trailing entry.
    let ring = v
        .get("ring")
        .and_then(pastis::trace::json::JsonValue::as_array)
        .expect("dump must carry the flight ring");
    assert!(
        ring.iter().any(|e| e
            .get("kind")
            .and_then(pastis::trace::json::JsonValue::as_str)
            == Some("panic")),
        "flight ring must record the panic"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthy_run_writes_a_completed_dump_and_identical_output() {
    let dir = scratch("healthy");
    let fasta = generate_input(&dir);
    let dump = dir.join("final_dump.json");

    let plain = dir.join("plain.tsv");
    let out = pastis()
        .arg("search")
        .arg(&fasta)
        .arg(&plain)
        .args(["--k", "5", "--ranks", "4", "--blocks", "2x2"])
        .output()
        .expect("spawn pastis search");
    assert!(out.status.success(), "baseline search failed: {out:?}");

    let flight = dir.join("flight.tsv");
    let out = pastis()
        .arg("search")
        .arg(&fasta)
        .arg(&flight)
        .args(["--k", "5", "--ranks", "4", "--blocks", "2x2", "--progress"])
        .arg("--flight-dump")
        .arg(&dump)
        .output()
        .expect("spawn pastis search");
    assert!(
        out.status.success(),
        "flight-recorded search failed: {out:?}"
    );

    let v = dump_json(&dump);
    assert_eq!(str_field(&v, "reason"), "completed");
    // The flight recorder is observation-only: the similarity graph is
    // byte-identical with and without it.
    assert_eq!(
        std::fs::read(&plain).unwrap(),
        std::fs::read(&flight).unwrap(),
        "flight recorder must not perturb results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
