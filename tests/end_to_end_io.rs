//! End-to-end file pipeline: FASTA in → partitioned parallel read →
//! distributed search → partitioned triplet write → concatenated
//! similarity-graph file — the full I/O protocol of the paper's runs
//! ("The input to PASTIS is a file in FASTA format … the output is the
//! similarity graph in triplets").

use std::path::PathBuf;

use pastis::core::pipeline::run_search_serial;
use pastis::core::SearchParams;
use pastis::seqio::fasta::{parse_fasta, write_fasta, SeqStore};
use pastis::seqio::parallel_io::{concat_partitions, read_fasta_partition, write_partition};
use pastis::seqio::{SyntheticConfig, SyntheticDataset};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pastis-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fasta_roundtrip_preserves_search_results() {
    let dir = temp_dir("roundtrip");
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 50,
        mean_len: 80.0,
        seed: 4,
        ..SyntheticConfig::small(50, 4)
    });
    let params = SearchParams::test_defaults();
    let direct = run_search_serial(&ds.store, &params).unwrap();

    // Write to FASTA, read back, search again.
    let path = dir.join("input.fa");
    let mut buf = Vec::new();
    write_fasta(&mut buf, &ds.store.to_records(), 60).unwrap();
    std::fs::write(&path, &buf).unwrap();
    let records = parse_fasta(std::io::Cursor::new(std::fs::read(&path).unwrap())).unwrap();
    let store2 = SeqStore::from_records(&records).unwrap();
    assert_eq!(store2, ds.store);
    let via_file = run_search_serial(&store2, &params).unwrap();
    assert_eq!(via_file.graph.edges(), direct.graph.edges());
}

#[test]
fn partitioned_read_search_write_concat() {
    let dir = temp_dir("pipeline");
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 40,
        mean_len: 70.0,
        seed: 6,
        ..SyntheticConfig::small(40, 6)
    });
    let input = dir.join("in.fa");
    let mut buf = Vec::new();
    write_fasta(&mut buf, &ds.store.to_records(), 0).unwrap();
    std::fs::write(&input, &buf).unwrap();

    // "Parallel" read: 4 ranks each read their byte range; the union must
    // be the full store (order of records is preserved by offset order).
    let nranks = 4;
    let mut all_records = Vec::new();
    for rank in 0..nranks {
        all_records.extend(read_fasta_partition(&input, rank, nranks).unwrap());
    }
    let store = SeqStore::from_records(&all_records).unwrap();
    assert_eq!(store.len(), ds.store.len());

    // Search, then write triplets as per-rank partitions and concatenate.
    let params = SearchParams::test_defaults();
    let res = run_search_serial(&store, &params).unwrap();
    let lines = res.graph.to_tsv_lines();
    let out = dir.join("similarity.tsv");
    // Split output lines across ranks like the distributed writer would.
    let per = lines.len().div_ceil(nranks).max(1);
    for rank in 0..nranks {
        let chunk: Vec<String> = lines.iter().skip(rank * per).take(per).cloned().collect();
        write_partition(&out, rank, &chunk).unwrap();
    }
    let total = concat_partitions(&out, nranks).unwrap();
    let content = std::fs::read_to_string(&out).unwrap();
    assert_eq!(content.len() as u64, total);
    assert_eq!(content.lines().count(), lines.len());
    // Every line parses as a triplet-plus-metrics record.
    for line in content.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 6, "bad triplet line: {line}");
        let i: u32 = fields[0].parse().unwrap();
        let j: u32 = fields[1].parse().unwrap();
        assert!(i < j);
        let ani: f64 = fields[2].parse().unwrap();
        assert!((0.0..=1.0).contains(&ani));
    }
}

#[test]
fn corrupt_fasta_is_rejected_not_miscounted() {
    // Failure injection: truncated/corrupt inputs must error loudly.
    let bad_header = "MKVL\n>ok\nMKVL\n";
    assert!(parse_fasta(std::io::Cursor::new(bad_header)).is_err());

    let empty_rec = ">a\n>b\nMKVL\n";
    assert!(parse_fasta(std::io::Cursor::new(empty_rec)).is_err());

    let bad_residue = parse_fasta(std::io::Cursor::new(">a\nMK9L\n")).unwrap();
    assert!(SeqStore::from_records(&bad_residue).is_err());
}
