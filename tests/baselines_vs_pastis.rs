//! Architectural comparison tests (Sections IV and VIII-C).
//!
//! PASTIS vs the MMseqs2-style and DIAMOND-style baselines on the same
//! planted dataset: all three find the strong homolog pairs, but the
//! architectures differ exactly where the paper says they do — replication
//! memory, chunking-dependent results, and spill traffic.

use pastis::baselines::diamond_like::{run_diamond_like, DiamondLikeConfig};
use pastis::baselines::mmseqs_like::{run_mmseqs_like, MmseqsLikeConfig};
use pastis::core::pipeline::run_search_serial;
use pastis::core::SearchParams;
use pastis::seqio::{SyntheticConfig, SyntheticDataset};

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 100,
        divergence: 0.06,
        indel_prob: 0.01,
        mean_len: 90.0,
        singleton_fraction: 0.3,
        seed: 99,
        ..SyntheticConfig::small(100, 99)
    })
}

const K: usize = 5;
const MIN_SHARED: u32 = 2;
const ANI: f64 = 0.4;
const COV: f64 = 0.5;

fn pastis_edges(ds: &SyntheticDataset) -> std::collections::HashSet<(u32, u32)> {
    let params = SearchParams {
        k: K,
        common_kmer_threshold: MIN_SHARED,
        ani_threshold: ANI,
        coverage_threshold: COV,
        ..SearchParams::default()
    };
    run_search_serial(&ds.store, &params)
        .unwrap()
        .graph
        .edges()
        .iter()
        .map(|e| e.key())
        .collect()
}

#[test]
fn all_three_architectures_agree_on_edges_when_unconstrained() {
    // With the same seeding parameters and no memory caps, the three
    // architectures are different *distributions* of the same search: the
    // found pair sets must coincide.
    let ds = dataset();
    let want = pastis_edges(&ds);
    assert!(
        want.len() > 10,
        "dataset too easy/hard: {} edges",
        want.len()
    );

    let mm = run_mmseqs_like(
        &ds.store,
        &MmseqsLikeConfig {
            k: K,
            min_shared_kmers: MIN_SHARED,
            ani_threshold: ANI,
            coverage_threshold: COV,
            ..MmseqsLikeConfig::default()
        },
        4,
    );
    let mm_edges: std::collections::HashSet<(u32, u32)> =
        mm.graph.edges().iter().map(|e| e.key()).collect();
    assert_eq!(mm_edges, want, "MMseqs2-style differs from PASTIS");

    let dm = run_diamond_like(
        &ds.store,
        &DiamondLikeConfig {
            k: K,
            min_shared_kmers: MIN_SHARED,
            ani_threshold: ANI,
            coverage_threshold: COV,
            query_chunks: 3,
            ref_chunks: 3,
            max_candidates_per_query: usize::MAX,
            ..DiamondLikeConfig::default()
        },
    );
    let dm_edges: std::collections::HashSet<(u32, u32)> =
        dm.graph.edges().iter().map(|e| e.key()).collect();
    assert_eq!(dm_edges, want, "DIAMOND-style differs from PASTIS");
}

#[test]
fn pastis_is_blocking_invariant_where_capped_diamond_is_not() {
    // The architectural contrast the paper quotes from DIAMOND's manual.
    let ds = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 120,
        mean_family_size: 20.0,
        singleton_fraction: 0.0,
        divergence: 0.08,
        mean_len: 60.0,
        seed: 42,
        ..SyntheticConfig::small(120, 42)
    });
    // PASTIS: sweep blocking, identical results.
    let mut pastis_results = Vec::new();
    for (br, bc) in [(1, 1), (2, 2), (4, 4)] {
        let params = SearchParams {
            k: 4,
            common_kmer_threshold: 1,
            ani_threshold: 0.3,
            coverage_threshold: 0.3,
            ..SearchParams::default()
        }
        .with_blocking(br, bc);
        let res = run_search_serial(&ds.store, &params).unwrap();
        pastis_results.push(
            res.graph
                .edges()
                .iter()
                .map(|e| e.key())
                .collect::<Vec<_>>(),
        );
    }
    assert!(pastis_results.windows(2).all(|w| w[0] == w[1]));

    // Capped DIAMOND-style: sweep chunking, results change.
    let diamond = |rc: usize| {
        run_diamond_like(
            &ds.store,
            &DiamondLikeConfig {
                k: 4,
                min_shared_kmers: 1,
                ani_threshold: 0.3,
                coverage_threshold: 0.3,
                query_chunks: 2,
                ref_chunks: rc,
                max_candidates_per_query: 3,
                ..DiamondLikeConfig::default()
            },
        )
    };
    let d1 = diamond(1);
    let d4 = diamond(4);
    assert!(d1.capped_out > 0);
    assert_ne!(
        d1.graph.n_edges(),
        d4.graph.n_edges(),
        "expected block-size-dependent results from the capped baseline"
    );
}

#[test]
fn pastis_per_rank_memory_shrinks_while_mmseqs_replication_does_not() {
    use pastis::comm::{run_threaded, Communicator, ProcessGrid, ReduceOp};
    use pastis::core::run_search;
    let ds = dataset();
    let params = SearchParams {
        k: K,
        common_kmer_threshold: MIN_SHARED,
        ani_threshold: ANI,
        coverage_threshold: COV,
        ..SearchParams::default()
    };
    // PASTIS: max candidates held by any rank at once (blocked) vs p=1.
    let peak_at = |p: usize, br: usize| {
        let store = ds.store.clone();
        let prm = params.clone().with_blocking(br, br);
        let out = run_threaded(p, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let res = run_search(&grid, &store, &prm).unwrap();
            let peak = res
                .per_block
                .iter()
                .map(|b| b.candidates)
                .max()
                .unwrap_or(0);
            grid.world().all_reduce(&[peak], ReduceOp::Max)[0]
        });
        out[0]
    };
    let serial_peak = peak_at(1, 1);
    let dist_peak = peak_at(4, 4);
    assert!(
        (dist_peak as f64) < serial_peak as f64 / 3.0,
        "blocked+distributed peak {dist_peak} vs serial {serial_peak}"
    );
    // MMseqs2-style query-split: the reference index is replicated, so
    // per-rank memory does not shrink at all with more ranks.
    use pastis::baselines::mmseqs_like::SplitMode;
    let qcfg = MmseqsLikeConfig {
        mode: SplitMode::QuerySplit,
        ..MmseqsLikeConfig::default()
    };
    let mm1 = run_mmseqs_like(&ds.store, &qcfg, 1);
    let mm8 = run_mmseqs_like(&ds.store, &qcfg, 8);
    assert_eq!(mm8.index_bytes_per_rank, mm1.index_bytes_per_rank);
    // Target-split still floors at the replicated residue set.
    let mm_t8 = run_mmseqs_like(&ds.store, &MmseqsLikeConfig::default(), 8);
    assert!(mm_t8.index_bytes_per_rank >= ds.store.total_residues() as u64);
}

#[test]
fn diamond_spill_traffic_vs_pastis_zero_intermediate_io() {
    // PASTIS "only uses IO at the beginning and at the end"; the
    // work-package architecture spills every intermediate candidate.
    let ds = dataset();
    let dm = run_diamond_like(
        &ds.store,
        &DiamondLikeConfig {
            k: K,
            min_shared_kmers: MIN_SHARED,
            query_chunks: 4,
            ref_chunks: 4,
            max_candidates_per_query: usize::MAX,
            ..DiamondLikeConfig::default()
        },
    );
    assert!(
        dm.spilled_bytes > 0,
        "work packages must spill intermediates"
    );
    // Spill is proportional to candidates, i.e. grows with the quadratic
    // candidate set — the filesystem pressure of Section IV.
    assert!(dm.spilled_bytes >= dm.seed_candidates.min(1) * 12);
}
