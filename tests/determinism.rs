//! The determinism claim (Section IV of the paper): *"the PASTIS algorithm
//! gives identical results irrespective of the amount of parallelism
//! utilized and the blocking size chosen"* — the key architectural contrast
//! with DIAMOND ("results will not be completely identical for different
//! values of the block size") and MMseqs2 (sensitivity changes with
//! parallelism).
//!
//! These tests sweep process counts, blocking factors, load-balancing
//! schemes and pre-blocking over a real synthetic dataset and require the
//! similarity graph to be bit-identical.

use pastis::comm::{run_threaded, Communicator, ProcessGrid};
use pastis::core::pipeline::run_search_serial;
use pastis::core::{run_search, LoadBalance, SearchParams};
use pastis::seqio::{SyntheticConfig, SyntheticDataset};
use pastis::sparse::SpGemmKind;

fn dataset() -> pastis::seqio::SeqStore {
    SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 60,
        mean_len: 70.0,
        singleton_fraction: 0.35,
        divergence: 0.10,
        seed: 2024,
        ..SyntheticConfig::small(60, 2024)
    })
    .store
}

fn params() -> SearchParams {
    SearchParams::test_defaults()
}

type EdgeFingerprint = Vec<(u32, u32, i32, u32)>;

fn fingerprint(graph: &pastis::core::SimilarityGraph) -> EdgeFingerprint {
    graph
        .edges()
        .iter()
        .map(|e| (e.i, e.j, e.score, e.common_kmers))
        .collect()
}

fn reference_fingerprint() -> EdgeFingerprint {
    let res = run_search_serial(&dataset(), &params()).unwrap();
    assert!(
        res.graph.n_edges() > 5,
        "reference run found almost nothing"
    );
    fingerprint(&res.graph)
}

#[test]
fn identical_results_across_process_counts() {
    let want = reference_fingerprint();
    for p in [1usize, 4, 9, 16] {
        let store = dataset();
        let prm = params();
        let out = run_threaded(p, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let res = run_search(&grid, &store, &prm).unwrap();
            fingerprint(&res.gather_graph(grid.world()))
        });
        for fp in out {
            assert_eq!(fp, want, "p={p} changed results");
        }
    }
}

#[test]
fn identical_results_across_blocking_factors() {
    let want = reference_fingerprint();
    for (br, bc) in [(1, 1), (2, 2), (3, 4), (5, 5), (8, 8), (1, 7)] {
        let res = run_search_serial(&dataset(), &params().with_blocking(br, bc)).unwrap();
        assert_eq!(fingerprint(&res.graph), want, "blocking {br}x{bc}");
    }
}

#[test]
fn identical_results_across_schemes_and_preblocking() {
    let want = reference_fingerprint();
    for lb in [LoadBalance::Triangular, LoadBalance::IndexBased] {
        for pb in [false, true] {
            let prm = params()
                .with_blocking(4, 4)
                .with_load_balance(lb)
                .with_pre_blocking(pb);
            let res = run_search_serial(&dataset(), &prm).unwrap();
            assert_eq!(fingerprint(&res.graph), want, "{lb:?} pre_blocking={pb}");
        }
    }
}

#[test]
fn identical_results_across_align_thread_counts() {
    // The intra-rank alignment pool joins the same contract as the rank
    // count and the blocking size: the graph is bit-identical whether each
    // rank aligns serially or on a worker pool.
    let want = reference_fingerprint();
    for threads in [1usize, 4] {
        let res = run_search_serial(&dataset(), &params().with_align_threads(threads)).unwrap();
        assert_eq!(fingerprint(&res.graph), want, "align_threads={threads}");
    }
}

#[test]
fn identical_results_across_spgemm_kernels_and_thread_counts() {
    // The local SpGEMM kernels (hash/heap/parallel) share one
    // combine-order contract, so the kernel-selection policy and the
    // intra-rank SpGEMM pool join the determinism claim too.
    let want = reference_fingerprint();
    for kind in [
        SpGemmKind::Auto,
        SpGemmKind::Hash,
        SpGemmKind::Heap,
        SpGemmKind::Parallel,
    ] {
        for threads in [1usize, 4] {
            let prm = params()
                .with_blocking(2, 2)
                .with_spgemm(kind)
                .with_spgemm_threads(threads);
            let res = run_search_serial(&dataset(), &prm).unwrap();
            assert_eq!(
                fingerprint(&res.graph),
                want,
                "spgemm={kind} threads={threads}"
            );
        }
    }
}

#[test]
fn identical_results_with_everything_varied_at_once() {
    let want = reference_fingerprint();
    let out = run_threaded(9, move |c| {
        let grid = ProcessGrid::square(c.split(0, c.rank()));
        let prm = params()
            .with_blocking(3, 5)
            .with_load_balance(LoadBalance::Triangular)
            .with_pre_blocking(true)
            .with_align_threads(4)
            .with_spgemm(SpGemmKind::Parallel)
            .with_spgemm_threads(3);
        let res = run_search(&grid, &dataset(), &prm).unwrap();
        fingerprint(&res.gather_graph(grid.world()))
    });
    for fp in out {
        assert_eq!(fp, want);
    }
}

#[test]
fn identical_results_with_overlap_and_unified_pool() {
    // The overlap tentpole joins the determinism claim: double-buffered
    // SUMMA broadcasts plus the unified work-stealing pool leave the graph
    // bit-identical for any pool size, either SpGEMM kernel, and with or
    // without pre-blocking — on a real 4-rank grid.
    let want = reference_fingerprint();
    for threads in [1usize, 2, 4] {
        for kind in [SpGemmKind::Hash, SpGemmKind::Parallel] {
            for pb in [false, true] {
                let out = run_threaded(4, move |c| {
                    let grid = ProcessGrid::square(c.split(0, c.rank()));
                    let prm = params()
                        .with_blocking(2, 2)
                        .with_pre_blocking(pb)
                        .with_spgemm(kind)
                        .with_threads(threads)
                        .with_overlap(true);
                    let res = run_search(&grid, &dataset(), &prm).unwrap();
                    fingerprint(&res.gather_graph(grid.world()))
                });
                for fp in out {
                    assert_eq!(
                        fp, want,
                        "threads={threads} spgemm={kind} pre_blocking={pb} overlap=on"
                    );
                }
            }
        }
    }
}

#[test]
fn overlap_off_and_engine_caps_preserve_results() {
    // The remaining knobs of the unified pool: overlap explicitly off on
    // the pooled path, and per-engine concurrency caps (including a cap of
    // zero workers, where the submitting thread still completes the job).
    let want = reference_fingerprint();
    let cases: [(bool, Option<usize>, Option<usize>); 3] = [
        (false, None, None),
        (true, Some(1), Some(2)),
        (true, Some(0), None),
    ];
    for (overlap, align_cap, spgemm_cap) in cases {
        let out = run_threaded(4, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let mut prm = params()
                .with_blocking(2, 2)
                .with_pre_blocking(true)
                .with_threads(4)
                .with_overlap(overlap);
            prm.align_cap = align_cap;
            prm.spgemm_cap = spgemm_cap;
            let res = run_search(&grid, &dataset(), &prm).unwrap();
            fingerprint(&res.gather_graph(grid.world()))
        });
        for fp in out {
            assert_eq!(
                fp, want,
                "overlap={overlap} align_cap={align_cap:?} spgemm_cap={spgemm_cap:?}"
            );
        }
    }
}

#[test]
fn aligned_pair_totals_are_parallelism_invariant() {
    // Beyond the output edges: the amount of alignment *work* is also
    // invariant (each unordered pair aligned exactly once, anywhere).
    let serial = run_search_serial(&dataset(), &params()).unwrap();
    for p in [4usize, 9] {
        let out = run_threaded(p, move |c| {
            let grid = ProcessGrid::square(c.split(0, c.rank()));
            let res = run_search(&grid, &dataset(), &params()).unwrap();
            res.stats.all_reduce(grid.world())
        });
        for stats in out {
            assert_eq!(stats.aligned_pairs, serial.stats.aligned_pairs, "p={p}");
            assert_eq!(stats.cells, serial.stats.cells, "p={p}");
            assert_eq!(stats.similar_pairs, serial.stats.similar_pairs, "p={p}");
        }
    }
}
