//! Scaling study: replay *your* dataset at Summit node counts.
//!
//! The performance-model plane is a user-facing feature, not just a
//! benchmark harness: given any sequence set it counts the exact per-rank
//! work of the real block schedule and models the time at an arbitrary
//! node count — answering "how would this search behave on 49 vs 400
//! nodes, and which load-balancing scheme should I pick?" before buying
//! the machine time.
//!
//! Run with: `cargo run --release --example scaling_study`

use pastis::core::{simulate, LoadBalance};
use pastis::seqio::{SyntheticConfig, SyntheticDataset};
use pastis_bench::{bench_params, calibrated_summit, scale_config};

fn main() {
    // Stand-in for "your" dataset.
    let dataset = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 3000,
        mean_len: 200.0,
        seed: 99,
        ..SyntheticConfig::default()
    });
    println!(
        "dataset: {} sequences, {} residues",
        dataset.store.len(),
        dataset.store.total_residues()
    );

    let reference = bench_params().with_blocking(8, 8);
    let machine = calibrated_summit(&dataset.store, &reference, 16, 900.0, 2.0);
    println!("machine: {} (calibrated miniature Summit)\n", machine.name);

    println!(
        "{:>6} | {:>24} | {:>24} | recommendation",
        "nodes", "index-based", "triangularity-based"
    );
    println!(
        "{:>6} | {:>12} {:>11} | {:>12} {:>11} |",
        "", "total", "mem/rank", "total", "mem/rank"
    );
    println!("{}", "-".repeat(92));
    for nodes in [16usize, 36, 64, 144, 256] {
        let run = |scheme| {
            simulate(
                &dataset.store,
                &reference.clone().with_load_balance(scheme),
                &scale_config(&machine, nodes),
            )
        };
        let idx = run(LoadBalance::IndexBased);
        let tri = run(LoadBalance::Triangular);
        let rec = if tri.total_with_pb < idx.total_with_pb {
            "triangular (sparse savings win)"
        } else {
            "index (balance wins)"
        };
        println!(
            "{:>6} | {:>11.1}s {:>8.2}MB | {:>11.1}s {:>8.2}MB | {}",
            nodes,
            idx.total_with_pb,
            idx.memory.total_bytes() / 1e6,
            tri.total_with_pb,
            tri.memory.total_bytes() / 1e6,
            rec
        );
    }

    // Blocking sweep at a fixed node count: the time/memory trade.
    println!("\nblocking trade-off at 64 nodes (index-based):");
    println!(
        "{:>8} | {:>11} | {:>12} | {:>14}",
        "blocks", "total", "mem/rank", "peak candidates"
    );
    println!("{}", "-".repeat(56));
    for (br, bc) in [(1, 1), (2, 2), (4, 4), (8, 8), (16, 16)] {
        let r = simulate(
            &dataset.store,
            &bench_params().with_blocking(br, bc),
            &scale_config(&machine, 64),
        );
        println!(
            "{:>4}x{:<3} | {:>10.1}s | {:>10.2}MB | {:>14}",
            br,
            bc,
            r.total_with_pb,
            r.memory.total_bytes() / 1e6,
            r.candidates / (br * bc) as u64
        );
    }
    println!(
        "\nmore blocks: less peak memory, more broadcast/handling overhead — pick the\n\
         smallest block count whose footprint fits the node (Section VI-A's trade)."
    );
}
