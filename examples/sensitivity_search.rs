//! The sensitivity options of Section V: substitute k-mers and reduced
//! alphabets, measured as recall of planted homologs at increasing
//! divergence.
//!
//! "PASTIS has the option to introduce substitute k-mers that are
//! m-nearest neighbors of a k-mer or plugging in a reduced alphabet, both
//! of which can enhance the sensitivity."
//!
//! Run with: `cargo run --release --example sensitivity_search`

use pastis::core::pipeline::run_search_serial;
use pastis::core::SearchParams;
use pastis::seqio::{ReducedAlphabet, SyntheticConfig, SyntheticDataset};

fn recall(ds: &SyntheticDataset, params: &SearchParams) -> (f64, u64) {
    let res = run_search_serial(&ds.store, params).expect("search failed");
    let truth: std::collections::HashSet<(u32, u32)> = ds
        .true_pairs()
        .into_iter()
        .map(|(a, b)| (a as u32, b as u32))
        .collect();
    let hits = res
        .graph
        .edges()
        .iter()
        .filter(|e| truth.contains(&e.key()))
        .count();
    (
        hits as f64 / truth.len().max(1) as f64,
        res.stats.aligned_pairs,
    )
}

fn main() {
    println!("sensitivity vs divergence (recall of planted pairs / alignments performed)\n");
    println!(
        "{:>10} | {:>18} | {:>18} | {:>18}",
        "divergence", "exact 6-mers", "+8 substitute kmers", "Murphy-10 alphabet"
    );
    println!("{}", "-".repeat(75));

    for divergence in [0.05, 0.10, 0.15, 0.20, 0.25] {
        let ds = SyntheticDataset::generate(&SyntheticConfig {
            n_sequences: 200,
            mean_len: 150.0,
            singleton_fraction: 0.25,
            divergence,
            indel_prob: 0.01,
            seed: 500 + (divergence * 100.0) as u64,
            ..SyntheticConfig::default()
        });
        let base = SearchParams {
            k: 6,
            common_kmer_threshold: 2,
            ani_threshold: 0.25,
            coverage_threshold: 0.5,
            ..SearchParams::default()
        };
        let substitutes = SearchParams {
            substitute_kmers: 8,
            ..base.clone()
        };
        let murphy = SearchParams {
            alphabet: ReducedAlphabet::Murphy10,
            ..base.clone()
        };
        let (r0, a0) = recall(&ds, &base);
        let (r1, a1) = recall(&ds, &substitutes);
        let (r2, a2) = recall(&ds, &murphy);
        println!(
            "{:>10.2} | {:>9.1}% {:>7} | {:>9.1}% {:>7} | {:>9.1}% {:>7}",
            divergence,
            100.0 * r0,
            a0,
            100.0 * r1,
            a1,
            100.0 * r2,
            a2
        );
    }

    println!(
        "\nBoth options trade extra alignments (larger candidate sets) for recall\n\
         on diverged homologs — the paper's \"reach out different regions of\n\
         the overall search space\"."
    );
}
