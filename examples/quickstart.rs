//! Quickstart: many-against-many protein similarity search in ~30 lines.
//!
//! Generates a small synthetic protein set (a Metaclust-style mix of
//! homolog families and singletons), runs the full PASTIS pipeline with
//! the paper's default parameters (scaled to the small input), and prints
//! the similarity graph and run statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use pastis::core::pipeline::run_search_serial;
use pastis::core::SearchParams;
use pastis::seqio::{SyntheticConfig, SyntheticDataset};

fn main() {
    // 1. A dataset: 300 proteins, ~70% in homolog families.
    let dataset = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 300,
        mean_len: 150.0,
        singleton_fraction: 0.3,
        divergence: 0.08,
        seed: 7,
        ..SyntheticConfig::default()
    });
    println!(
        "dataset: {} sequences, {} residues, {} planted families",
        dataset.store.len(),
        dataset.store.total_residues(),
        dataset.n_families()
    );

    // 2. Search parameters: the paper's production settings with k
    //    shortened for the small input.
    let params = SearchParams {
        k: 5,
        ..SearchParams::default()
    }
    .with_blocking(4, 4)
    .with_pre_blocking(true);

    // 3. Run the search (serial here; see examples/distributed_search.rs).
    let result = run_search_serial(&dataset.store, &params).expect("search failed");

    // 4. Inspect the similarity graph.
    println!("\ndiscovered candidates : {:>10}", result.stats.candidates);
    println!(
        "performed alignments  : {:>10} ({:.1}% of candidates)",
        result.stats.aligned_pairs,
        100.0 * result.stats.aligned_fraction()
    );
    println!(
        "similar pairs (edges) : {:>10} ({:.1}% of aligned)",
        result.stats.similar_pairs,
        100.0 * result.stats.similar_fraction()
    );
    println!(
        "alignment rate        : {:>10.0} alignments/s, {:.2} MCUPs",
        result.stats.alignments_per_sec(),
        result.stats.cups() / 1e6
    );

    println!("\nfirst 10 edges (i, j, ani, coverage, score, shared k-mers):");
    for line in result.graph.to_tsv_lines().iter().take(10) {
        println!("  {line}");
    }

    // 5. Check against the planted ground truth.
    let truth: std::collections::HashSet<(u32, u32)> = dataset
        .true_pairs()
        .into_iter()
        .map(|(a, b)| (a as u32, b as u32))
        .collect();
    let hit = result
        .graph
        .edges()
        .iter()
        .filter(|e| truth.contains(&e.key()))
        .count();
    println!(
        "\nrecall of planted homolog pairs: {hit}/{} ({:.1}%)",
        truth.len(),
        100.0 * hit as f64 / truth.len().max(1) as f64
    );
}
