//! Distributed SPMD execution: the same search on 1, 4, and 9 ranks
//! (real threads, real collectives), demonstrating
//!
//! * identical similarity graphs at every process count (the paper's
//!   determinism claim vs DIAMOND/MMseqs2), and
//! * per-rank work/imbalance statistics (the min/avg/max reporting of
//!   Figure 7).
//!
//! Run with: `cargo run --release --example distributed_search`

use pastis::comm::{run_threaded, Communicator, ImbalanceStats, ProcessGrid};
use pastis::core::pipeline::run_search_serial;
use pastis::core::{run_search, LoadBalance, SearchParams};
use pastis::seqio::{SyntheticConfig, SyntheticDataset};

fn main() {
    let dataset = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 240,
        mean_len: 120.0,
        singleton_fraction: 0.3,
        divergence: 0.08,
        seed: 77,
        ..SyntheticConfig::default()
    });
    let params = SearchParams {
        k: 5,
        ..SearchParams::default()
    }
    .with_blocking(4, 4)
    .with_load_balance(LoadBalance::IndexBased)
    .with_pre_blocking(true);

    // Serial reference.
    let serial = run_search_serial(&dataset.store, &params).expect("serial search failed");
    println!(
        "serial reference: {} edges, {} alignments",
        serial.graph.n_edges(),
        serial.stats.aligned_pairs
    );
    let reference: Vec<(u32, u32)> = serial.graph.edges().iter().map(|e| e.key()).collect();

    for p in [4usize, 9] {
        let store = dataset.store.clone();
        let prm = params.clone();
        // Each rank returns (its edge keys gathered globally, its stats).
        let outputs = run_threaded(p, move |comm| {
            let grid = ProcessGrid::square(comm.split(0, comm.rank()));
            let res = run_search(&grid, &store, &prm).expect("distributed search failed");
            let global = res.gather_graph(grid.world());
            let keys: Vec<(u32, u32)> = global.edges().iter().map(|e| e.key()).collect();
            (keys, res.stats, res.times)
        });

        // Determinism check.
        for (keys, _, _) in &outputs {
            assert_eq!(keys, &reference, "p={p} produced different results!");
        }
        println!("\np = {p}: similarity graph identical to the serial run ✓");

        // Figure-7-style imbalance reporting.
        let pairs: Vec<f64> = outputs.iter().map(|o| o.1.aligned_pairs as f64).collect();
        let cells: Vec<f64> = outputs.iter().map(|o| o.1.cells as f64).collect();
        let align_s: Vec<f64> = outputs
            .iter()
            .map(|o| o.2.get(pastis::comm::Component::Align))
            .collect();
        println!(
            "  aligned pairs/rank : {}",
            ImbalanceStats::from_values(&pairs)
        );
        println!(
            "  DP cells/rank      : {}",
            ImbalanceStats::from_values(&cells)
        );
        println!(
            "  align seconds/rank : {}",
            ImbalanceStats::from_values(&align_s)
        );
        let total_pairs: f64 = pairs.iter().sum();
        println!(
            "  total alignments   : {} (equals serial: {})",
            total_pairs,
            total_pairs as u64 == serial.stats.aligned_pairs
        );
    }
}
