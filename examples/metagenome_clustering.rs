//! Metagenome-style protein clustering — the use case the paper's
//! introduction motivates: "find the similar sequences in a given set by
//! clustering them … a many-against-many search is performed over a set of
//! sequences to find the similar sequences in the set (often followed by
//! clustering of sequences)".
//!
//! Pipeline: synthetic metagenome → PASTIS search → similarity graph →
//! connected-component clustering → cluster quality vs planted families.
//!
//! Run with: `cargo run --release --example metagenome_clustering`

use std::collections::HashMap;

use pastis::core::mcl::{mcl, MclParams};
use pastis::core::pipeline::run_search_serial;
use pastis::core::{LoadBalance, SearchParams};
use pastis::seqio::{SyntheticConfig, SyntheticDataset};

fn main() {
    let dataset = SyntheticDataset::generate(&SyntheticConfig {
        n_sequences: 800,
        mean_family_size: 6.0,
        singleton_fraction: 0.35,
        mean_len: 180.0,
        divergence: 0.07,
        indel_prob: 0.015,
        seed: 1234,
        ..SyntheticConfig::default()
    });
    println!(
        "metagenome: {} proteins ({} residues), {} planted families",
        dataset.store.len(),
        dataset.store.total_residues(),
        dataset.n_families()
    );

    // Incremental blocked search with the triangularity-based balancer —
    // the configuration of the paper's production run.
    let params = SearchParams {
        k: 5,
        ani_threshold: 0.40,
        coverage_threshold: 0.70,
        ..SearchParams::default()
    }
    .with_blocking(6, 6)
    .with_load_balance(LoadBalance::Triangular)
    .with_pre_blocking(true);

    let result = run_search_serial(&dataset.store, &params).expect("search failed");
    println!(
        "similarity graph: {} edges from {} alignments ({} candidates)",
        result.graph.n_edges(),
        result.stats.aligned_pairs,
        result.stats.candidates
    );

    // Cluster by connected components.
    let labels = result.graph.connected_components();
    let sizes = result.graph.cluster_sizes();
    println!(
        "clusters: {} non-singleton, largest {:?}",
        sizes.len(),
        &sizes[..sizes.len().min(8)]
    );

    // Cluster purity: fraction of each cluster from its majority family.
    let mut clusters: HashMap<u32, Vec<usize>> = HashMap::new();
    for (seq, &label) in labels.iter().enumerate() {
        clusters.entry(label).or_default().push(seq);
    }
    let mut pure = 0usize;
    let mut total_clustered = 0usize;
    for members in clusters.values().filter(|m| m.len() > 1) {
        let mut fam_counts: HashMap<u32, usize> = HashMap::new();
        for &m in members {
            *fam_counts.entry(dataset.family[m]).or_insert(0) += 1;
        }
        let majority = *fam_counts.values().max().unwrap();
        pure += majority;
        total_clustered += members.len();
    }
    println!(
        "cluster purity: {:.1}% of {} clustered proteins match their cluster's majority family",
        100.0 * pure as f64 / total_clustered.max(1) as f64,
        total_clustered
    );

    // Family recovery: planted families whose members share one cluster.
    let mut family_members: HashMap<u32, Vec<usize>> = HashMap::new();
    for (seq, &fam) in dataset.family.iter().enumerate() {
        if fam != SyntheticDataset::SINGLETON {
            family_members.entry(fam).or_default().push(seq);
        }
    }
    let recovered = family_members
        .values()
        .filter(|members| {
            let first = labels[members[0]];
            members.iter().all(|&m| labels[m] == first)
        })
        .count();
    println!(
        "family recovery: {recovered}/{} planted families fully co-clustered",
        family_members.len()
    );

    // Degree distribution summary — the similarity graph downstream tools
    // (HipMCL etc.) would consume.
    let degrees = result.graph.degrees();
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    let max_deg = degrees.iter().max().copied().unwrap_or(0);
    println!("graph degrees: {isolated} isolated vertices, max degree {max_deg}");

    // Markov clustering (the HipMCL step of the real workflow) compared
    // with plain connected components: MCL can split weakly-bridged
    // families that CC merges.
    let m = mcl(&result.graph, &MclParams::default());
    let mcl_sizes = m.cluster_sizes();
    let mcl_nonsingleton = mcl_sizes.iter().filter(|&&s| s > 1).count();
    println!(
        "MCL (inflation 2.0): {} non-singleton clusters in {} iterations (converged: {})",
        mcl_nonsingleton, m.iterations, m.converged
    );
}
