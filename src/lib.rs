//! PASTIS-RS — facade crate.
//!
//! Re-exports the full public API of the PASTIS reproduction: the search
//! pipeline ([`pastis_core`]), the sparse-matrix substrate
//! ([`pastis_sparse`]), the batch aligner ([`pastis_align`]), sequence I/O
//! and synthetic datasets ([`pastis_seqio`]), the message-passing substrate
//! ([`pastis_comm`]), the run-telemetry layer ([`pastis_trace`]) and the
//! comparator baselines ([`pastis_baselines`]).
//!
//! See `examples/quickstart.rs` for an end-to-end search in ~30 lines.

pub use pastis_align as align;
pub use pastis_baselines as baselines;
pub use pastis_comm as comm;
pub use pastis_core as core;
pub use pastis_seqio as seqio;
pub use pastis_sparse as sparse;
pub use pastis_trace as trace;
