//! `pastis` — the command-line interface of PASTIS-RS.
//!
//! Subcommands:
//!
//! * `search <input.fasta> <output.tsv>` — run the many-against-many
//!   similarity search and write the similarity graph as TSV triplets.
//! * `generate <output.fasta>` — emit a synthetic Metaclust-style protein
//!   dataset with planted families.
//! * `cluster <input.fasta> <output.tsv>` — search, then cluster by
//!   connected components; writes `sequence-id<TAB>cluster-id`.
//! * `stats <input.fasta>` — dataset statistics (lengths, composition).
//!
//! Run `pastis help` (or any subcommand with `--help`) for options. The
//! argument parser is hand-rolled to keep the dependency set at the
//! workspace's sanctioned crates.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pastis::align::matrices::AA_ALPHABET;
use pastis::align::SimdPolicy;
use pastis::comm::{
    run_threaded_with, CommConfig, Communicator, FaultPlan, FaultyComm, ProcessGrid, SelfComm,
    TracedComm,
};
use pastis::core::params::AlignKind;
use pastis::core::pipeline::{run_search_traced, SearchResult};
use pastis::core::{
    build_index, IndexBuildConfig, LoadBalance, PersistedIndex, SearchParams, ServeConfig,
    TunePolicy,
};
use pastis::seqio::fasta::{write_fasta, FastaStream, SeqStore};
use pastis::seqio::{QueryBatchReader, ReducedAlphabet, SyntheticConfig, SyntheticDataset};
use pastis::sparse::SpGemmKind;
use pastis::trace::json::JsonValue;
use pastis::trace::{
    chrome_trace_json, install_crash_dump, names, render_cluster_report, render_critical_path,
    render_report, start_heartbeat, ClusterReport, CriticalPath, FlightRecorder, MetricsReport,
    Recorder, TraceSession,
};

const USAGE: &str = "\
pastis — many-against-many protein similarity search via sparse matrices

USAGE:
    pastis <COMMAND> [OPTIONS]

COMMANDS:
    search <input.fasta> <output.tsv>    run the similarity search
    cluster <input.fasta> <output.tsv>   search + connected-component clustering
    index build <ref.fasta>              persist the reference k-mer index
    serve                                answer query streams from a persisted index
    generate <output.fasta>              emit a synthetic protein dataset
    stats <input.fasta>                  dataset statistics
    trace-check <telemetry.json>...      validate emitted telemetry JSON
    analyze <metrics.json>...            cluster-wide trace analytics
    help                                 show this message

SEARCH/CLUSTER OPTIONS:
    --k <INT>                 k-mer length                       [default: 6]
    --alphabet <NAME>         full20 | murphy10 | dayhoff6       [default: full20]
    --substitute-kmers <INT>  m-nearest substitute k-mers        [default: 0]
    --common-kmers <INT>      min shared k-mers to align         [default: 2]
    --ani <FLOAT>             identity threshold                 [default: 0.30]
    --coverage <FLOAT>        coverage threshold                 [default: 0.70]
    --gap-open <INT>          gap open penalty                   [default: 11]
    --gap-extend <INT>        gap extend penalty                 [default: 2]
    --blocks <RxC>            blocking factors, e.g. 4x4         [default: 1x1]
    --load-balance <NAME>     index | triangular                 [default: index]
    --pre-blocking            overlap sparse phase with alignment
    --banded <WIDTH>          banded kernel with half-width WIDTH
    --score-only              full-matrix score-only kernel (multilane SIMD)
    --simd <NAME>             auto | avx2 | sse2 | neon | scalar — vector
                              backend of the score-only kernel; output is
                              identical for any choice       [default: auto]
    --align-threads <INT>     intra-rank alignment workers; 0 = one per
                              core; output is identical for any value [default: 1]
    --spgemm <NAME>           auto | hash | heap | parallel — local SpGEMM
                              kernel inside each SUMMA stage; output is
                              identical for any choice       [default: auto]
    --spgemm-threads <INT>    intra-rank SpGEMM workers; 0 = one per core;
                              output is identical for any value [default: 1]
    --threads <INT>           unified work-stealing pool shared by the
                              sparse and alignment engines (replaces the
                              static --align-threads/--spgemm-threads
                              split); counts the submitting thread, 0 =
                              one per core; output is identical for any
                              value. When set, an explicitly passed
                              --align-threads/--spgemm-threads becomes a
                              per-engine concurrency cap on pool workers
                              instead of a dedicated thread count
    --overlap                 double-buffer SUMMA broadcasts: post stage
                              k+1's row/column broadcasts while stage k's
                              local SpGEMM runs; output is bit-identical
                              with the flag on or off
    --tune <POLICY>           auto | off | fixed:<k=v,..> — self-tuning of
                              schedule-invariant knobs. 'auto' seeds the
                              --threads engine split and serve batch size
                              from the cost model, then adapts them from
                              live telemetry between SUMMA stages / serve
                              batches; 'fixed:' pins spgemm=N,align=N,
                              batch=N,lookahead=N by hand. Output is
                              bit-identical for any policy  [default: off]
    --mcl                     cluster with Markov clustering instead of
                              connected components (cluster command only)
    --inflation <FLOAT>       MCL inflation exponent            [default: 2.0]
    --ranks <INT>             threaded ranks to run on (perfect square;
                              output is identical for any value)  [default: 1]
    --trace-out <FILE>        write a Chrome trace_event JSON of the run
                              (load in Perfetto or chrome://tracing)
    --metrics-json <FILE>     write schema-versioned per-rank metrics JSON
    --no-telemetry            disable span/counter recording entirely
    --progress                print a one-line per-rank progress heartbeat
                              every 2 s (requires telemetry)
    --flight-dump <FILE>      keep a bounded flight-recorder ring and write
                              it (plus per-rank trace tails) to FILE on
                              panic or at exit (requires telemetry)

ROBUSTNESS OPTIONS (search/cluster):
    --fault-plan <SPEC>       deterministically inject comm faults; SPEC is
                              'chaos[:SEED]', 'none', or a spec like
                              'seed=42,delay=0.2:2000,drop=0.1,corrupt=0.1
                              [,stall=RANK@OP:MS][,crash=RANK@OP]'.
                              Spill-fault keys (spill_corrupt=P,
                              spill_disk_full=P, spill_short=P,
                              spill_stall=P:US) exercise the --mem-budget
                              spill store the same way. Output is
                              bit-identical to the fault-free run
    --mem-budget <BYTES>      hard per-rank memory budget (K/M/G suffixes
                              accepted); completed output blocks and idle
                              index shards spill to --spill-dir under
                              pressure; the graph is bit-identical to an
                              unbudgeted run
    --spill-dir <DIR>         where budgeted runs spill CRC-framed shards
                              [default: a per-run dir under the system
                              temp directory]
    --op-timeout-ms <INT>     deadline on blocking comm waits — a lost peer
                              becomes a typed error, not a hang
                                                     [default: 120000]
    --checkpoint-dir <DIR>    write a per-rank checkpoint after every
                              completed block
    --resume                  resume from the newest valid checkpoint in
                              --checkpoint-dir (bit-identical final graph)
    --halt-after-blocks <INT> stop after N scheduled blocks (deterministic
                              stand-in for a mid-run kill; composes with
                              --resume)
    --straggler-factor <F>    flag ranks slower than F × median block
                              seconds via telemetry; 'off' disables
                                                     [default: 3.0]

INDEX BUILD OPTIONS (pastis index build <ref.fasta> --index-dir <DIR>):
    --index-dir <DIR>         where to persist the index (required)
    --k <INT>                 k-mer length                       [default: 6]
    --alphabet <NAME>         full20 | murphy10 | dayhoff6       [default: full20]
    --substitute-kmers <INT>  m-nearest substitute k-mers        [default: 0]
    --stripe-cols <INT>       reference columns per shard        [default: 512]
    --mem-budget <BYTES>      hard build memory budget (K/M/G suffixes)

SERVE OPTIONS (pastis serve --index-dir <DIR> --queries <FASTA>):
    --index-dir <DIR>         persisted index to serve from (required)
    --queries <FILE>          query FASTA stream; '-' reads stdin (required)
    --output <FILE>           result TSV; '-' (default) writes stdout
    --batch <INT>             admission batch cap; 0 = cost-model size
                              (SIMD-lane-aligned)                [default: 0]
    --max-wait-ms <INT>       flush deadline for partial batches [default: 10]
    --cache-entries <INT>     result-cache capacity              [default: 1024]
    --no-cache                disable the result cache
    Search knobs (--common-kmers, --ani, --coverage, --gap-*, --banded,
    --score-only, --simd, --threads, --align-threads, --spgemm*) apply as
    in search; --k/--alphabet/--substitute-kmers default to the index's
    own parameters and must match them if given. Output is byte-identical
    to batch search when the query stream is the reference set itself,
    for any batch split, thread count, SIMD backend, and cache setting.
    --trace-out/--metrics-json/--no-telemetry as in search; the run
    report includes serve latency percentiles (p50/p95/p99).

TRACE-CHECK OPTIONS:
    --expect-ranks <INT>      fail unless the file covers exactly N ranks
    --expect-phases <LIST>    comma-separated phase names that must appear

ANALYZE OPTIONS:
    analyze merges per-rank metrics JSONs (--metrics-json output; several
    single-rank files or one multi-rank file) into one cluster report:
    per-phase totals, imbalance factors, latency percentiles, slowest
    ranks/workers. With --trace it also extracts the critical path from a
    Chrome trace (--trace-out output) and attributes end-to-end wall
    clock to pipeline phases, reporting overlap-hidden comm time.
    --trace <FILE>            Chrome trace JSON for critical-path analysis
    --top <INT>               slowest ranks/workers to list  [default: 5]

GENERATE OPTIONS:
    --n <INT>                 number of sequences                [default: 1000]
    --mean-len <FLOAT>        mean sequence length               [default: 250]
    --family-size <FLOAT>     mean homolog family size           [default: 8]
    --singletons <FLOAT>      singleton fraction                 [default: 0.3]
    --divergence <FLOAT>      per-residue substitution rate      [default: 0.12]
    --seed <INT>              RNG seed                           [default: 42]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "search" => cmd_search(&args[1..], false),
        "cluster" => cmd_search(&args[1..], true),
        "index" => cmd_index(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "trace-check" => cmd_trace_check(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'pastis help')")),
    }
}

/// Minimal option scanner: positional args plus `--flag [value]` pairs.
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String], value_flags: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    flags.push((name.to_owned(), Some(v.clone())));
                } else {
                    flags.push((name.to_owned(), None));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
            None => Ok(default),
        }
    }
}

const SEARCH_VALUE_FLAGS: &[&str] = &[
    "k",
    "alphabet",
    "substitute-kmers",
    "common-kmers",
    "ani",
    "coverage",
    "gap-open",
    "gap-extend",
    "blocks",
    "load-balance",
    "banded",
    "simd",
    "align-threads",
    "spgemm",
    "spgemm-threads",
    "threads",
    "tune",
    "inflation",
    "ranks",
    "trace-out",
    "metrics-json",
    "fault-plan",
    "op-timeout-ms",
    "checkpoint-dir",
    "halt-after-blocks",
    "straggler-factor",
    "flight-dump",
    "mem-budget",
    "spill-dir",
];

/// Parse a byte count with optional K/M/G (binary) suffix.
fn parse_bytes(v: &str) -> Result<u64, String> {
    let (digits, shift) = match v.as_bytes().last() {
        Some(b'K' | b'k') => (&v[..v.len() - 1], 10),
        Some(b'M' | b'm') => (&v[..v.len() - 1], 20),
        Some(b'G' | b'g') => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("cannot parse byte count '{v}'"))?;
    n.checked_shl(shift)
        .filter(|&b| shift == 0 || b >> shift == n)
        .ok_or_else(|| format!("byte count '{v}' overflows"))
}

fn parse_search_params(opts: &Opts) -> Result<SearchParams, String> {
    let mut p = SearchParams {
        k: opts.num("k", 6)?,
        substitute_kmers: opts.num("substitute-kmers", 0)?,
        common_kmer_threshold: opts.num("common-kmers", 2)?,
        ani_threshold: opts.num("ani", 0.30)?,
        coverage_threshold: opts.num("coverage", 0.70)?,
        ..SearchParams::default()
    };
    p.gaps.open = opts.num("gap-open", 11)?;
    p.gaps.extend = opts.num("gap-extend", 2)?;
    p.alphabet = match opts.get("alphabet").unwrap_or("full20") {
        "full20" => ReducedAlphabet::Full20,
        "murphy10" => ReducedAlphabet::Murphy10,
        "dayhoff6" => ReducedAlphabet::Dayhoff6,
        other => return Err(format!("unknown alphabet '{other}'")),
    };
    if let Some(b) = opts.get("blocks") {
        let (r, c) = b
            .split_once(['x', 'X'])
            .ok_or_else(|| format!("--blocks expects RxC, got '{b}'"))?;
        p.block_rows = r.parse().map_err(|_| format!("bad block rows '{r}'"))?;
        p.block_cols = c.parse().map_err(|_| format!("bad block cols '{c}'"))?;
    }
    p.load_balance = match opts.get("load-balance").unwrap_or("index") {
        "index" => LoadBalance::IndexBased,
        "triangular" => LoadBalance::Triangular,
        other => return Err(format!("unknown load-balance scheme '{other}'")),
    };
    p.pre_blocking = opts.has("pre-blocking");
    if let Some(w) = opts.get("banded") {
        let w: usize = w.parse().map_err(|_| format!("bad band width '{w}'"))?;
        p.align_kind = AlignKind::Banded(w);
    }
    if opts.has("score-only") {
        if opts.has("banded") {
            return Err("--score-only and --banded are mutually exclusive".into());
        }
        p.align_kind = AlignKind::ScoreOnly;
    }
    if let Some(s) = opts.get("simd") {
        p.simd = SimdPolicy::parse(s)?;
    }
    if let Some(t) = opts.get("align-threads") {
        p.align_threads = t
            .parse()
            .map_err(|_| format!("bad align-threads value '{t}'"))?;
    }
    if let Some(s) = opts.get("spgemm") {
        p.spgemm = SpGemmKind::parse(s)?;
    }
    if let Some(t) = opts.get("spgemm-threads") {
        p.spgemm_threads = t
            .parse()
            .map_err(|_| format!("bad spgemm-threads value '{t}'"))?;
    }
    if let Some(t) = opts.get("threads") {
        p.threads = Some(t.parse().map_err(|_| format!("bad threads value '{t}'"))?);
        // Under the unified pool the legacy per-engine knobs stop being
        // thread counts and become optional concurrency caps; only map
        // them when the user actually passed them.
        if opts.get("align-threads").is_some() {
            p.align_cap = Some(p.align_threads);
        }
        if opts.get("spgemm-threads").is_some() {
            p.spgemm_cap = Some(p.spgemm_threads);
        }
    }
    if let Some(t) = opts.get("tune") {
        p.tune = TunePolicy::parse(t)?;
    }
    p.overlap = opts.has("overlap");
    if let Some(ms) = opts.get("op-timeout-ms") {
        p.op_timeout_ms = Some(
            ms.parse()
                .map_err(|_| format!("bad op-timeout-ms value '{ms}'"))?,
        );
    }
    if let Some(dir) = opts.get("checkpoint-dir") {
        p.checkpoint_dir = Some(PathBuf::from(dir));
    }
    p.resume = opts.has("resume");
    if let Some(h) = opts.get("halt-after-blocks") {
        p.halt_after_blocks = Some(
            h.parse()
                .map_err(|_| format!("bad halt-after-blocks value '{h}'"))?,
        );
    }
    if let Some(f) = opts.get("straggler-factor") {
        p.straggler_factor = if f == "off" {
            None
        } else {
            Some(
                f.parse()
                    .map_err(|_| format!("bad straggler-factor value '{f}'"))?,
            )
        };
    }
    if let Some(b) = opts.get("mem-budget") {
        p.mem_budget = Some(parse_bytes(b).map_err(|e| format!("--mem-budget: {e}"))?);
    }
    if let Some(dir) = opts.get("spill-dir") {
        p.spill_dir = Some(PathBuf::from(dir));
    }
    if let Some(spec) = opts.get("fault-plan") {
        // The comm layer gets the same plan in cmd_search; the spill store
        // draws from an independent deterministic op stream.
        let plan = FaultPlan::parse(spec)?;
        if plan.has_spill_faults() {
            p.spill_faults = Some(plan);
        }
    }
    if (p.mem_budget.is_some() || p.spill_faults.is_some()) && p.spill_dir.is_none() {
        // Budgeted runs must spill somewhere; default to a per-process
        // directory under the system temp dir so --mem-budget works out
        // of the box.
        p.spill_dir =
            Some(std::env::temp_dir().join(format!("pastis-spill-{}", std::process::id())));
    }
    p.validate()?;
    Ok(p)
}

fn load_store(path: &Path) -> Result<SeqStore, String> {
    // Bounded streaming ingestion: records are encoded one at a time off
    // a buffered reader, so peak memory is the encoded store plus a
    // single record — never the raw file — and a pathological record
    // fails typed instead of ballooning (the --mem-budget ingestion
    // guard).
    const RECORD_BOUND: usize = 1 << 30;
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let stream = FastaStream::new(std::io::BufReader::new(file)).with_record_bound(RECORD_BOUND);
    SeqStore::from_fasta_stream(stream).map_err(|e| format!("{}: {e}", path.display()))
}

fn do_search(
    input: &Path,
    params: &SearchParams,
    ranks: usize,
    telemetry: bool,
    fault: &FaultPlan,
    progress: bool,
    flight_dump: Option<&Path>,
) -> Result<(SeqStore, SearchResult, Option<Arc<TraceSession>>), String> {
    let store = load_store(input)?;
    eprintln!(
        "loaded {} sequences ({} residues) from {}",
        store.len(),
        store.total_residues(),
        input.display()
    );
    let session = telemetry.then(|| Arc::new(TraceSession::new()));

    // Flight recorder: a bounded breadcrumb ring. The crash-dump hook
    // samples per-rank trace tails only when a panic actually fires, so
    // the run itself pays one ring push per heartbeat and nothing more.
    let flight = (progress || flight_dump.is_some()).then(|| Arc::new(FlightRecorder::default()));
    if let (Some(flight), Some(session), Some(path)) = (&flight, &session, flight_dump) {
        install_crash_dump(Arc::clone(flight), Arc::clone(session), path.to_path_buf());
    }
    let _heartbeat = match (&flight, &session, progress) {
        (Some(flight), Some(session), true) => {
            flight.note("run", format!("search start: {} ranks", ranks));
            Some(start_heartbeat(
                Arc::clone(flight),
                Arc::clone(session),
                Duration::from_secs(2),
                |line| eprintln!("[progress] {line}"),
            ))
        }
        _ => None,
    };
    // The --op-timeout-ms deadline bounds both the pipeline's explicit
    // receive waits (via params) and every blocking wait inside the
    // threaded communicator itself.
    let comm_config = params.op_timeout_ms.map_or_else(CommConfig::default, |ms| {
        CommConfig::bounded(Duration::from_millis(ms))
    });
    let result: Result<SearchResult, String> = if ranks <= 1 {
        let rec = session
            .as_ref()
            .map_or_else(Recorder::disabled, |s| s.recorder(0));
        // Stack order: trace outside, faults inside — retransmissions the
        // fault layer absorbs never pollute the comm trace.
        let faulty = FaultyComm::new(SelfComm::new(), fault.clone()).with_recorder(rec.clone());
        let grid = ProcessGrid::square(TracedComm::new(faulty, rec.clone()));
        run_search_traced(&grid, &store, params, &rec)
    } else {
        let q = (ranks as f64).sqrt().round() as usize;
        if q * q != ranks {
            return Err(format!("--ranks must be a perfect square, got {ranks}"));
        }
        let store = Arc::new(store.clone());
        let params_arc = Arc::new(params.clone());
        let session = session.clone();
        let fault = fault.clone();
        let outs = run_threaded_with(ranks, comm_config, move |c| {
            let rec = session
                .as_ref()
                .map_or_else(Recorder::disabled, |s| s.recorder(c.rank()));
            let faulty =
                FaultyComm::new(c.split(0, c.rank()), fault.clone()).with_recorder(rec.clone());
            let comm = TracedComm::new(faulty, rec.clone());
            let grid = ProcessGrid::square(comm);
            let mut res = run_search_traced(&grid, &store, &params_arc, &rec).inspect_err(|e| {
                // Per-rank failure line: in a collective abort every rank
                // reports, but a unilateral error (a rank leaving the SPMD
                // schedule alone) is visible here even if the survivors
                // then die in a comm timeout.
                eprintln!("rank {} failed: {e}", grid.world().rank());
            })?;
            // Assemble the global result on every rank; rank 0's copy is
            // the one reported.
            res.graph = res.gather_graph(grid.world());
            res.stats = res.stats.all_reduce(grid.world());
            Ok::<(usize, SearchResult), String>((grid.world().rank(), res))
        });
        let mut global: Option<SearchResult> = None;
        let mut hw_max: Option<u64> = None;
        let mut first_err: Option<String> = None;
        for out in outs {
            match out {
                Ok((rank, res)) => {
                    if let Some(h) = res.mem_high_water {
                        hw_max = Some(hw_max.map_or(h, |m| m.max(h)));
                    }
                    if rank == 0 {
                        global = Some(res);
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => global
                .ok_or_else(|| "rank 0 produced no result".to_owned())
                .map(|mut g| {
                    // Report the worst rank's accounted peak, not rank 0's.
                    g.mem_high_water = hw_max;
                    g
                }),
        }
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            // Graceful degradation on a genuine OOM: the error names the
            // oversized phase; capture it in the flight-recorder dump so
            // post-mortems see which reservation could not be satisfied.
            if e.contains("out of memory in phase") {
                if let Some(flight) = &flight {
                    flight.note("mem", e.clone());
                    if let Some(path) = flight_dump {
                        if flight
                            .write_dump(path, session.as_deref(), Some("out-of-memory"))
                            .is_ok()
                        {
                            eprintln!(
                                "wrote flight-recorder dump to {} (out of memory)",
                                path.display()
                            );
                        }
                    }
                }
            }
            return Err(e);
        }
    };
    if let (Some(hw), Some(budget)) = (result.mem_high_water, params.mem_budget) {
        eprintln!(
            "memory budget: high water {hw} of {budget} bytes ({:.0}%)",
            100.0 * hw as f64 / budget as f64
        );
    }
    eprintln!(
        "search done in {:.2}s: {} candidates, {} alignments, {} similar pairs",
        result.wall_seconds,
        result.stats.candidates,
        result.stats.aligned_pairs,
        result.stats.similar_pairs
    );
    if params.align_kind == AlignKind::ScoreOnly {
        // validate() (inside the pipeline) already resolved the policy.
        let backend = params.simd.resolve()?;
        eprintln!(
            "simd backend: {} ({} × i16 lanes; scores identical to scalar)",
            backend,
            backend.lanes()
        );
    }
    if let (Some(flight), Some(path)) = (&flight, flight_dump) {
        flight.note("run", "search complete");
        flight
            .write_dump(path, session.as_deref(), Some("completed"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote flight-recorder dump to {}", path.display());
    }
    Ok((store, result, session))
}

fn cmd_search(args: &[String], cluster: bool) -> Result<(), String> {
    let opts = Opts::parse(args, SEARCH_VALUE_FLAGS)?;
    let [input, output] = opts.positional.as_slice() else {
        return Err("expected: <input.fasta> <output.tsv>".into());
    };
    let params = parse_search_params(&opts)?;
    let ranks: usize = opts.num("ranks", 1)?;
    if ranks == 0 {
        return Err("--ranks must be at least 1".into());
    }
    let telemetry = !opts.has("no-telemetry");
    let trace_out = opts.get("trace-out").map(PathBuf::from);
    let metrics_out = opts.get("metrics-json").map(PathBuf::from);
    if !telemetry && (trace_out.is_some() || metrics_out.is_some()) {
        return Err("--trace-out/--metrics-json require telemetry (drop --no-telemetry)".into());
    }
    let progress = opts.has("progress");
    let flight_dump = opts.get("flight-dump").map(PathBuf::from);
    if !telemetry && (progress || flight_dump.is_some()) {
        return Err("--progress/--flight-dump require telemetry (drop --no-telemetry)".into());
    }
    let fault = match opts.get("fault-plan") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::none(),
    };
    if !fault.is_noop() {
        eprintln!("fault injection active: {}", fault.to_spec());
    }
    let (store, result, session) = do_search(
        Path::new(input),
        &params,
        ranks,
        telemetry,
        &fault,
        progress,
        flight_dump.as_deref(),
    )?;
    if let Some(k) = result.resumed_from_block {
        eprintln!("resumed from checkpoint: blocks 0..{k} restored");
    }
    if let Some(rep) = &result.stragglers {
        if !rep.is_healthy() {
            eprintln!(
                "straggler warning: ranks {:?} exceeded {:.1}× the median block time",
                rep.flagged, rep.factor
            );
        }
    }
    if let Some(session) = &session {
        let report = MetricsReport::from_session(session.as_ref());
        eprint!("{}", render_report(&report));
        if let Some(p) = &trace_out {
            std::fs::write(p, chrome_trace_json(session.as_ref()))
                .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
            eprintln!(
                "wrote Chrome trace to {} (load in Perfetto or chrome://tracing)",
                p.display()
            );
        }
        if let Some(p) = &metrics_out {
            std::fs::write(p, report.to_json())
                .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
            eprintln!("wrote metrics JSON to {}", p.display());
        }
    }

    let out = PathBuf::from(output);
    if cluster {
        let labels = if opts.has("mcl") {
            let inflation = opts.num("inflation", 2.0)?;
            let r = pastis::core::mcl::mcl(
                &result.graph,
                &pastis::core::mcl::MclParams {
                    inflation,
                    ..Default::default()
                },
            );
            eprintln!(
                "MCL: {} iterations (converged: {})",
                r.iterations, r.converged
            );
            r.labels
        } else {
            result.graph.connected_components()
        };
        let mut lines = String::new();
        for (i, &label) in labels.iter().enumerate() {
            lines.push_str(&format!("{}\t{}\n", store.id(i), label));
        }
        std::fs::write(&out, lines).map_err(|e| format!("cannot write {output}: {e}"))?;
        let sizes = result.graph.cluster_sizes();
        eprintln!(
            "wrote {} cluster assignments ({} non-singleton clusters, largest {})",
            labels.len(),
            sizes.len(),
            sizes.first().copied().unwrap_or(0)
        );
    } else {
        let mut lines = String::with_capacity(result.graph.n_edges() * 32);
        for l in result.graph.to_tsv_lines() {
            lines.push_str(&l);
            lines.push('\n');
        }
        std::fs::write(&out, lines).map_err(|e| format!("cannot write {output}: {e}"))?;
        eprintln!("wrote {} edges to {output}", result.graph.n_edges());
    }
    Ok(())
}

const INDEX_VALUE_FLAGS: &[&str] = &[
    "index-dir",
    "k",
    "alphabet",
    "substitute-kmers",
    "stripe-cols",
    "mem-budget",
];

fn cmd_index(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_index_build(&args[1..]),
        Some(other) => Err(format!(
            "unknown index subcommand '{other}' (expected: pastis index build <ref.fasta> --index-dir <DIR>)"
        )),
        None => Err("expected: pastis index build <ref.fasta> --index-dir <DIR>".into()),
    }
}

fn cmd_index_build(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, INDEX_VALUE_FLAGS)?;
    let [input] = opts.positional.as_slice() else {
        return Err("expected: pastis index build <ref.fasta> --index-dir <DIR>".into());
    };
    let dir = PathBuf::from(opts.get("index-dir").ok_or("--index-dir is required")?);
    let mut cfg = IndexBuildConfig {
        k: opts.num("k", 6)?,
        substitute_kmers: opts.num("substitute-kmers", 0)?,
        stripe_cols: opts.num("stripe-cols", 512)?,
        ..IndexBuildConfig::default()
    };
    cfg.alphabet = match opts.get("alphabet").unwrap_or("full20") {
        "full20" => ReducedAlphabet::Full20,
        "murphy10" => ReducedAlphabet::Murphy10,
        "dayhoff6" => ReducedAlphabet::Dayhoff6,
        other => return Err(format!("unknown alphabet '{other}'")),
    };
    if let Some(b) = opts.get("mem-budget") {
        cfg.mem_budget = Some(parse_bytes(b).map_err(|e| format!("--mem-budget: {e}"))?);
    }
    let store = load_store(Path::new(input))?;
    eprintln!(
        "loaded {} sequences ({} residues) from {input}",
        store.len(),
        store.total_residues()
    );
    let t0 = std::time::Instant::now();
    let report = build_index(&store, &cfg, &dir, &Recorder::disabled())?;
    eprintln!(
        "built index in {:.2}s: {} refs, {} stripes ({} cols each), {} nnz, {} bytes at {}",
        t0.elapsed().as_secs_f64(),
        report.manifest.n_refs,
        report.manifest.n_stripes,
        report.manifest.stripe_cols,
        report.nnz,
        report.shard_bytes,
        dir.display()
    );
    if report.mem_high_water > 0 {
        eprintln!("build high water: {} bytes", report.mem_high_water);
    }
    // The cost-model verdict on whether persisting pays off.
    let amo = pastis::core::perfmodel::index_amortization(
        &pastis::comm::MachineModel::commodity(),
        store.total_residues() as u64,
        report.shard_bytes,
    );
    if amo.break_even_runs.is_finite() {
        eprintln!(
            "modeled amortization (commodity preset): load {:.3}s vs {:.3}s k-mer rebuild \
             per run; the build pays for itself after {:.1} runs",
            amo.load_seconds, amo.rebuild_seconds, amo.break_even_runs
        );
    } else {
        eprintln!(
            "modeled amortization (commodity preset): loading ({:.3}s) is no faster than \
             rebuilding ({:.3}s) — persist for serving, not for speed",
            amo.load_seconds, amo.rebuild_seconds
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut value_flags = SEARCH_VALUE_FLAGS.to_vec();
    value_flags.extend_from_slice(&[
        "index-dir",
        "queries",
        "output",
        "batch",
        "max-wait-ms",
        "cache-entries",
    ]);
    let opts = Opts::parse(args, &value_flags)?;
    let dir = PathBuf::from(opts.get("index-dir").ok_or("--index-dir is required")?);
    let queries_path = opts
        .get("queries")
        .ok_or("--queries is required (a FASTA file, or '-' for stdin)")?
        .to_owned();
    let output = opts.get("output").unwrap_or("-").to_owned();
    let telemetry = !opts.has("no-telemetry");
    let trace_out = opts.get("trace-out").map(PathBuf::from);
    let metrics_out = opts.get("metrics-json").map(PathBuf::from);
    if !telemetry && (trace_out.is_some() || metrics_out.is_some()) {
        return Err("--trace-out/--metrics-json require telemetry (drop --no-telemetry)".into());
    }

    let index = PersistedIndex::open(&dir)?;
    let mut params = parse_search_params(&opts)?;
    // The k-mer knobs belong to the index; default to its own parameters
    // so a plain `pastis serve` always matches. Explicitly passed values
    // are honored and checked — a mismatch is the "stale index" refusal.
    if opts.get("k").is_none() {
        params.k = index.manifest.k;
    }
    if opts.get("alphabet").is_none() {
        params.alphabet = index.manifest.alphabet;
    }
    if opts.get("substitute-kmers").is_none() {
        params.substitute_kmers = index.manifest.substitute_kmers;
    }
    let mut cfg = ServeConfig::from_params(params);
    cfg.max_batch = opts.num("batch", 0usize)?;
    cfg.max_wait_us = opts.num::<u64>("max-wait-ms", 10)?.saturating_mul(1000);
    cfg.cache_entries = if opts.has("no-cache") {
        0
    } else {
        opts.num("cache-entries", 1024)?
    };

    // Stream the queries in bounded batches off a file or stdin.
    const RECORD_BOUND: usize = 1 << 30;
    let mut queries = SeqStore::new();
    let mut ingest =
        |reader: &mut QueryBatchReader<Box<dyn std::io::BufRead>>| -> Result<(), String> {
            loop {
                let batch = reader
                    .next_batch()
                    .map_err(|e| format!("{queries_path}: {e}"))?;
                if batch.is_empty() {
                    return Ok(());
                }
                let encoded =
                    SeqStore::from_records(&batch).map_err(|e| format!("{queries_path}: {e}"))?;
                for i in 0..encoded.len() {
                    queries.push(encoded.id(i).to_owned(), encoded.seq(i).to_vec());
                }
            }
        };
    let reader: Box<dyn std::io::BufRead> = if queries_path == "-" {
        Box::new(std::io::BufReader::new(std::io::stdin()))
    } else {
        let f = std::fs::File::open(&queries_path)
            .map_err(|e| format!("cannot read {queries_path}: {e}"))?;
        Box::new(std::io::BufReader::new(f))
    };
    let mut reader = QueryBatchReader::new(reader, 4096).with_record_bound(RECORD_BOUND);
    ingest(&mut reader)?;
    eprintln!(
        "serving {} queries against {} indexed references from {}",
        queries.len(),
        index.manifest.n_refs,
        dir.display()
    );

    let session = telemetry.then(TraceSession::new);
    let rec = session
        .as_ref()
        .map_or_else(Recorder::disabled, |s| s.recorder(0));
    let t0 = std::time::Instant::now();
    let out = pastis::core::serve_queries_traced(&index, &queries, &cfg, &rec)?;
    let s = &out.stats;
    eprintln!(
        "served {} requests in {} batches in {:.2}s: {} candidates, {} alignments, \
         {} rows; cache {} hits / {} misses; {} stripes loaded{}",
        s.requests,
        s.batches,
        t0.elapsed().as_secs_f64(),
        s.candidates,
        s.aligned_pairs,
        s.emitted,
        s.cache_hits,
        s.cache_misses,
        s.stripes_loaded,
        if s.self_mode {
            "; self mode (queries are the reference set)"
        } else {
            ""
        }
    );
    if let Some(session) = &session {
        let report = MetricsReport::from_session(session);
        eprint!("{}", render_report(&report));
        if let Some(p) = &trace_out {
            std::fs::write(p, chrome_trace_json(session))
                .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
            eprintln!("wrote Chrome trace to {}", p.display());
        }
        if let Some(p) = &metrics_out {
            std::fs::write(p, report.to_json())
                .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
            eprintln!("wrote metrics JSON to {}", p.display());
        }
    }

    let mut text = String::with_capacity(out.lines.len() * 32);
    for l in &out.lines {
        text.push_str(l);
        text.push('\n');
    }
    if output == "-" {
        use std::io::Write as _;
        std::io::stdout()
            .write_all(text.as_bytes())
            .map_err(|e| format!("cannot write stdout: {e}"))?;
    } else {
        std::fs::write(&output, text).map_err(|e| format!("cannot write {output}: {e}"))?;
        eprintln!("wrote {} rows to {output}", out.lines.len());
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(
        args,
        &[
            "n",
            "mean-len",
            "family-size",
            "singletons",
            "divergence",
            "seed",
        ],
    )?;
    let [output] = opts.positional.as_slice() else {
        return Err("expected: <output.fasta>".into());
    };
    let cfg = SyntheticConfig {
        n_sequences: opts.num("n", 1000)?,
        mean_len: opts.num("mean-len", 250.0)?,
        mean_family_size: opts.num("family-size", 8.0)?,
        singleton_fraction: opts.num("singletons", 0.3)?,
        divergence: opts.num("divergence", 0.12)?,
        seed: opts.num("seed", 42)?,
        ..SyntheticConfig::default()
    };
    let ds = SyntheticDataset::generate(&cfg);
    let mut buf = Vec::new();
    write_fasta(&mut buf, &ds.store.to_records(), 60)
        .map_err(|e| format!("serialization failed: {e}"))?;
    std::fs::write(output, buf).map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!(
        "wrote {} sequences ({} residues, {} families) to {output}",
        ds.store.len(),
        ds.store.total_residues(),
        ds.n_families()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let [input] = opts.positional.as_slice() else {
        return Err("expected: <input.fasta>".into());
    };
    let store = load_store(Path::new(input))?;
    let mut lens: Vec<usize> = (0..store.len()).map(|i| store.seq_len(i)).collect();
    lens.sort_unstable();
    let pct = |q: f64| -> usize {
        if lens.is_empty() {
            0
        } else {
            lens[((lens.len() - 1) as f64 * q) as usize]
        }
    };
    println!("sequences        : {}", store.len());
    println!("total residues   : {}", store.total_residues());
    println!("mean length      : {:.1}", store.mean_len());
    println!(
        "length quartiles : min={} p25={} median={} p75={} max={}",
        lens.first().copied().unwrap_or(0),
        pct(0.25),
        pct(0.5),
        pct(0.75),
        lens.last().copied().unwrap_or(0)
    );
    // Residue composition.
    let mut counts = [0u64; 21];
    for i in 0..store.len() {
        for &c in store.seq(i) {
            counts[c as usize] += 1;
        }
    }
    let total: u64 = counts.iter().sum();
    print!("composition      :");
    for (code, &n) in counts.iter().enumerate() {
        if n > 0 {
            print!(
                " {}:{:.1}%",
                AA_ALPHABET[code] as char,
                100.0 * n as f64 / total.max(1) as f64
            );
        }
    }
    println!();
    Ok(())
}

/// Merge per-rank metrics JSONs into one cluster report (per-phase
/// totals, imbalance, percentiles, slowest ranks/workers) and, given a
/// Chrome trace, extract the critical path and attribute end-to-end wall
/// clock to pipeline phases.
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["trace", "top"])?;
    if opts.positional.is_empty() && opts.get("trace").is_none() {
        return Err("expected: analyze <metrics.json>... [--trace <trace.json>] [--top K]".into());
    }
    let top: usize = opts.num("top", 5)?;
    let mut reports = Vec::new();
    for path in &opts.positional {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        reports.push(MetricsReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    if !reports.is_empty() {
        let cluster = ClusterReport::from_reports(&reports)?;
        print!("{}", render_cluster_report(&cluster, top));
    }
    if let Some(path) = opts.get("trace") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let timelines =
            pastis::trace::timelines_from_chrome_json(&text).map_err(|e| format!("{path}: {e}"))?;
        match CriticalPath::extract(&timelines) {
            Some(cp) => print!("{}", render_critical_path(&cp)),
            None => eprintln!("{path}: no main-track spans; skipping critical path"),
        }
    }
    Ok(())
}

/// Validate telemetry JSON emitted by `--trace-out` / `--metrics-json`:
/// the file must parse, carry the expected structure, and (optionally)
/// cover an exact rank count and a set of phase names. Exits non-zero on
/// the first violation — the CI telemetry job is built on this.
fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args, &["expect-ranks", "expect-phases"])?;
    if opts.positional.is_empty() {
        return Err("expected: trace-check <telemetry.json>...".into());
    }
    let expect_ranks: Option<usize> = match opts.get("expect-ranks") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--expect-ranks: cannot parse '{v}'"))?,
        ),
        None => None,
    };
    let expect_phases: Vec<String> = opts
        .get("expect-phases")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default();
    for path in &opts.positional {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let (kind, ranks, phases) =
            validate_telemetry_file(&text).map_err(|e| format!("{path}: {e}"))?;
        if let Some(want) = expect_ranks {
            if ranks.len() != want {
                return Err(format!(
                    "{path}: expected {want} ranks, found {} ({ranks:?})",
                    ranks.len()
                ));
            }
        }
        for phase in &expect_phases {
            if !phases.iter().any(|p| p == phase) {
                return Err(format!(
                    "{path}: missing phase '{phase}' (present: {})",
                    phases.join(", ")
                ));
            }
        }
        eprintln!(
            "{path}: ok ({kind}, {} ranks, {} phases)",
            ranks.len(),
            phases.len()
        );
    }
    Ok(())
}

/// Parse one telemetry file, returning its kind, the rank ids it covers,
/// and the phase names present (span names for Chrome traces, nonzero
/// component labels for metrics documents). Every span and counter name
/// must come from the workspace registry (`pastis::trace::names`) — a
/// name outside it is a typo'd emit site creating an orphan series.
fn validate_telemetry_file(text: &str) -> Result<(String, Vec<usize>, Vec<String>), String> {
    let v = pastis::trace::json::parse(text)?;
    if let Some(events) = v.get("traceEvents") {
        let events = events.as_array().ok_or("traceEvents is not an array")?;
        let mut ranks: Vec<usize> = Vec::new();
        let mut phases: Vec<String> = Vec::new();
        for e in events {
            let ph = e
                .get("ph")
                .and_then(JsonValue::as_str)
                .ok_or("event missing ph")?;
            let pid = e
                .get("pid")
                .and_then(JsonValue::as_u64)
                .ok_or("event missing pid")? as usize;
            if !ranks.contains(&pid) {
                ranks.push(pid);
            }
            if ph == "X" {
                let name = e
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("span event missing name")?;
                for key in ["cat", "ts", "dur", "tid"] {
                    if e.get(key).is_none() {
                        return Err(format!("span '{name}' missing '{key}'"));
                    }
                }
                if !names::is_known_span(name) {
                    return Err(format!(
                        "unknown span name '{name}' (not in the pastis::trace::names registry)"
                    ));
                }
                if !phases.iter().any(|p| p == name) {
                    phases.push(name.to_owned());
                }
            }
        }
        ranks.sort_unstable();
        Ok(("chrome-trace".to_owned(), ranks, phases))
    } else {
        let parsed = MetricsReport::parse_json(text)?;
        let report = MetricsReport::from_json(text)?;
        for rank in &report.ranks {
            for name in rank.counters.keys() {
                if !names::is_known_counter(name) {
                    return Err(format!(
                        "rank {}: unknown counter '{name}' (not in the registry)",
                        rank.rank
                    ));
                }
            }
            for name in rank.span_hist.keys() {
                if !names::is_known_span(name) {
                    return Err(format!(
                        "rank {}: histogram for unknown span '{name}' (not in the registry)",
                        rank.rank
                    ));
                }
            }
        }
        let mut ranks = parsed.rank_ids;
        ranks.sort_unstable();
        ranks.dedup();
        let kind = format!(
            "metrics v{}, {} span histograms",
            parsed.schema,
            parsed.hist_names.len()
        );
        Ok((kind, ranks, parsed.phase_names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opts_parse_flags_and_positionals() {
        let o = Opts::parse(
            &s(&["in.fa", "--k", "5", "--pre-blocking", "out.tsv"]),
            &["k"],
        )
        .unwrap();
        assert_eq!(o.positional, vec!["in.fa", "out.tsv"]);
        assert_eq!(o.get("k"), Some("5"));
        assert!(o.has("pre-blocking"));
        assert!(!o.has("banded"));
    }

    #[test]
    fn opts_missing_value_is_error() {
        assert!(Opts::parse(&s(&["--k"]), &["k"]).is_err());
    }

    #[test]
    fn search_params_full_roundtrip() {
        let o = Opts::parse(
            &s(&[
                "--k",
                "5",
                "--alphabet",
                "murphy10",
                "--blocks",
                "4x3",
                "--load-balance",
                "triangular",
                "--pre-blocking",
                "--ani",
                "0.5",
                "--coverage",
                "0.6",
                "--gap-open",
                "10",
                "--gap-extend",
                "1",
                "--common-kmers",
                "3",
                "--substitute-kmers",
                "4",
                "--banded",
                "16",
            ]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let p = parse_search_params(&o).unwrap();
        assert_eq!(p.k, 5);
        assert_eq!(p.alphabet, ReducedAlphabet::Murphy10);
        assert_eq!((p.block_rows, p.block_cols), (4, 3));
        assert_eq!(p.load_balance, LoadBalance::Triangular);
        assert!(p.pre_blocking);
        assert_eq!(p.common_kmer_threshold, 3);
        assert_eq!(p.substitute_kmers, 4);
        assert_eq!(p.gaps.open, 10);
        assert!(matches!(p.align_kind, AlignKind::Banded(16)));
    }

    #[test]
    fn score_only_and_align_threads_flags() {
        let o = Opts::parse(
            &s(&["--score-only", "--align-threads", "4"]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let p = parse_search_params(&o).unwrap();
        assert!(matches!(p.align_kind, AlignKind::ScoreOnly));
        assert_eq!(p.align_threads, 4);
        // --score-only and --banded conflict.
        let both = Opts::parse(&s(&["--score-only", "--banded", "8"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&both).is_err());
        // Bad worker count is rejected.
        let bad = Opts::parse(&s(&["--align-threads", "many"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&bad).is_err());
    }

    #[test]
    fn simd_flag_parses_and_validates() {
        use pastis::align::{SimdBackend, SimdPolicy};
        // Default is auto.
        let none = Opts::parse(&[], SEARCH_VALUE_FLAGS).unwrap();
        assert_eq!(parse_search_params(&none).unwrap().simd, SimdPolicy::Auto);
        let auto = Opts::parse(&s(&["--simd", "auto"]), SEARCH_VALUE_FLAGS).unwrap();
        assert_eq!(parse_search_params(&auto).unwrap().simd, SimdPolicy::Auto);
        let scalar = Opts::parse(&s(&["--simd", "scalar"]), SEARCH_VALUE_FLAGS).unwrap();
        assert_eq!(
            parse_search_params(&scalar).unwrap().simd,
            SimdPolicy::Force(SimdBackend::Scalar)
        );
        // Unknown backend names are rejected at parse time.
        let bad = Opts::parse(&s(&["--simd", "avx1024"]), SEARCH_VALUE_FLAGS).unwrap();
        let err = parse_search_params(&bad).unwrap_err();
        assert!(err.contains("unknown SIMD backend"), "{err}");
        // Forcing a backend the host lacks fails validation with the
        // available list in the message.
        #[cfg(target_arch = "x86_64")]
        {
            let neon = Opts::parse(&s(&["--simd", "neon"]), SEARCH_VALUE_FLAGS).unwrap();
            let err = parse_search_params(&neon).unwrap_err();
            assert!(err.contains("not available"), "{err}");
        }
    }

    #[test]
    fn simd_scalar_and_auto_emit_byte_identical_tsv() {
        // The CLI-level face of the kernel-equivalence contract: the whole
        // search with `--simd scalar` and `--simd auto` writes the exact
        // same bytes (same edges, same scores, same float formatting).
        let dir = std::env::temp_dir().join(format!("pastis-cli-simd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("s.fa");
        run(&s(&[
            "generate",
            fa.to_str().unwrap(),
            "--n",
            "70",
            "--mean-len",
            "90",
            "--seed",
            "23",
        ]))
        .unwrap();
        let run_with = |simd: &str, out: &Path| {
            run(&s(&[
                "search",
                fa.to_str().unwrap(),
                out.to_str().unwrap(),
                "--k",
                "5",
                "--blocks",
                "2x2",
                "--ani",
                "0.4",
                "--coverage",
                "0.5",
                "--score-only",
                "--simd",
                simd,
                "--align-threads",
                "2",
            ]))
            .unwrap();
            std::fs::read(out).unwrap()
        };
        let scalar = run_with("scalar", &dir.join("scalar.tsv"));
        let auto = run_with("auto", &dir.join("auto.tsv"));
        assert!(!scalar.is_empty(), "scalar run produced no edges");
        assert_eq!(scalar, auto, "--simd auto diverged from --simd scalar");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spgemm_flags_parse_and_validate() {
        // Defaults: auto kernel, serial pool.
        let none = Opts::parse(&[], SEARCH_VALUE_FLAGS).unwrap();
        let p = parse_search_params(&none).unwrap();
        assert_eq!(p.spgemm, SpGemmKind::Auto);
        assert_eq!(p.spgemm_threads, 1);
        let o = Opts::parse(
            &s(&["--spgemm", "parallel", "--spgemm-threads", "4"]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let p = parse_search_params(&o).unwrap();
        assert_eq!(p.spgemm, SpGemmKind::Parallel);
        assert_eq!(p.spgemm_threads, 4);
        // 0 = one worker per core is valid.
        let zero = Opts::parse(&s(&["--spgemm-threads", "0"]), SEARCH_VALUE_FLAGS).unwrap();
        assert_eq!(parse_search_params(&zero).unwrap().spgemm_threads, 0);
        // Unknown kernel names and bad worker counts are rejected.
        let bad = Opts::parse(&s(&["--spgemm", "quantum"]), SEARCH_VALUE_FLAGS).unwrap();
        let err = parse_search_params(&bad).unwrap_err();
        assert!(err.contains("unknown SpGEMM kernel"), "{err}");
        let bad = Opts::parse(&s(&["--spgemm-threads", "many"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&bad).is_err());
    }

    #[test]
    fn spgemm_kernels_and_threads_emit_byte_identical_tsv() {
        // The CLI-level face of the SpGEMM determinism contract: every
        // kernel × worker-count combination writes the exact same bytes
        // (same edges, same scores, same float formatting).
        let dir = std::env::temp_dir().join(format!("pastis-cli-spgemm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("s.fa");
        run(&s(&[
            "generate",
            fa.to_str().unwrap(),
            "--n",
            "70",
            "--mean-len",
            "90",
            "--seed",
            "23",
        ]))
        .unwrap();
        let run_with = |spgemm: &str, threads: &str, out: &Path| {
            run(&s(&[
                "search",
                fa.to_str().unwrap(),
                out.to_str().unwrap(),
                "--k",
                "5",
                "--blocks",
                "2x2",
                "--ani",
                "0.4",
                "--coverage",
                "0.5",
                "--spgemm",
                spgemm,
                "--spgemm-threads",
                threads,
            ]))
            .unwrap();
            std::fs::read(out).unwrap()
        };
        let base = run_with("hash", "1", &dir.join("hash1.tsv"));
        assert!(!base.is_empty(), "serial hash run produced no edges");
        for (kernel, threads) in [("parallel", "4"), ("heap", "1"), ("auto", "3")] {
            let got = run_with(kernel, threads, &dir.join(format!("{kernel}{threads}.tsv")));
            assert_eq!(
                got, base,
                "--spgemm {kernel} --spgemm-threads {threads} diverged from serial hash"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unified_pool_flags_parse_and_validate() {
        // Defaults: no unified pool, overlap off.
        let none = Opts::parse(&[], SEARCH_VALUE_FLAGS).unwrap();
        let p = parse_search_params(&none).unwrap();
        assert_eq!(p.threads, None);
        assert!(!p.overlap);
        assert_eq!((p.align_cap, p.spgemm_cap), (None, None));
        // --threads alone: pool of 4, no caps.
        let o = Opts::parse(&s(&["--threads", "4", "--overlap"]), SEARCH_VALUE_FLAGS).unwrap();
        let p = parse_search_params(&o).unwrap();
        assert_eq!(p.threads, Some(4));
        assert!(p.overlap);
        assert_eq!((p.align_cap, p.spgemm_cap), (None, None));
        // 0 = one per core is valid.
        let zero = Opts::parse(&s(&["--threads", "0"]), SEARCH_VALUE_FLAGS).unwrap();
        assert_eq!(parse_search_params(&zero).unwrap().threads, Some(0));
        // Explicit legacy knobs become per-engine caps under --threads.
        let capped = Opts::parse(
            &s(&[
                "--threads",
                "8",
                "--align-threads",
                "3",
                "--spgemm-threads",
                "2",
            ]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let p = parse_search_params(&capped).unwrap();
        assert_eq!(p.threads, Some(8));
        assert_eq!(p.align_cap, Some(3));
        assert_eq!(p.spgemm_cap, Some(2));
        // Without --threads the legacy knobs keep their dedicated-thread
        // meaning and no caps are set.
        let legacy = Opts::parse(&s(&["--align-threads", "3"]), SEARCH_VALUE_FLAGS).unwrap();
        let p = parse_search_params(&legacy).unwrap();
        assert_eq!(p.align_threads, 3);
        assert_eq!(p.align_cap, None);
        // Bad values are rejected.
        let bad = Opts::parse(&s(&["--threads", "many"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&bad).is_err());
    }

    #[test]
    fn tune_flag_parses_policies() {
        let none = Opts::parse(&[], SEARCH_VALUE_FLAGS).unwrap();
        assert_eq!(parse_search_params(&none).unwrap().tune, TunePolicy::Off);

        let auto = Opts::parse(&s(&["--tune", "auto"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&auto).unwrap().tune.is_auto());

        let fixed = Opts::parse(
            &s(&[
                "--threads",
                "4",
                "--tune",
                "fixed:spgemm=1,align=3,batch=64",
            ]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        match parse_search_params(&fixed).unwrap().tune {
            TunePolicy::Fixed(spec) => {
                assert_eq!(spec.spgemm_cap, Some(1));
                assert_eq!(spec.align_cap, Some(3));
                assert_eq!(spec.batch, Some(64));
                assert_eq!(spec.lookahead, None);
            }
            other => panic!("expected fixed policy, got {other}"),
        }

        // Fixed engine caps without a unified pool are refused (validate()).
        let no_pool = Opts::parse(
            &s(&["--tune", "fixed:spgemm=1,align=3"]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let err = parse_search_params(&no_pool).unwrap_err();
        assert!(err.contains("--threads"), "unhelpful error: {err}");

        // Unknown policies and malformed specs are rejected at parse time.
        for bad in ["sometimes", "fixed:", "fixed:warp=9", "fixed:spgemm=0"] {
            let o = Opts::parse(&s(&["--tune", bad]), SEARCH_VALUE_FLAGS).unwrap();
            assert!(parse_search_params(&o).is_err(), "accepted --tune {bad}");
        }
    }

    #[test]
    fn overlap_and_unified_pool_emit_byte_identical_tsv() {
        // The CLI-level face of the overlap determinism contract: the
        // phased legacy run, the unified-pool run, and the overlapped
        // double-buffered run all write the exact same bytes.
        let dir = std::env::temp_dir().join(format!("pastis-cli-overlap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("s.fa");
        run(&s(&[
            "generate",
            fa.to_str().unwrap(),
            "--n",
            "70",
            "--mean-len",
            "90",
            "--seed",
            "23",
        ]))
        .unwrap();
        let run_with = |extra: &[&str], out: &Path| {
            let mut argv = s(&[
                "search",
                fa.to_str().unwrap(),
                out.to_str().unwrap(),
                "--k",
                "5",
                "--blocks",
                "2x2",
                "--ani",
                "0.4",
                "--coverage",
                "0.5",
                "--ranks",
                "4",
            ]);
            argv.extend(extra.iter().map(|x| x.to_string()));
            run(&argv).unwrap();
            std::fs::read(out).unwrap()
        };
        let base = run_with(&[], &dir.join("base.tsv"));
        assert!(!base.is_empty(), "baseline run produced no edges");
        for (label, extra) in [
            ("pool2", &["--threads", "2"][..]),
            ("pool4-overlap", &["--threads", "4", "--overlap"][..]),
            ("overlap-only", &["--overlap"][..]),
            (
                "capped",
                &["--threads", "4", "--align-threads", "1", "--overlap"][..],
            ),
        ] {
            let got = run_with(extra, &dir.join(format!("{label}.tsv")));
            assert_eq!(got, base, "{label} diverged from the phased legacy run");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn robustness_flags_parse() {
        let o = Opts::parse(
            &s(&[
                "--op-timeout-ms",
                "5000",
                "--checkpoint-dir",
                "/tmp/ck",
                "--resume",
                "--halt-after-blocks",
                "3",
                "--straggler-factor",
                "2.5",
            ]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let p = parse_search_params(&o).unwrap();
        assert_eq!(p.op_timeout_ms, Some(5000));
        assert_eq!(p.checkpoint_dir.as_deref(), Some(Path::new("/tmp/ck")));
        assert!(p.resume);
        assert_eq!(p.halt_after_blocks, Some(3));
        assert_eq!(p.straggler_factor, Some(2.5));
        // 'off' disables the straggler scan.
        let off = Opts::parse(&s(&["--straggler-factor", "off"]), SEARCH_VALUE_FLAGS).unwrap();
        assert_eq!(parse_search_params(&off).unwrap().straggler_factor, None);
        // --resume without --checkpoint-dir is rejected by validation.
        let bad = Opts::parse(&s(&["--resume"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&bad).is_err());
        // Fault plan specs parse (and bad ones error).
        assert!(FaultPlan::parse("chaos:7").is_ok());
        assert!(FaultPlan::parse("seed=1,delay=0.5:100,drop=0.2").is_ok());
        assert!(FaultPlan::parse("warp=9").is_err());
    }

    #[test]
    fn mem_budget_flags_parse() {
        assert_eq!(parse_bytes("1024").unwrap(), 1024);
        assert_eq!(parse_bytes("64K").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("3m").unwrap(), 3 << 20);
        assert_eq!(parse_bytes("2G").unwrap(), 2 << 30);
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("999999999999G").is_err());

        let o = Opts::parse(
            &s(&["--mem-budget", "32M", "--spill-dir", "/tmp/sp"]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let p = parse_search_params(&o).unwrap();
        assert_eq!(p.mem_budget, Some(32 << 20));
        assert_eq!(p.spill_dir.as_deref(), Some(Path::new("/tmp/sp")));
        // Without --spill-dir a temp-dir default is derived so the budget
        // works out of the box.
        let o = Opts::parse(&s(&["--mem-budget", "32M"]), SEARCH_VALUE_FLAGS).unwrap();
        let p = parse_search_params(&o).unwrap();
        assert!(p.spill_dir.is_some());
        // Spill-fault keys in --fault-plan route into params (and pull in
        // the default spill dir too).
        let o = Opts::parse(
            &s(&["--fault-plan", "seed=5,spill_corrupt=0.3"]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        let p = parse_search_params(&o).unwrap();
        assert!(p
            .spill_faults
            .as_ref()
            .is_some_and(|f| f.has_spill_faults()));
        assert!(p.spill_dir.is_some());
        // Comm-only plans do not.
        let o = Opts::parse(&s(&["--fault-plan", "seed=5,drop=0.1"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&o).unwrap().spill_faults.is_none());
        // Budget + checkpointing is rejected.
        let o = Opts::parse(
            &s(&["--mem-budget", "32M", "--checkpoint-dir", "/tmp/ck"]),
            SEARCH_VALUE_FLAGS,
        )
        .unwrap();
        assert!(parse_search_params(&o).is_err());
    }

    #[test]
    fn budgeted_search_emits_byte_identical_tsv() {
        // The CLI face of the memory-budget contract: a run forced to
        // spill (and one whose every spill write is corrupted in flight)
        // writes the exact same TSV bytes as the unbudgeted run.
        let dir = std::env::temp_dir().join(format!("pastis-cli-budget-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("s.fa");
        run(&s(&[
            "generate",
            fa.to_str().unwrap(),
            "--n",
            "70",
            "--mean-len",
            "90",
            "--seed",
            "23",
        ]))
        .unwrap();
        let run_with = |extra: &[&str], out: &Path| -> Result<Vec<u8>, String> {
            let mut argv = s(&[
                "search",
                fa.to_str().unwrap(),
                out.to_str().unwrap(),
                "--k",
                "5",
                "--blocks",
                "3x3",
                "--ani",
                "0.4",
                "--coverage",
                "0.5",
            ]);
            argv.extend(extra.iter().map(|x| x.to_string()));
            run(&argv)?;
            Ok(std::fs::read(out).unwrap())
        };
        let base = run_with(&[], &dir.join("base.tsv")).unwrap();
        assert!(!base.is_empty(), "baseline run produced no edges");
        // Budgets descending until one forces spills; every run that
        // completes must be byte-identical, and budgets below the
        // irreducible working set must fail with a typed OOM.
        let spill = dir.join("spill");
        let spill_str = spill.to_str().unwrap().to_owned();
        let mut one_spilled = false;
        for budget in ["4M", "600K", "200K", "150K"] {
            let _ = std::fs::remove_dir_all(&spill);
            let out = dir.join(format!("b{budget}.tsv"));
            match run_with(&["--mem-budget", budget, "--spill-dir", &spill_str], &out) {
                Ok(tsv) => {
                    assert_eq!(tsv, base, "--mem-budget {budget} changed the TSV");
                    if spill.exists()
                        && std::fs::read_dir(&spill)
                            .map(|d| d.count() > 0)
                            .unwrap_or(false)
                    {
                        one_spilled = true;
                    }
                }
                Err(e) => assert!(e.contains("out of memory in phase"), "{e}"),
            }
        }
        assert!(one_spilled, "no tested budget spilled");
        // Under a seeded corrupt-every-spill plan the CRC check rejects
        // each shard on readback and the blocks are recomputed — still
        // byte-identical.
        let _ = std::fs::remove_dir_all(&spill);
        match run_with(
            &[
                "--mem-budget",
                "200K",
                "--spill-dir",
                &spill_str,
                "--fault-plan",
                "seed=7,spill_corrupt=1.0",
            ],
            &dir.join("corrupt.tsv"),
        ) {
            Ok(tsv) => assert_eq!(tsv, base, "corrupt spill plan changed the TSV"),
            Err(e) => assert!(e.contains("out of memory in phase"), "{e}"),
        }
        // Disk-full faults drop half the spill writes; the run still
        // completes under budget because the accountant retries other
        // victims, and the TSV stays byte-identical.
        let _ = std::fs::remove_dir_all(&spill);
        let tsv = run_with(
            &[
                "--mem-budget",
                "200K",
                "--spill-dir",
                &spill_str,
                "--fault-plan",
                "seed=9,spill_disk_full=0.5",
            ],
            &dir.join("diskfull.tsv"),
        )
        .expect("disk-full spill plan should complete");
        assert_eq!(tsv, base, "disk-full spill plan changed the TSV");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn search_params_defaults_match_paper() {
        let o = Opts::parse(&[], SEARCH_VALUE_FLAGS).unwrap();
        let p = parse_search_params(&o).unwrap();
        assert_eq!(p.k, 6);
        assert_eq!(p.gaps.open, 11);
        assert_eq!(p.gaps.extend, 2);
    }

    #[test]
    fn bad_inputs_rejected() {
        let bad_alpha = Opts::parse(&s(&["--alphabet", "dna4"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&bad_alpha).is_err());
        let bad_blocks = Opts::parse(&s(&["--blocks", "44"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&bad_blocks).is_err());
        let bad_k = Opts::parse(&s(&["--k", "0"]), SEARCH_VALUE_FLAGS).unwrap();
        assert!(parse_search_params(&bad_k).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn end_to_end_generate_search_cluster() {
        let dir = std::env::temp_dir().join(format!("pastis-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("d.fa");
        let tsv = dir.join("d.tsv");
        let clu = dir.join("d.clusters");
        run(&s(&[
            "generate",
            fa.to_str().unwrap(),
            "--n",
            "80",
            "--mean-len",
            "80",
            "--seed",
            "9",
        ]))
        .unwrap();
        run(&s(&[
            "search",
            fa.to_str().unwrap(),
            tsv.to_str().unwrap(),
            "--k",
            "5",
            "--blocks",
            "2x2",
            "--ani",
            "0.4",
            "--coverage",
            "0.5",
        ]))
        .unwrap();
        let edges = std::fs::read_to_string(&tsv).unwrap();
        assert!(edges.lines().count() > 0, "no edges found");
        run(&s(&[
            "cluster",
            fa.to_str().unwrap(),
            clu.to_str().unwrap(),
            "--k",
            "5",
            "--ani",
            "0.4",
            "--coverage",
            "0.5",
        ]))
        .unwrap();
        let clusters = std::fs::read_to_string(&clu).unwrap();
        assert_eq!(clusters.lines().count(), 80);
        run(&s(&["stats", fa.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn end_to_end_telemetry_exports_and_trace_check() {
        let dir = std::env::temp_dir().join(format!("pastis-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("t.fa");
        let tsv = dir.join("t.tsv");
        let trace = dir.join("t.trace.json");
        let metrics = dir.join("t.metrics.json");
        run(&s(&[
            "generate",
            fa.to_str().unwrap(),
            "--n",
            "60",
            "--mean-len",
            "70",
            "--seed",
            "11",
        ]))
        .unwrap();
        run(&s(&[
            "search",
            fa.to_str().unwrap(),
            tsv.to_str().unwrap(),
            "--k",
            "5",
            "--blocks",
            "2x2",
            "--ani",
            "0.4",
            "--coverage",
            "0.5",
            "--ranks",
            "4",
            "--align-threads",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-json",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        // The emitted files validate, cover all 4 ranks, and contain the
        // pipeline phases.
        run(&s(&[
            "trace-check",
            trace.to_str().unwrap(),
            "--expect-ranks",
            "4",
            "--expect-phases",
            "kmer_matrix,summa.block,align.batch,output.assembly",
        ]))
        .unwrap();
        run(&s(&[
            "trace-check",
            metrics.to_str().unwrap(),
            "--expect-ranks",
            "4",
            "--expect-phases",
            "align,spgemm",
        ]))
        .unwrap();
        // Wrong expectations fail.
        assert!(run(&s(&[
            "trace-check",
            trace.to_str().unwrap(),
            "--expect-ranks",
            "9",
        ]))
        .is_err());
        assert!(run(&s(&[
            "trace-check",
            metrics.to_str().unwrap(),
            "--expect-phases",
            "warp-drive",
        ]))
        .is_err());
        // --no-telemetry still searches, but refuses export flags.
        run(&s(&[
            "search",
            fa.to_str().unwrap(),
            tsv.to_str().unwrap(),
            "--k",
            "5",
            "--no-telemetry",
        ]))
        .unwrap();
        assert!(run(&s(&[
            "search",
            fa.to_str().unwrap(),
            tsv.to_str().unwrap(),
            "--no-telemetry",
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .is_err());
    }
}
